"""Unit tests for the happened-before closure."""

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import ComputationError


def two_process(epsilon: int = 2) -> DistributedComputation:
    return DistributedComputation.from_event_lists(
        epsilon, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


class TestProgramOrder:
    def test_same_process_ordered(self):
        comp = two_process()
        hb = comp.happened_before()
        e1, e2 = [e for e in comp.events if e.process == "P1"]
        assert hb.precedes(e1, e2)
        assert not hb.precedes(e2, e1)

    def test_non_monotone_clock_rejected(self):
        comp = DistributedComputation(2)
        comp.add_event("P1", 5)
        with pytest.raises(ComputationError):
            comp.add_event("P1", 3)


class TestEpsilonRule:
    def test_far_apart_events_ordered(self):
        comp = two_process(epsilon=2)
        hb = comp.happened_before()
        events = comp.events
        p1_first = events[0]   # P1 @ 1
        p2_second = events[3]  # P2 @ 5
        # 1 + 2 < 5, so the epsilon rule applies.
        assert hb.precedes(p1_first, p2_second)

    def test_close_events_concurrent(self):
        comp = two_process(epsilon=2)
        hb = comp.happened_before()
        events = comp.events
        p1_first = events[0]  # P1 @ 1
        p2_first = events[2]  # P2 @ 2
        assert hb.concurrent(p1_first, p2_first)

    def test_larger_epsilon_means_more_concurrency(self):
        small = two_process(epsilon=1).happened_before()
        large = two_process(epsilon=10).happened_before()

        def concurrent_pairs(hb):
            events = hb.events
            return sum(
                1
                for i, e in enumerate(events)
                for f in events[i + 1 :]
                if hb.concurrent(e, f)
            )

        assert concurrent_pairs(large) > concurrent_pairs(small)

    def test_epsilon_boundary_is_strict(self):
        # sigma + eps < sigma' required:  1 + 2 < 3 is false, so @1 and @3
        # on different processes stay concurrent at epsilon=2.
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a")], "P2": [(3, "b")]}
        )
        hb = comp.happened_before()
        e, f = comp.events
        assert hb.concurrent(e, f)


class TestMessages:
    def test_message_edge_orders_events(self):
        comp = DistributedComputation(10)
        send = comp.add_event("P1", 1, "send")
        recv = comp.add_event("P2", 2, "recv")
        comp.add_message(send, recv)
        hb = comp.happened_before()
        assert hb.precedes(send, recv)

    def test_transitivity_through_message(self):
        comp = DistributedComputation(100)  # epsilon too large to order alone
        a = comp.add_event("P1", 1)
        send = comp.add_event("P1", 2)
        recv = comp.add_event("P2", 3)
        later = comp.add_event("P2", 4)
        comp.add_message(send, recv)
        hb = comp.happened_before()
        assert hb.precedes(a, later)

    def test_self_message_rejected(self):
        comp = DistributedComputation(2)
        a = comp.add_event("P1", 1)
        b = comp.add_event("P1", 2)
        with pytest.raises(ComputationError):
            comp.add_message(a, b)

    def test_unknown_event_rejected(self):
        comp = DistributedComputation(2)
        a = comp.add_event("P1", 1)
        from repro.distributed.event import make_event

        with pytest.raises(ComputationError):
            comp.add_message(a, make_event("P9", 0, 2))

    def test_cyclic_message_rejected(self):
        comp = DistributedComputation(100)
        a = comp.add_event("P1", 1)
        b = comp.add_event("P2", 1)
        comp.add_message(a, b)
        comp.add_message(b, a)
        with pytest.raises(ComputationError):
            comp.happened_before()


class TestViews:
    def test_restriction_preserves_order(self):
        comp = two_process()
        hb = comp.happened_before()
        view = hb.restricted_to([0, 3])  # P1@1 and P2@5
        assert view.precedes_idx(0, 1)

    def test_restriction_events(self):
        comp = two_process()
        hb = comp.happened_before()
        view = hb.restricted_to([1, 2])
        assert len(view) == 2
        assert {e.local_time for e in view.events} == {4, 2}
