"""Unit tests for computation segmentation (Section V-C)."""

import pytest

from repro.distributed.computation import DistributedComputation
from repro.distributed.segmentation import segment_computation, segments_for_frequency
from repro.errors import ComputationError


def spread_computation(epsilon: int = 2) -> DistributedComputation:
    return DistributedComputation.from_event_lists(
        epsilon,
        {
            "P1": [(0, "a"), (10, "b"), (20, "c")],
            "P2": [(5, "d"), (15, "e"), (25, "f")],
        },
    )


class TestSegmentation:
    def test_single_segment_holds_everything(self):
        comp = spread_computation()
        segments = segment_computation(comp, 1)
        assert len(segments) == 1
        assert len(segments[0].events) == len(comp)

    def test_every_event_in_exactly_one_segment(self):
        comp = spread_computation()
        for g in (1, 2, 3, 5):
            segments = segment_computation(comp, g)
            keys = [e.key for s in segments for e in s.events]
            assert sorted(keys) == sorted(e.key for e in comp.events)

    def test_segment_windows_partition_time(self):
        comp = spread_computation()
        segments = segment_computation(comp, 3)
        for a, b in zip(segments, segments[1:]):
            assert a.hi == b.lo
        for segment in segments:
            for event in segment.events:
                assert segment.lo <= event.local_time < segment.hi

    def test_context_contains_epsilon_overlap(self):
        comp = spread_computation(epsilon=6)
        segments = segment_computation(comp, 3)
        second = segments[1]
        for event in second.context:
            assert second.lo - 6 <= event.local_time < second.lo

    def test_more_segments_than_span(self):
        comp = DistributedComputation.from_event_lists(1, {"P1": [(0, "a")]})
        segments = segment_computation(comp, 10)
        non_empty = [s for s in segments if not s.is_empty()]
        assert len(non_empty) == 1

    def test_empty_computation(self):
        comp = DistributedComputation(1)
        segments = segment_computation(comp, 3)
        assert all(s.is_empty() for s in segments)

    def test_zero_segments_rejected(self):
        with pytest.raises(ComputationError):
            segment_computation(spread_computation(), 0)


class TestFrequency:
    def test_frequency_to_segment_count(self):
        comp = spread_computation()  # spans 26 ms
        # 1 segment per second of computation at 1 ms per unit.
        assert segments_for_frequency(comp, 1000.0) == 26

    def test_low_frequency_gives_one_segment(self):
        comp = spread_computation()
        assert segments_for_frequency(comp, 0.5) == 1

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ComputationError):
            segments_for_frequency(spread_computation(), 0)
