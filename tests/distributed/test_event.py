"""Unit tests for events and their timestamp windows."""

import pytest

from repro.distributed.event import Event, make_event
from repro.errors import ComputationError


class TestConstruction:
    def test_make_event_with_string_prop(self):
        event = make_event("P1", 0, 5, "a")
        assert event.props == frozenset({"a"})

    def test_make_event_with_iterable_props(self):
        event = make_event("P1", 0, 5, ("a", "b"))
        assert event.props == frozenset({"a", "b"})

    def test_make_event_with_deltas(self):
        event = make_event("P1", 0, 5, (), {"to.alice": 100})
        assert event.deltas["to.alice"] == 100

    def test_key(self):
        assert make_event("P1", 3, 5).key == ("P1", 3)

    def test_empty_process_rejected(self):
        with pytest.raises(ComputationError):
            Event("", 0, 5)

    def test_negative_seq_rejected(self):
        with pytest.raises(ComputationError):
            Event("P1", -1, 5)

    def test_negative_time_rejected(self):
        with pytest.raises(ComputationError):
            Event("P1", 0, -5)


class TestTimestampWindow:
    def test_epsilon_one_is_exact(self):
        assert make_event("P1", 0, 10).timestamp_window(1) == (10, 10)

    def test_symmetric_window(self):
        assert make_event("P1", 0, 10).timestamp_window(3) == (8, 12)

    def test_clamped_at_zero(self):
        assert make_event("P1", 0, 1).timestamp_window(5) == (0, 5)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(ComputationError):
            make_event("P1", 0, 10).timestamp_window(0)

    def test_window_always_contains_reading(self):
        for sigma in (0, 1, 7, 100):
            for eps in (1, 2, 5):
                lo, hi = make_event("P1", 0, sigma).timestamp_window(eps)
                assert lo <= sigma <= hi


class TestEquality:
    def test_equal_events(self):
        assert make_event("P1", 0, 5, "a") == make_event("P1", 0, 5, "a")

    def test_deltas_participate_in_equality(self):
        with_deltas = make_event("P1", 0, 5, (), {"x": 1})
        without = make_event("P1", 0, 5)
        assert with_deltas != without

    def test_str_format(self):
        assert str(make_event("P1", 2, 5, "a")) == "P1[2]@5:a"
