"""Unit tests for consistent cuts and linear extensions."""

from hypothesis import given, settings

from repro.distributed.computation import DistributedComputation
from repro.distributed.cuts import (
    count_linear_extensions,
    frontier,
    is_consistent_cut,
    linear_extensions,
)

from tests.conftest import small_computations


def chain_computation() -> DistributedComputation:
    """Two totally ordered processes far apart in time (epsilon small)."""
    return DistributedComputation.from_event_lists(
        1, {"P1": [(0, "a"), (10, "b")], "P2": [(20, "c")]}
    )


def concurrent_computation() -> DistributedComputation:
    """Two fully concurrent events."""
    return DistributedComputation.from_event_lists(
        5, {"P1": [(1, "a")], "P2": [(2, "b")]}
    )


class TestConsistency:
    def test_empty_cut_is_consistent(self):
        hb = chain_computation().happened_before()
        assert is_consistent_cut(hb, [])

    def test_full_cut_is_consistent(self):
        comp = chain_computation()
        hb = comp.happened_before()
        assert is_consistent_cut(hb, comp.events)

    def test_prefix_cut_is_consistent(self):
        comp = chain_computation()
        hb = comp.happened_before()
        assert is_consistent_cut(hb, comp.events[:1])

    def test_hole_makes_cut_inconsistent(self):
        comp = chain_computation()
        hb = comp.happened_before()
        # The last event without its predecessors is not downward closed.
        assert not is_consistent_cut(hb, [comp.events[2]])


class TestFrontier:
    def test_frontier_takes_last_per_process(self):
        comp = chain_computation()
        hb = comp.happened_before()
        front = frontier(hb, comp.events)
        assert {e.process for e in front} == {"P1", "P2"}
        p1 = next(e for e in front if e.process == "P1")
        assert p1.seq == 1

    def test_frontier_of_partial_cut(self):
        comp = chain_computation()
        hb = comp.happened_before()
        front = frontier(hb, comp.events[:2])
        assert len(front) == 1  # only P1 events present


class TestLinearExtensions:
    def test_totally_ordered_has_one_extension(self):
        hb = chain_computation().happened_before()
        assert count_linear_extensions(hb) == 1

    def test_concurrent_pair_has_two_extensions(self):
        hb = concurrent_computation().happened_before()
        assert count_linear_extensions(hb) == 2

    def test_extensions_respect_hb(self):
        comp = chain_computation()
        hb = comp.happened_before()
        for order in linear_extensions(hb):
            positions = {e.key: i for i, e in enumerate(order)}
            for e in comp.events:
                for f in comp.events:
                    if hb.precedes(e, f):
                        assert positions[e.key] < positions[f.key]

    @settings(max_examples=50, deadline=None)
    @given(small_computations())
    def test_every_prefix_is_a_consistent_cut(self, comp):
        hb = comp.happened_before()
        for order in linear_extensions(hb):
            for i in range(len(order) + 1):
                assert is_consistent_cut(hb, order[:i])

    @settings(max_examples=50, deadline=None)
    @given(small_computations())
    def test_extension_count_positive(self, comp):
        hb = comp.happened_before()
        assert count_linear_extensions(hb) >= 1
