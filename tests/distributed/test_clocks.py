"""Unit tests for the clock models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributed.clocks import (
    DriftingClock,
    FixedSkewClock,
    PerfectClock,
    clocks_for_processes,
)
from repro.errors import ComputationError


class TestPerfectClock:
    def test_identity(self):
        clock = PerfectClock()
        assert clock.read(42) == 42

    def test_bound(self):
        assert PerfectClock().bound() == 1


class TestFixedSkewClock:
    def test_positive_offset(self):
        assert FixedSkewClock(3, 5).read(10) == 13

    def test_negative_offset_clamped_at_zero(self):
        assert FixedSkewClock(-3, 5).read(1) == 0

    def test_offset_must_respect_bound(self):
        with pytest.raises(ComputationError):
            FixedSkewClock(5, 5)

    @given(st.integers(min_value=-4, max_value=4), st.integers(min_value=0, max_value=100))
    def test_skew_bound_holds(self, offset, t):
        clock = FixedSkewClock(offset, 5)
        assert abs(clock.read(t) - t) < 5 or clock.read(t) == 0


class TestDriftingClock:
    def test_monotone(self):
        clock = DriftingClock(3, seed=7)
        readings = [clock.read(t) for t in range(0, 100, 2)]
        assert readings == sorted(readings)

    def test_bounded_drift(self):
        clock = DriftingClock(3, seed=11)
        for t in range(0, 200, 3):
            local = clock.read(t)
            # Monotonicity enforcement can hold the local clock slightly
            # above a backwards-walking offset, but never beyond the bound.
            assert local - t < 3 + 3  # generous static bound

    def test_out_of_order_reads_rejected(self):
        clock = DriftingClock(3)
        clock.read(10)
        with pytest.raises(ComputationError):
            clock.read(5)

    def test_deterministic_with_seed(self):
        a = [DriftingClock(3, seed=5).read(t) for t in range(10)]
        b = [DriftingClock(3, seed=5).read(t) for t in range(10)]
        assert a == b


class TestFactory:
    def test_perfect_model(self):
        clocks = clocks_for_processes(["P1", "P2"], 5, model="perfect")
        assert all(isinstance(c, PerfectClock) for c in clocks.values())

    def test_fixed_model(self):
        clocks = clocks_for_processes(["P1", "P2", "P3"], 5, model="fixed", seed=1)
        assert set(clocks) == {"P1", "P2", "P3"}

    def test_drift_model(self):
        clocks = clocks_for_processes(["P1"], 5, model="drift")
        assert isinstance(clocks["P1"], DriftingClock)

    def test_unknown_model_rejected(self):
        with pytest.raises(ComputationError):
            clocks_for_processes(["P1"], 5, model="quartz")

    def test_epsilon_one_fixed_is_zero_offset(self):
        clocks = clocks_for_processes(["P1"], 1, model="fixed")
        assert clocks["P1"].read(42) == 42
