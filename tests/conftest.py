"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.distributed.computation import DistributedComputation
from repro.mtl import ast
from repro.mtl.interval import INF, Interval
from repro.mtl.trace import State, TimedTrace

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

ATOM_NAMES = ("a", "b", "c", "p", "q")


def intervals(max_bound: int = 12) -> st.SearchStrategy[Interval]:
    """Random non-empty intervals, bounded or unbounded."""

    def build(start: int, width: int, unbounded: bool) -> Interval:
        if unbounded:
            return Interval.unbounded(start)
        return Interval.bounded(start, start + width)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=max_bound),
        st.integers(min_value=1, max_value=max_bound),
        st.booleans(),
    )


def formulas(max_depth: int = 3) -> st.SearchStrategy[ast.Formula]:
    """Random MTL formulas over a tiny alphabet."""
    leaves = st.sampled_from(
        [ast.atom(name) for name in ATOM_NAMES] + [ast.TRUE, ast.FALSE]
    )

    def extend(children: st.SearchStrategy[ast.Formula]) -> st.SearchStrategy[ast.Formula]:
        return st.one_of(
            st.builds(ast.lnot, children),
            st.builds(lambda a, b: ast.land(a, b), children, children),
            st.builds(lambda a, b: ast.lor(a, b), children, children),
            st.builds(ast.eventually, children, intervals()),
            st.builds(ast.always, children, intervals()),
            st.builds(lambda a, b, i: ast.until(a, b, i), children, children, intervals()),
        )

    return st.recursive(leaves, extend, max_leaves=max_depth * 3)


def states() -> st.SearchStrategy[State]:
    return st.builds(
        lambda props: State(frozenset(props)),
        st.sets(st.sampled_from(ATOM_NAMES), max_size=3),
    )


def timed_traces(min_length: int = 1, max_length: int = 6) -> st.SearchStrategy[TimedTrace]:
    """Random short traces with non-decreasing timestamps."""

    def build(state_list: list[State], gaps: list[int], start: int) -> TimedTrace:
        times = []
        current = start
        for gap in gaps[: len(state_list)]:
            times.append(current)
            current += gap
        return TimedTrace(state_list, times)

    length = st.integers(min_value=min_length, max_value=max_length)
    return length.flatmap(
        lambda n: st.builds(
            build,
            st.lists(states(), min_size=n, max_size=n),
            st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n),
            st.integers(min_value=0, max_value=5),
        )
    )


def small_computations() -> st.SearchStrategy[DistributedComputation]:
    """Random 2-process computations small enough to enumerate exhaustively."""

    def build(seed: int, epsilon: int, counts: tuple[int, int]) -> DistributedComputation:
        rng = random.Random(seed)
        computation = DistributedComputation(epsilon)
        for process, count in zip(("P1", "P2"), counts):
            t = rng.randrange(0, 3)
            for _ in range(count):
                props = [name for name in ("a", "b") if rng.random() < 0.5]
                computation.add_event(process, t, props)
                t += rng.randrange(1, 4)
        return computation

    return st.builds(
        build,
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
        st.tuples(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2)),
    )


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def fig3_computation() -> DistributedComputation:
    """The paper's Fig 3 example: P1: a@1, {}@4; P2: a@2, b@5; epsilon 2."""
    return DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


@pytest.fixture
def fig3_formula() -> ast.Formula:
    return ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 6))
