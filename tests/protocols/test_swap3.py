"""Tests for the hedged three-party swap."""

from repro.chain.log import computation_from_chains
from repro.monitor.smt_monitor import SmtMonitor
from repro.protocols.scenarios import SWAP3_CONFORMING
from repro.protocols.swap3 import deploy_swap3, run_swap3
from repro.specs import swap3_specs


class TestContractRules:
    def test_conforming_run_cycles_assets(self):
        setup = run_swap3(SWAP3_CONFORMING)
        # Alice receives cherry, Bob apricot, Carol banana.
        assert setup.chains["che"].token("CHE").balance_of("alice") >= 100
        assert setup.chains["apr"].token("APR").balance_of("bob") >= 100
        assert setup.chains["ban"].token("BAN").balance_of("carol") >= 100

    def test_conforming_event_sequence_per_chain(self):
        setup = run_swap3(SWAP3_CONFORMING)
        for chain_name in ("apr", "ban", "che"):
            names = [e.name for e in setup.chains[chain_name].log]
            assert names[0] == "start"
            assert names[1] == "deposit_escrow_pr"
            assert names[2] == "deposit_redemption_pr"
            assert names[3] == "asset_escrowed"
            assert "hashlock_unlocked" in names
            assert "asset_redeemed" in names
            assert names[-1] == "all_asset_settled"

    def test_out_of_order_step_reverts(self):
        setup = deploy_swap3()
        contract = setup.contracts["apr"]
        ok = setup.chains["apr"].execute(10, lambda: contract.escrow_asset("alice"))
        assert not ok

    def test_skipped_premium_truncates_chain(self):
        attempted = list(SWAP3_CONFORMING)
        attempted[0] = 0  # Alice never posts the apricot escrow premium
        setup = run_swap3(attempted)
        names = [e.name for e in setup.chains["apr"].log]
        # Only the start marker and settle event remain on apricot.
        assert "asset_escrowed" not in names
        assert "all_asset_settled" in names

    def test_unredeemed_escrow_compensated(self):
        attempted = list(SWAP3_CONFORMING)
        attempted[11] = 0  # Bob never unlocks on apricot
        setup = run_swap3(attempted)
        names = [e.name for e in setup.chains["apr"].log]
        assert "asset_refunded" in names
        assert "premium_redeemed" in names
        # Alice keeps her asset and gains Bob's redemption premium.
        assert setup.chains["apr"].token("APR").balance_of("alice") == 100 + 3 + 1

    def test_token_conservation(self):
        for flip in (None, 0, 5, 11):
            attempted = list(SWAP3_CONFORMING)
            if flip is not None:
                attempted[flip] = 0
            setup = run_swap3(attempted)
            for name in ("apr", "ban", "che"):
                token = setup.chains[name].token(name.upper())
                assert token.total_supply() == 100 + 3 + {"che": 3, "ban": 2, "apr": 1}[name]


class TestPolicyVerdicts:
    DELTA = 500

    def _verdicts(self, attempted, policy_name):
        setup = run_swap3(attempted, epsilon_ms=5, delta_ms=self.DELTA)
        comp = computation_from_chains(setup.chains.values(), 5)
        policy = swap3_specs.all_policies(self.DELTA)[policy_name]
        result = SmtMonitor(
            policy, segments=2, timestamp_samples=2, max_traces_per_segment=2000
        ).run(comp)
        return result.verdicts

    def test_conforming_liveness(self):
        assert self._verdicts(SWAP3_CONFORMING, "liveness") == frozenset({True})

    def test_conforming_alice_conforms(self):
        assert self._verdicts(SWAP3_CONFORMING, "alice_conforming") == frozenset({True})

    def test_missing_unlock_violates_liveness(self):
        attempted = list(SWAP3_CONFORMING)
        attempted[9] = 0  # Alice never unlocks on cherry
        assert self._verdicts(attempted, "liveness") == frozenset({False})

    def test_alice_skipping_flagged(self):
        attempted = list(SWAP3_CONFORMING)
        attempted[6] = 0  # Alice never escrows though Bob posted premium
        verdicts = self._verdicts(attempted, "alice_conforming")
        assert verdicts == frozenset({False})
