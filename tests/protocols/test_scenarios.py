"""The paper's behaviour-matrix cardinalities, asserted exactly."""

from itertools import islice

from repro.protocols.scenarios import (
    auction_behavior_count,
    auction_behaviors,
    swap2_behavior_count,
    swap2_behaviors,
    swap3_behavior_count,
    swap3_behaviors,
)


class TestCardinalities:
    """Section VI-B.2: 1024, 4096, and 3888 generated logs."""

    def test_swap2_count_is_1024(self):
        behaviors = list(swap2_behaviors())
        assert len(behaviors) == 1024
        assert swap2_behavior_count() == 1024

    def test_swap3_count_is_4096(self):
        behaviors = list(swap3_behaviors())
        assert len(behaviors) == 4096
        assert swap3_behavior_count() == 4096

    def test_auction_count_is_3888(self):
        behaviors = list(auction_behaviors())
        assert len(behaviors) == 3888
        assert auction_behavior_count() == 3888


class TestSwap2Structure:
    def test_all_distinct(self):
        behaviors = [tuple(b) for b in swap2_behaviors()]
        assert len(set(behaviors)) == 1024

    def test_arrays_have_twelve_entries(self):
        for behavior in islice(swap2_behaviors(), 50):
            assert len(behavior) == 12
            assert all(bit in (0, 1) for bit in behavior)

    def test_per_chain_truncation_respected(self):
        """Within each chain, an unattempted step is never followed by an
        attempted one (the paper's 'later step does not need to be
        attempted' rule)."""
        apr_steps, ban_steps = (2, 3, 6), (1, 4, 5)
        for behavior in swap2_behaviors():
            for steps in (apr_steps, ban_steps):
                attempted = [behavior[2 * (s - 1)] for s in steps]
                assert attempted in ([0, 0, 0], [1, 0, 0], [1, 1, 0], [1, 1, 1])

    def test_conforming_behaviour_present(self):
        assert [1, 0] * 6 in list(swap2_behaviors())


class TestSwap3Structure:
    def test_all_distinct(self):
        behaviors = {tuple(b) for b in swap3_behaviors()}
        assert len(behaviors) == 4096

    def test_covers_full_hypercube(self):
        behaviors = {tuple(b) for b in swap3_behaviors()}
        assert (0,) * 12 in behaviors
        assert (1,) * 12 in behaviors


class TestAuctionStructure:
    def test_distinct_behaviour_count(self):
        """The 3888 scenario ids include don't-care combinations (like the
        paper's lateness flags on skipped steps): the symmetric
        extra-challenge flag collapses when nobody or everybody
        challenges, leaving 2592 semantically distinct behaviours."""
        behaviors = list(auction_behaviors())
        assert len(set(behaviors)) == 2592

    def test_field_domains(self):
        for behavior in islice(auction_behaviors(), 200):
            assert behavior.bob_bid in ("skip", "ontime", "late")
            assert behavior.coin_declaration in ("skip", "sb", "sc")
            assert isinstance(behavior.declaration_late, bool)
