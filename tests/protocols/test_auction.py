"""Tests for the cross-chain auction protocol."""

from repro.chain.log import computation_from_chains
from repro.monitor.smt_monitor import SmtMonitor
from repro.protocols.auction import AuctionBehavior, run_auction
from repro.specs import auction_specs


class TestHonestAuction:
    def test_winner_gets_ticket_auctioneer_gets_bid(self):
        setup = run_auction(AuctionBehavior())
        assert setup.tckt.token("TCKT").balance_of("bob") == 100
        assert setup.coin.token("COIN").balance_of("alice") == 100 + 2  # bid + premium back
        assert setup.coin.token("COIN").balance_of("carol") == 90  # refunded

    def test_honest_event_vocabulary(self):
        setup = run_auction(AuctionBehavior())
        coin_names = {e.name for e in setup.coin.log}
        tckt_names = {e.name for e in setup.tckt.log}
        assert {"bid", "declaration", "redeem_bid", "refund_bid", "refund_premium"} <= coin_names
        assert {"escrow_ticket", "declaration", "redeem_ticket"} <= tckt_names
        assert "challenge" not in coin_names | tckt_names

    def test_declaration_prop_carries_secret_tag(self):
        setup = run_auction(AuctionBehavior())
        declaration = next(e for e in setup.coin.log if e.name == "declaration")
        assert "coin.declaration(alice,sb)" in declaration.props()


class TestCheatingAuctioneer:
    def test_mismatched_declarations_refund_everything(self):
        """Alice releases sb on coin but sc on tckt; challenges forward the
        secrets so both chains see both -> full refund path."""
        behavior = AuctionBehavior(
            coin_declaration="sb",
            tckt_declaration="sc",
            bob_challenges=True,
            carol_challenges=True,
        )
        setup = run_auction(behavior)
        # Both secrets released on each chain -> ticket refunded to Alice,
        # bids refunded, premium shared as compensation.
        assert setup.tckt.token("TCKT").balance_of("alice") == 100
        assert setup.coin.token("COIN").balance_of("bob") == 100 + 1
        assert setup.coin.token("COIN").balance_of("carol") == 90 + 1
        names = {e.name for e in setup.coin.log}
        assert "challenge" in names
        assert "redeem_premium" in names

    def test_declaring_loser_without_challenge(self):
        """Alice declares Carol the winner on both chains; nobody
        challenges: Carol, the highest-losing bidder, is not the top bid
        so her bid is refunded, and Carol gets the ticket."""
        behavior = AuctionBehavior(coin_declaration="sc", tckt_declaration="sc")
        setup = run_auction(behavior)
        assert setup.tckt.token("TCKT").balance_of("carol") == 100
        # Carol is not the highest bidder, so no bid goes to Alice.
        assert setup.coin.token("COIN").balance_of("alice") in (0, 1, 2)

    def test_no_declaration_refunds_ticket(self):
        behavior = AuctionBehavior(coin_declaration="skip", tckt_declaration="skip")
        setup = run_auction(behavior)
        assert setup.tckt.token("TCKT").balance_of("alice") == 100
        names = {e.name for e in setup.tckt.log}
        assert "refund_ticket" in names


class TestPolicyVerdicts:
    DELTA = 500

    def _verdicts(self, behavior, policy_name):
        setup = run_auction(behavior, epsilon_ms=5, delta_ms=self.DELTA)
        comp = computation_from_chains([setup.coin, setup.tckt], 5)
        policy = auction_specs.all_policies(self.DELTA)[policy_name]
        result = SmtMonitor(
            policy, segments=2, timestamp_samples=2, max_traces_per_segment=2000
        ).run(comp)
        return result.verdicts

    def test_honest_liveness(self):
        assert self._verdicts(AuctionBehavior(), "liveness") == frozenset({True})

    def test_honest_bob_conforming_and_safe(self):
        assert self._verdicts(AuctionBehavior(), "bob_conforming") == frozenset({True})
        assert self._verdicts(AuctionBehavior(), "bob_safety") == frozenset({True})

    def test_cheating_declaration_violates_liveness(self):
        behavior = AuctionBehavior(
            coin_declaration="sb",
            tckt_declaration="sc",
            bob_challenges=True,
            carol_challenges=True,
        )
        assert self._verdicts(behavior, "liveness") == frozenset({False})

    def test_bob_skipping_bid_nonconforming(self):
        behavior = AuctionBehavior(bob_bid="skip")
        assert self._verdicts(behavior, "bob_conforming") == frozenset({False})

    def test_cheated_bob_still_hedged(self):
        """Alice cheats, Bob challenges: his bid is refunded and he takes
        premium compensation."""
        behavior = AuctionBehavior(
            coin_declaration="sb",
            tckt_declaration="sc",
            bob_challenges=True,
            carol_challenges=True,
        )
        assert self._verdicts(behavior, "bob_hedged") == frozenset({True})
