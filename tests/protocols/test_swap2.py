"""Tests for the hedged two-party swap contracts and scheduler."""

import pytest

from repro.chain.log import computation_from_chains
from repro.errors import ContractRevert
from repro.monitor.fast import FastMonitor
from repro.protocols.scenarios import SWAP2_CONFORMING
from repro.protocols.swap2 import deploy_swap2, run_swap2
from repro.specs import swap2_specs


class TestContractRules:
    def test_conforming_run_emits_all_events(self):
        setup = run_swap2(SWAP2_CONFORMING)
        apr_names = [e.name for e in setup.apricot.log]
        ban_names = [e.name for e in setup.banana.log]
        assert apr_names == [
            "start",
            "premium_deposited",
            "asset_escrowed",
            "asset_redeemed",
            "premium_refunded",
            "all_asset_settled",
        ]
        assert ban_names == apr_names

    def test_conforming_run_swaps_assets(self):
        setup = run_swap2(SWAP2_CONFORMING)
        apr_token = setup.apricot.token("APR")
        ban_token = setup.banana.token("BAN")
        assert apr_token.balance_of("bob") == 100 + 1  # asset + premium back
        assert ban_token.balance_of("alice") == 100 + 2

    def test_escrow_requires_premium(self):
        setup = deploy_swap2()
        ok = setup.apricot.execute(100, lambda: setup.apricot_swap.escrow_asset("alice"))
        assert not ok
        assert "premium" in setup.apricot.failed[0][1]

    def test_redeem_requires_escrow(self):
        setup = deploy_swap2()
        setup.apricot.execute(100, lambda: setup.apricot_swap.deposit_premium("bob"))
        ok = setup.apricot.execute(
            200, lambda: setup.apricot_swap.redeem_asset("bob", setup.secret)
        )
        assert not ok

    def test_wrong_secret_rejected(self):
        setup = deploy_swap2()
        setup.apricot.execute(100, lambda: setup.apricot_swap.deposit_premium("bob"))
        setup.apricot.execute(200, lambda: setup.apricot_swap.escrow_asset("alice"))
        ok = setup.apricot.execute(
            300, lambda: setup.apricot_swap.redeem_asset("bob", "wrong")
        )
        assert not ok
        assert "secret" in setup.apricot.failed[-1][1]

    def test_wrong_party_rejected(self):
        setup = deploy_swap2()
        ok = setup.apricot.execute(
            100, lambda: setup.apricot_swap.deposit_premium("alice")
        )
        assert not ok

    def test_double_premium_rejected(self):
        setup = deploy_swap2()
        setup.apricot.execute(100, lambda: setup.apricot_swap.deposit_premium("bob"))
        ok = setup.apricot.execute(150, lambda: setup.apricot_swap.deposit_premium("bob"))
        assert not ok

    def test_settle_compensates_sore_loser(self):
        """Alice escrows, Bob never redeems: Alice gets asset back plus
        Bob's premium — the hedge."""
        behavior = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0]  # step 6 skipped
        setup = run_swap2(behavior)
        apr_token = setup.apricot.token("APR")
        assert apr_token.balance_of("alice") == 100 + 1
        assert apr_token.balance_of("bob") == 0
        names = [e.name for e in setup.apricot.log]
        assert "asset_refunded" in names and "premium_redeemed" in names

    def test_settle_refunds_premium_without_escrow(self):
        behavior = [1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]  # only premiums
        setup = run_swap2(behavior)
        apr_token = setup.apricot.token("APR")
        assert apr_token.balance_of("bob") == 1  # premium returned
        names = [e.name for e in setup.apricot.log]
        assert "premium_refunded" in names

    def test_late_step_emits_late_event(self):
        behavior = list(SWAP2_CONFORMING)
        behavior[1] = 1  # step 1 late
        setup = run_swap2(behavior, delta_ms=500)
        premium = setup.banana.log[1]
        assert premium.name == "premium_deposited"
        assert premium.local_time > 500  # past the deadline

    def test_token_conservation(self):
        for behavior in (SWAP2_CONFORMING, [1, 0] * 3 + [0, 0] * 3, [0, 0] * 6):
            setup = run_swap2(list(behavior))
            assert setup.apricot.token("APR").total_supply() == 101
            assert setup.banana.token("BAN").total_supply() == 102

    def test_bad_behavior_length_rejected(self):
        setup = deploy_swap2()
        from repro.protocols.swap2 import schedule_swap2

        with pytest.raises(ValueError):
            schedule_swap2(setup, [1, 0, 1])


class TestPolicyVerdicts:
    DELTA = 500

    def _verdicts(self, behavior, policy_name):
        setup = run_swap2(behavior, epsilon_ms=5, delta_ms=self.DELTA)
        comp = computation_from_chains([setup.apricot, setup.banana], 5)
        policy = swap2_specs.all_policies(self.DELTA)[policy_name]
        result = FastMonitor(policy).run(comp)
        assert result.exhaustive
        return result.verdicts

    def test_conforming_satisfies_liveness(self):
        assert self._verdicts(SWAP2_CONFORMING, "liveness") == frozenset({True})

    def test_conforming_satisfies_safety(self):
        assert self._verdicts(SWAP2_CONFORMING, "alice_safety") == frozenset({True})

    def test_skipped_step_violates_liveness(self):
        behavior = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0]
        assert self._verdicts(behavior, "liveness") == frozenset({False})

    def test_late_step_violates_liveness(self):
        behavior = list(SWAP2_CONFORMING)
        behavior[1] = 1
        assert False in self._verdicts(behavior, "liveness")

    def test_bob_deviating_flagged_nonconforming(self):
        behavior = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0]  # bob skips redeem
        assert self._verdicts(behavior, "bob_conforming") == frozenset({False})

    def test_sore_loser_alice_still_safe_and_hedged(self):
        behavior = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0]
        assert self._verdicts(behavior, "alice_safety") == frozenset({True})
        assert self._verdicts(behavior, "alice_hedged") == frozenset({True})
