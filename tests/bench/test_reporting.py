"""Tests for the bench reporting helpers (series tables, batch tables)."""

from __future__ import annotations

from repro.bench.reporting import (
    assert_monotone_nondecreasing,
    format_batch_report,
    format_series,
)
from repro.bench.runner import SweepPoint
from repro.monitor.verdicts import MonitorResult
from repro.mtl import parse
from repro.parallel.orchestrator import BatchReport
from repro.parallel.worker import BatchItem


def _item(index: int, verdicts, seconds: float = 0.1, error: str | None = None) -> BatchItem:
    if error is not None:
        return BatchItem(index=index, result=None, error=error, seconds=seconds, worker=1)
    result = MonitorResult(parse("F[0,5) a"))
    for verdict in verdicts:
        result.record(verdict)
    return BatchItem(index=index, result=result, error=None, seconds=seconds, worker=1)


class TestSeries:
    def test_format_series(self):
        points = [
            SweepPoint("a", 0.5, frozenset({True}), 10, 4),
            SweepPoint("b", 1.0, frozenset({True, False}), 20, 8),
        ]
        text = format_series("demo", points)
        assert "demo" in text and "{T}" in text and "{TF}" in text

    def test_empty_verdicts_dash(self):
        text = format_series("demo", [SweepPoint("x", 0.1, frozenset(), 0, 0)])
        assert "{-}" in text

    def test_monotone_check_accepts_growth(self):
        assert assert_monotone_nondecreasing([0.1, 0.2, 0.4, 0.8])

    def test_monotone_check_tolerates_noise(self):
        assert assert_monotone_nondecreasing([0.1, 0.09, 0.12])

    def test_monotone_check_rejects_collapse(self):
        assert not assert_monotone_nondecreasing([1.0, 0.1])


class TestBatchReportFormatting:
    def test_table_lists_items_and_totals(self):
        report = BatchReport(
            items=[_item(0, [True, True]), _item(1, [False]), _item(2, [True])],
            workers=2,
            wall_seconds=0.5,
        )
        text = format_batch_report("batch demo", report)
        assert "batch demo" in text
        assert "3/3 ok" in text
        assert "T×3" in text and "F×1" in text
        assert "2 workers" in text

    def test_errors_shown_per_item(self):
        report = BatchReport(
            items=[_item(0, [True]), _item(1, [], error="MonitorError: boom")],
            workers=1,
            wall_seconds=0.2,
        )
        text = format_batch_report("batch", report)
        assert "MonitorError: boom" in text
        assert "1/2 ok" in text

    def test_report_str_summary(self):
        report = BatchReport(items=[_item(0, [True])], workers=1, wall_seconds=0.1)
        text = str(report)
        assert "1/1 ok" in text and "workers" in text

    def test_utilization_bounds(self):
        report = BatchReport(
            items=[_item(0, [True], seconds=5.0)], workers=1, wall_seconds=0.1
        )
        assert report.utilization == 1.0  # clamped
        assert BatchReport().utilization == 0.0
