"""Tests for the bench runner: timed runs, sweeps, and batch reports.

Also smoke-tests the figure benchmarks themselves: every
``benchmarks/bench_*.py`` module must import and the shared workload
builders must construct, so a broken benchmark is caught by tier-1
instead of at figure-regeneration time.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.bench.runner import (
    SweepPoint,
    batch_sweep_point,
    measure_point,
    run_batch_timed,
    run_monitor_timed,
    sweep,
)
from repro.bench.workload import WorkloadSpec, formula_for, generate_workload

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"


class TestRunner:
    def test_run_monitor_timed(self):
        spec = WorkloadSpec(model="fischer", processes=1, length_seconds=0.5)
        comp = generate_workload(spec)
        phi = formula_for("phi4", 1, window_ms=500)
        result, elapsed = run_monitor_timed(
            phi, comp, segments=2, max_traces_per_segment=200
        )
        assert elapsed >= 0
        assert result.verdicts

    def test_measure_point(self):
        point = measure_point(
            label="t",
            formula_name="phi3",
            workload=WorkloadSpec(model="fischer", processes=2, length_seconds=0.5),
            segments=2,
            max_traces_per_segment=100,
        )
        assert point.runtime_seconds >= 0
        assert point.events > 0

    def test_sweep_preserves_order(self):
        def make(label):
            return SweepPoint(label, 0.0, frozenset({True}), 0, 0)

        points = sweep([("a", lambda: make("a")), ("b", lambda: make("b"))])
        assert [p.label for p in points] == ["a", "b"]


class TestBatch:
    def _batch(self):
        return [
            generate_workload(
                WorkloadSpec(model="fischer", processes=1, length_seconds=0.5, seed=seed)
            )
            for seed in range(3)
        ]

    def test_run_batch_timed(self):
        phi = formula_for("phi4", 1, window_ms=500)
        report = run_batch_timed(
            phi, self._batch(), workers=2, segments=2, max_traces_per_segment=200
        )
        assert len(report.items) == 3
        assert not report.errors
        assert report.wall_seconds > 0
        assert sum(report.verdict_totals.values()) > 0

    def test_batch_sweep_point(self):
        phi = formula_for("phi4", 1, window_ms=500)
        report = run_batch_timed(
            phi, self._batch(), workers=1, segments=2, max_traces_per_segment=200
        )
        point = batch_sweep_point("batch", report)
        assert point.label == "batch"
        assert point.runtime_seconds == report.wall_seconds
        assert point.events == 3
        assert point.extra["workers"] == 1
        assert point.extra["errors"] == 0


class TestBenchmarkModules:
    """Every figure benchmark must stay importable with working builders."""

    @staticmethod
    def _load(path: Path, name: str):
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @classmethod
    def _bench_conftest(cls):
        return cls._load(BENCHMARKS_DIR / "conftest.py", "bench_conftest")

    @pytest.mark.parametrize(
        "path",
        sorted(BENCHMARKS_DIR.glob("bench_*.py")),
        ids=lambda p: p.stem,
    )
    def test_module_imports_and_declares_benchmarks(self, path, monkeypatch):
        # Benchmark modules do `from conftest import ...` meaning the
        # benchmarks/ conftest, not the tests/ one pytest has loaded.
        monkeypatch.setitem(sys.modules, "conftest", self._bench_conftest())
        module = self._load(path, f"benchsmoke_{path.stem}")
        bench_functions = [
            name for name in vars(module) if name.startswith("bench_") and callable(getattr(module, name))
        ]
        assert bench_functions, f"{path.name} declares no bench_* function"

    def test_cached_workload_builder(self):
        conftest = self._bench_conftest()
        comp = conftest.cached_workload("fischer", 1, 0.5, 10.0, 15)
        assert len(comp) > 0
        assert comp.epsilon == 15
        assert conftest.cached_workload("fischer", 1, 0.5, 10.0, 15) is comp  # lru cache

    def test_cached_protocol_builders(self):
        from repro.protocols.scenarios import SWAP2_CONFORMING

        conftest = self._bench_conftest()
        swap2 = conftest.cached_swap2_computation(tuple(SWAP2_CONFORMING), 5, 500)
        assert len(swap2) > 0
        swap3 = conftest.cached_swap3_computation((1,) * 12, 5, 500)
        assert len(swap3) > 0

    def test_bench_monitor_uses_factory(self):
        from repro.monitor import Monitor, SmtMonitor

        conftest = self._bench_conftest()
        monitor = conftest.bench_monitor(formula_for("phi4", 1, 500), segments=4)
        assert isinstance(monitor, SmtMonitor)
        assert isinstance(monitor, Monitor)
