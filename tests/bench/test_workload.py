"""Tests for the benchmark workload harness."""

import pytest

from repro.bench.reporting import assert_monotone_nondecreasing, format_series
from repro.bench.runner import SweepPoint, measure_point, run_monitor_timed
from repro.bench.workload import (
    WorkloadSpec,
    formula_for,
    generate_workload,
    model_for_formula,
)
from repro.errors import ReproError


class TestWorkloads:
    def test_generate_default(self):
        spec = WorkloadSpec(model="fischer", processes=2, length_seconds=1.0)
        comp = generate_workload(spec)
        assert comp.epsilon == 15
        assert len(comp) > 0

    def test_length_ticks(self):
        spec = WorkloadSpec(length_seconds=2.0, events_per_second=10)
        assert spec.length_ticks() == 20

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            generate_workload(WorkloadSpec(model="petri"))

    def test_formula_lookup(self):
        phi = formula_for("phi4", 2, window_ms=500)
        assert phi.temporal_depth() == 2

    def test_unknown_formula_rejected(self):
        with pytest.raises(ReproError):
            formula_for("phi9", 2)

    def test_model_pairing(self):
        assert model_for_formula("phi1") == "train_gate"
        assert model_for_formula("phi4") == "fischer"
        assert model_for_formula("phi6") == "gossip"


class TestRunner:
    def test_run_monitor_timed(self):
        spec = WorkloadSpec(model="fischer", processes=1, length_seconds=0.5)
        comp = generate_workload(spec)
        phi = formula_for("phi4", 1, window_ms=500)
        result, elapsed = run_monitor_timed(
            phi, comp, segments=2, max_traces_per_segment=200
        )
        assert elapsed >= 0
        assert result.verdicts

    def test_measure_point(self):
        point = measure_point(
            label="t",
            formula_name="phi3",
            workload=WorkloadSpec(model="fischer", processes=2, length_seconds=0.5),
            segments=2,
            max_traces_per_segment=100,
        )
        assert point.runtime_seconds >= 0
        assert point.events > 0


class TestReporting:
    def test_format_series(self):
        points = [
            SweepPoint("a", 0.5, frozenset({True}), 10, 4),
            SweepPoint("b", 1.0, frozenset({True, False}), 20, 8),
        ]
        text = format_series("demo", points)
        assert "demo" in text and "{T}" in text and "{TF}" in text

    def test_monotone_check_accepts_growth(self):
        assert assert_monotone_nondecreasing([0.1, 0.2, 0.4, 0.8])

    def test_monotone_check_tolerates_noise(self):
        assert assert_monotone_nondecreasing([0.1, 0.09, 0.12])

    def test_monotone_check_rejects_collapse(self):
        assert not assert_monotone_nondecreasing([1.0, 0.1])
