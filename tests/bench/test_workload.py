"""Tests for the benchmark workload harness.

Runner and reporting coverage lives in ``test_runner.py`` and
``test_reporting.py``; this file owns workload generation only.
"""

import pytest

from repro.bench.workload import (
    WorkloadSpec,
    formula_for,
    generate_workload,
    model_for_formula,
)
from repro.errors import ReproError


class TestWorkloads:
    def test_generate_default(self):
        spec = WorkloadSpec(model="fischer", processes=2, length_seconds=1.0)
        comp = generate_workload(spec)
        assert comp.epsilon == 15
        assert len(comp) > 0

    def test_length_ticks(self):
        spec = WorkloadSpec(length_seconds=2.0, events_per_second=10)
        assert spec.length_ticks() == 20

    def test_seed_changes_workload(self):
        base = WorkloadSpec(model="fischer", processes=2, length_seconds=1.0)
        reseeded = WorkloadSpec(model="fischer", processes=2, length_seconds=1.0, seed=7)
        assert generate_workload(base).events != generate_workload(reseeded).events

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            generate_workload(WorkloadSpec(model="petri"))

    def test_formula_lookup(self):
        phi = formula_for("phi4", 2, window_ms=500)
        assert phi.temporal_depth() == 2

    def test_unknown_formula_rejected(self):
        with pytest.raises(ReproError):
            formula_for("phi9", 2)

    def test_model_pairing(self):
        assert model_for_formula("phi1") == "train_gate"
        assert model_for_formula("phi4") == "fischer"
        assert model_for_formula("phi6") == "gossip"
