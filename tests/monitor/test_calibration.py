"""Tests for the in-library calibration pass and service auto-calibration."""

from __future__ import annotations

import pytest

from repro.monitor.calibration import crossover, run_calibration
from repro.monitor.factory import _DEFAULT_THRESHOLDS, calibration, reset_calibration
from repro.service import MonitorService


class TestCrossover:
    def test_fast_wins_up_to_a_point(self):
        points = [
            {"events": 6, "fast_seconds": 0.01, "smt_seconds": 0.05},
            {"events": 12, "fast_seconds": 0.04, "smt_seconds": 0.05},
            {"events": 20, "fast_seconds": 0.40, "smt_seconds": 0.06},
        ]
        assert crossover(points, "events") == 12

    def test_fast_never_wins_collapses_below_first_point(self):
        points = [
            {"events": 6, "fast_seconds": None, "smt_seconds": 0.05},
            {"events": 12, "fast_seconds": None, "smt_seconds": 0.06},
        ]
        assert crossover(points, "events") == 5

    def test_empty_ladder_degrades_to_one(self):
        assert crossover([], "events") == 1


@pytest.mark.slow
class TestMeasuredCalibration:
    def test_quick_run_produces_loadable_thresholds(self):
        lines: list[str] = []
        report = run_calibration(quick=True, repeats=1, budget=2.0, log=lines.append)
        thresholds = report["thresholds"]
        assert set(thresholds) == {"fast_event_limit", "fast_epsilon_limit"}
        assert all(isinstance(v, int) and v >= 1 for v in thresholds.values())
        assert report["defaults"] == _DEFAULT_THRESHOLDS
        assert report["event_ladder"] and report["epsilon_ladder"]
        assert any("ladder" in line for line in lines)

    def test_service_auto_calibrate_applies_thresholds(self):
        import json
        import os

        from repro.monitor.factory import CALIBRATION_ENV_VAR

        try:
            with MonitorService(
                workers=1, auto_calibrate=True, auto_calibrate_budget=1.5
            ) as service:
                report = service.calibration_report
                assert report is not None
                live = calibration()
                for key, value in report["thresholds"].items():
                    assert live[key] == value
                # spawn-started workers re-import the factory: the env
                # hook must point at a loadable copy of this report
                path = os.environ[CALIBRATION_ENV_VAR]
                with open(path, encoding="utf-8") as handle:
                    assert json.load(handle)["thresholds"] == report["thresholds"]
        finally:
            path = os.environ.pop(CALIBRATION_ENV_VAR, None)
            if path and os.path.exists(path):
                os.remove(path)
            reset_calibration()

    def test_no_auto_calibrate_leaves_thresholds_alone(self):
        before = calibration()
        with MonitorService(workers=1) as service:
            assert service.calibration_report is None
        assert calibration() == before
