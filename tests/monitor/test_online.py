"""Tests for the online (streaming) monitor."""

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse


class TestStreaming:
    def test_single_flush_matches_offline(self):
        spec = parse("a U[0,6) b")
        online = OnlineMonitor(spec, epsilon=2)
        for process, t, props in [
            ("P1", 1, "a"), ("P1", 4, ()), ("P2", 2, "a"), ("P2", 5, "b")
        ]:
            online.observe(process, t, props)
        result = online.finish()

        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        offline = SmtMonitor(spec, saturate=False).run(comp)
        assert result.verdicts == offline.verdicts

    def test_incremental_advancing(self):
        spec = parse("F[0,100) done")
        online = OnlineMonitor(spec, epsilon=1)
        online.observe("P1", 5, "start")
        verdicts = online.advance_to(10)
        assert not verdicts  # still pending
        assert online.undecided_residuals >= 1
        online.observe("P1", 50, "done")
        online.advance_to(60)
        result = online.finish()
        assert result.definitely_satisfied

    def test_violation_detected_at_finish(self):
        spec = parse("G[0,100) !bad")
        online = OnlineMonitor(spec, epsilon=1)
        online.observe("P1", 5, ())
        online.observe("P1", 20, "bad")
        result = online.finish()
        assert result.definitely_violated

    def test_pending_counter(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 5, "p")
        online.observe("P1", 50, ())
        assert online.pending == 2
        online.advance_to(10)
        assert online.pending == 1

    def test_late_event_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.advance_to(100)
        with pytest.raises(MonitorError):
            online.observe("P1", 5, "p")

    def test_backwards_advance_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.advance_to(10)
        with pytest.raises(MonitorError):
            online.advance_to(5)

    def test_observe_after_finish_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 1, "p")
        online.finish()
        with pytest.raises(MonitorError):
            online.observe("P1", 2, "p")

    def test_finish_idempotent(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 1, "p")
        first = online.finish()
        second = online.finish()
        assert first is second

    def test_empty_stream(self):
        online = OnlineMonitor(parse("F[0,5) p"), epsilon=1)
        result = online.finish()
        assert result.definitely_violated

    def test_multi_segment_verdict_set(self):
        """Both verdicts can emerge across separately flushed segments."""
        spec = parse("F[0,4) b")
        online = OnlineMonitor(spec, epsilon=3)
        online.observe("P1", 1, "a")
        online.observe("P2", 3, "b")
        result = online.finish()
        # b's admissible time ranges over [1,5]; relative to a's time the
        # offset can fall inside or outside [0,4).
        assert result.verdicts == frozenset({True, False})


class TestEdgeCases:
    """Out-of-order observation, empty segments, double finish, and the
    message-edge rejection path (the streaming API's corner cases)."""

    def test_out_of_order_observe_after_advance(self):
        online = OnlineMonitor(parse("F[0,100) p"), epsilon=1)
        online.observe("P1", 5, ())
        online.advance_to(10)
        with pytest.raises(MonitorError, match="advanced past"):
            online.observe("P1", 9, "p")
        # exactly at the frontier is still admissible...
        online.observe("P1", 10, "p")
        # ...and a rejected event must not corrupt the stream
        result = online.finish()
        assert result.definitely_satisfied

    def test_out_of_order_between_processes(self):
        """The frontier applies to every process, not just the one that
        triggered the advance."""
        online = OnlineMonitor(parse("F[0,100) p"), epsilon=2)
        online.observe("P1", 20, ())
        online.advance_to(15)
        with pytest.raises(MonitorError, match="advanced past"):
            online.observe("P2", 3, "p")

    def test_empty_segment_advances(self):
        """Advancing over a window with no buffered events consumes no
        segment and decides nothing new."""
        spec = parse("F[0,100) done")
        online = OnlineMonitor(spec, epsilon=1)
        online.observe("P1", 5, "start")
        online.advance_to(10)
        reports_after_first = len(online._result.segment_reports)
        online.advance_to(20)  # empty window: nothing buffered below 20
        online.advance_to(30)  # and again
        assert len(online._result.segment_reports) == reports_after_first
        assert online.pending == 0
        assert online.undecided_residuals >= 1
        online.observe("P1", 50, "done")
        result = online.finish()
        assert result.definitely_satisfied

    def test_leading_empty_advance(self):
        """An empty advance before the first event must not anchor the
        formula early: verdicts match the unadvanced stream."""
        spec = parse("F[0,8) b")
        plain = OnlineMonitor(spec, epsilon=2)
        plain.observe("P1", 6, "b")
        expected = plain.finish()

        advanced = OnlineMonitor(spec, epsilon=2)
        advanced.advance_to(3)  # nothing observed yet
        advanced.observe("P1", 6, "b")
        assert advanced.finish().verdict_counts == expected.verdict_counts

    def test_empty_stream_with_empty_advances(self):
        online = OnlineMonitor(parse("G[0,5) p"), epsilon=1)
        online.advance_to(10)
        online.advance_to(20)
        result = online.finish()
        # weak G over no observations closes to True
        assert result.definitely_satisfied

    def test_double_finish_returns_same_object(self):
        online = OnlineMonitor(parse("F[0,10) p"), epsilon=1)
        online.observe("P1", 2, "p")
        first = online.finish()
        second = online.finish()
        assert second is first
        assert online.finished
        assert online.current_verdicts == first.verdicts

    def test_advance_after_finish_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.finish()
        with pytest.raises(MonitorError, match="finished"):
            online.advance_to(10)

    def test_default_budget_tames_the_roadmap_blowup(self):
        """ROADMAP's blowup case: ``F[0,30) b``, epsilon 2, 16 events on
        one process, no intervening advance.  With the old unbounded
        default (``max_traces_per_segment=None``) the final segment's
        enumeration effectively never terminated; the finite default
        budget must finish in seconds with a truncation report instead.
        """
        monitor = OnlineMonitor(parse("F[0,30) b"), epsilon=2)
        for t in range(16):
            monitor.observe("P1", t, {"b"} if t == 7 else ())
        result = monitor.finish()
        assert result.truncated
        assert not result.exhaustive
        assert result.segment_reports[0].truncated
        assert result.may_be_satisfied  # the witness at t=7 is found
        # The budget, not exhaustion, stopped enumeration.
        from repro.encoding.verdict_enumerator import DEFAULT_TRACE_BUDGET

        assert result.segment_reports[0].traces_enumerated == DEFAULT_TRACE_BUDGET

    def test_explicit_none_budget_is_unbounded(self):
        """``max_traces_per_segment=None`` still opts out of the budget
        (small case, exhaustively enumerable)."""
        monitor = OnlineMonitor(parse("F[0,8) b"), epsilon=1, max_traces_per_segment=None)
        monitor.observe("P1", 2, "b")
        result = monitor.finish()
        assert result.exhaustive
        assert not result.truncated

    def test_run_rejects_message_edges(self):
        """Dropping message edges would enlarge the admissible-trace set
        and return unsound verdicts, so run() must refuse them."""
        computation = DistributedComputation(2)
        send = computation.add_event("P1", 1, "a")
        recv = computation.add_event("P2", 3, "b")
        computation.add_message(send, recv)
        online = OnlineMonitor(parse("a U[0,6) b"), epsilon=2)
        with pytest.raises(MonitorError, match="message edges"):
            online.run(computation)
        # the failed run leaves the streaming instance untouched
        online.observe("P1", 1, "a")
        assert online.pending == 1


class TestSnapshotRestore:
    """Migration support: a restored monitor continues bit-identically."""

    def _feed_first_half(self, monitor: OnlineMonitor) -> None:
        monitor.observe("P1", 1, "a")
        monitor.observe("P2", 2, "a")
        monitor.observe("P1", 5, "a")
        monitor.advance_to(4)
        monitor.observe("P2", 6, "a")  # buffered beyond the frontier

    def _feed_second_half(self, monitor: OnlineMonitor) -> None:
        monitor.observe("P1", 8, "b")
        monitor.observe("P2", 11, ())

    def test_restore_continues_bit_identically(self):
        spec = parse("a U[0,20) b")
        reference = OnlineMonitor(spec, epsilon=2)
        self._feed_first_half(reference)
        self._feed_second_half(reference)
        expected = reference.finish()

        origin = OnlineMonitor(spec, epsilon=2)
        self._feed_first_half(origin)
        restored = OnlineMonitor.restore(origin.snapshot())
        self._feed_second_half(restored)
        result = restored.finish()
        assert result.verdict_counts == expected.verdict_counts
        assert result.verdicts == expected.verdicts

    def test_snapshot_round_trips_through_pickle(self):
        """The payload must cross the wire codec (migration is remote)."""
        import pickle

        spec = parse("F[0,30) b")
        origin = OnlineMonitor(spec, epsilon=1)
        origin.observe("P1", 2, "a")
        origin.advance_to(5)
        origin.observe("P1", 7, "b")
        snapshot = pickle.loads(pickle.dumps(origin.snapshot()))
        restored = OnlineMonitor.restore(snapshot)
        assert restored.pending == origin.pending
        assert restored.undecided_residuals == origin.undecided_residuals
        assert restored.finish().verdict_counts == origin.finish().verdict_counts

    def test_restore_preserves_frontier_validation(self):
        origin = OnlineMonitor(parse("F p"), epsilon=1)
        origin.advance_to(10)
        restored = OnlineMonitor.restore(origin.snapshot())
        with pytest.raises(MonitorError, match="advanced past"):
            restored.observe("P1", 3, "p")

    def test_restore_rejects_bad_snapshots(self):
        with pytest.raises(MonitorError, match="malformed"):
            OnlineMonitor.restore({"no": "version"})
        origin = OnlineMonitor(parse("F p"), epsilon=1)
        snapshot = origin.snapshot()
        snapshot["version"] = 99
        with pytest.raises(MonitorError, match="version 99"):
            OnlineMonitor.restore(snapshot)
