"""Tests for the online (streaming) monitor."""

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse


class TestStreaming:
    def test_single_flush_matches_offline(self):
        spec = parse("a U[0,6) b")
        online = OnlineMonitor(spec, epsilon=2)
        for process, t, props in [
            ("P1", 1, "a"), ("P1", 4, ()), ("P2", 2, "a"), ("P2", 5, "b")
        ]:
            online.observe(process, t, props)
        result = online.finish()

        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        offline = SmtMonitor(spec, saturate=False).run(comp)
        assert result.verdicts == offline.verdicts

    def test_incremental_advancing(self):
        spec = parse("F[0,100) done")
        online = OnlineMonitor(spec, epsilon=1)
        online.observe("P1", 5, "start")
        verdicts = online.advance_to(10)
        assert not verdicts  # still pending
        assert online.undecided_residuals >= 1
        online.observe("P1", 50, "done")
        online.advance_to(60)
        result = online.finish()
        assert result.definitely_satisfied

    def test_violation_detected_at_finish(self):
        spec = parse("G[0,100) !bad")
        online = OnlineMonitor(spec, epsilon=1)
        online.observe("P1", 5, ())
        online.observe("P1", 20, "bad")
        result = online.finish()
        assert result.definitely_violated

    def test_pending_counter(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 5, "p")
        online.observe("P1", 50, ())
        assert online.pending == 2
        online.advance_to(10)
        assert online.pending == 1

    def test_late_event_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.advance_to(100)
        with pytest.raises(MonitorError):
            online.observe("P1", 5, "p")

    def test_backwards_advance_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.advance_to(10)
        with pytest.raises(MonitorError):
            online.advance_to(5)

    def test_observe_after_finish_rejected(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 1, "p")
        online.finish()
        with pytest.raises(MonitorError):
            online.observe("P1", 2, "p")

    def test_finish_idempotent(self):
        online = OnlineMonitor(parse("F p"), epsilon=1)
        online.observe("P1", 1, "p")
        first = online.finish()
        second = online.finish()
        assert first is second

    def test_empty_stream(self):
        online = OnlineMonitor(parse("F[0,5) p"), epsilon=1)
        result = online.finish()
        assert result.definitely_violated

    def test_multi_segment_verdict_set(self):
        """Both verdicts can emerge across separately flushed segments."""
        spec = parse("F[0,4) b")
        online = OnlineMonitor(spec, epsilon=3)
        online.observe("P1", 1, "a")
        online.observe("P2", 3, "b")
        result = online.finish()
        # b's admissible time ranges over [1,5]; relative to a's time the
        # offset can fall inside or outside [0,4).
        assert result.verdicts == frozenset({True, False})
