"""Tests for the memoized FastMonitor — exactness is the whole point."""

import pytest
from hypothesis import given, settings

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.fast import FastMonitor
from repro.mtl import parse

from tests.conftest import formulas, small_computations


class TestExactEquivalence:
    """FastMonitor must return the baseline's verdict multiset exactly."""

    @settings(max_examples=60, deadline=None)
    @given(small_computations(), formulas(max_depth=2))
    def test_matches_baseline_counts(self, comp, phi):
        fast = FastMonitor(phi).run(comp)
        baseline = EnumerationMonitor(phi).run(comp)
        assert fast.verdict_counts == baseline.verdict_counts

    def test_fig3(self, fig3_computation, fig3_formula):
        result = FastMonitor(fig3_formula).run(fig3_computation)
        assert result.verdict_counts == {True: 112, False: 18}
        assert result.exhaustive


class TestScaling:
    def test_wide_windows_tractable(self):
        """A chain of events with huge skew windows: the raw trace count
        is astronomical, yet the verdict multiset is computed exactly."""
        comp = DistributedComputation.from_event_lists(
            20,
            {
                "P1": [(100, "a"), (200, "a"), (300, "a"), (400, "a")],
                "P2": [(150, ()), (250, ()), (350, "b")],
            },
        )
        spec = parse("a U[0,400) b")
        result = FastMonitor(spec).run(comp)
        total = sum(result.verdict_counts.values())
        assert total > 10**9  # far beyond anything enumerable
        assert result.verdicts

    def test_trace_count_matches_report(self, fig3_computation, fig3_formula):
        result = FastMonitor(fig3_formula).run(fig3_computation)
        assert result.segment_reports[0].traces_enumerated == 130

    def test_too_many_events_rejected(self):
        comp = DistributedComputation(1)
        for i in range(301):
            comp.add_event("P1", i)
        with pytest.raises(MonitorError):
            FastMonitor(parse("G p")).run(comp)


class TestEdgeCases:
    def test_empty_computation(self):
        comp = DistributedComputation(1)
        assert FastMonitor(parse("F[0,5) p")).run(comp).definitely_violated
        assert FastMonitor(parse("G[0,5) p")).run(comp).definitely_satisfied

    def test_single_event(self):
        comp = DistributedComputation.from_event_lists(1, {"P1": [(0, "p")]})
        assert FastMonitor(parse("p")).run(comp).definitely_satisfied
        assert FastMonitor(parse("!p")).run(comp).definitely_violated

    def test_sampling_marks_incomplete(self, fig3_computation, fig3_formula):
        result = FastMonitor(fig3_formula, timestamp_samples=2).run(fig3_computation)
        assert not result.verdict_set_complete
        exact = FastMonitor(fig3_formula).run(fig3_computation)
        assert result.verdicts <= exact.verdicts

    def test_payoff_predicates_supported(self):
        from repro.specs.payoff import non_negative_payoff
        from repro.mtl import ast

        comp = DistributedComputation(2)
        comp.add_event("P1", 1, "pay", {"to.alice": 10})
        comp.add_event("P2", 5, "end", {"from.alice": 3})
        phi = ast.always(ast.implies(ast.atom("end"), non_negative_payoff("alice")))
        result = FastMonitor(phi).run(comp)
        assert result.definitely_satisfied
