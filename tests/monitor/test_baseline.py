"""Direct tests for the explicit-enumeration baseline monitor.

The baseline is the oracle every other engine is validated against, so
it deserves its own tests instead of being exercised only through
cross-checks.
"""

from __future__ import annotations

import pytest

from repro.distributed.computation import DistributedComputation
from repro.monitor.baseline import EnumerationMonitor
from repro.mtl import parse


class TestEmptyComputation:
    def test_strong_obligations_violated(self):
        result = EnumerationMonitor(parse("F[0,5) a")).run(DistributedComputation(2))
        assert result.verdict_counts == {False: 1}
        assert result.definitely_violated

    def test_weak_obligations_satisfied(self):
        result = EnumerationMonitor(parse("G[0,5) a")).run(DistributedComputation(2))
        assert result.verdict_counts == {True: 1}
        assert result.definitely_satisfied

    def test_until_violated(self):
        result = EnumerationMonitor(parse("a U[0,5) b")).run(DistributedComputation(2))
        assert result.verdict_counts == {False: 1}


class TestSingleEvent:
    def _comp(self) -> DistributedComputation:
        return DistributedComputation.from_event_lists(1, {"P1": [(3, "a")]})

    def test_holding_atom(self):
        result = EnumerationMonitor(parse("F[0,1) a")).run(self._comp())
        # Perfect synchrony: exactly one admissible trace.
        assert result.verdict_counts == {True: 1}
        assert result.is_deterministic and result.exhaustive

    def test_absent_atom(self):
        result = EnumerationMonitor(parse("F[0,1) b")).run(self._comp())
        assert result.verdict_counts == {False: 1}

    def test_skew_multiplies_trace_classes(self):
        comp = DistributedComputation.from_event_lists(3, {"P1": [(3, "a")]})
        result = EnumerationMonitor(parse("F[0,9) a")).run(comp)
        # One event, epsilon 3: five admissible timestamps (1..5), all True.
        assert result.verdict_counts == {True: 5}


class TestFig3:
    def test_verdict_multiset(self, fig3_computation, fig3_formula):
        result = EnumerationMonitor(fig3_formula).run(fig3_computation)
        assert result.verdict_counts == {True: 112, False: 18}
        assert result.verdicts == {True, False}
        assert not result.is_deterministic
        assert result.exhaustive and result.verdict_set_complete

    def test_trace_budget_truncates(self, fig3_computation, fig3_formula):
        result = EnumerationMonitor(fig3_formula, max_traces=10).run(fig3_computation)
        assert sum(result.verdict_counts.values()) == 10
        assert not result.exhaustive

    def test_budget_above_total_stays_exhaustive(self, fig3_computation, fig3_formula):
        result = EnumerationMonitor(fig3_formula, max_traces=1000).run(fig3_computation)
        assert result.verdict_counts == {True: 112, False: 18}
        assert result.exhaustive

    def test_timestamp_sampling_reduces_work(self, fig3_computation, fig3_formula):
        sampled = EnumerationMonitor(fig3_formula, timestamp_samples=2).run(
            fig3_computation
        )
        assert sum(sampled.verdict_counts.values()) < 130
        assert sampled.verdicts <= {True, False}
