"""Tests for the solver-backed monitor: paper examples, baseline
equivalence, segmentation, saturation, verdict bookkeeping."""

import pytest
from hypothesis import given, settings

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.smt_monitor import SmtMonitor, monitor
from repro.mtl import ast, parse
from repro.mtl.interval import Interval

from tests.conftest import formulas, small_computations


class TestFig3Example:
    """Section III's motivating example: both verdicts are possible."""

    def test_verdict_set_is_both(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, saturate=False).run(fig3_computation)
        assert result.verdicts == frozenset({True, False})
        assert not result.is_deterministic

    def test_matches_baseline_counts(self, fig3_computation, fig3_formula):
        smt = SmtMonitor(fig3_formula, saturate=False).run(fig3_computation)
        baseline = EnumerationMonitor(fig3_formula).run(fig3_computation)
        assert smt.verdict_counts == baseline.verdict_counts

    def test_saturation_still_finds_both(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, saturate=True).run(fig3_computation)
        assert result.verdicts == frozenset({True, False})
        assert result.verdict_set_complete

    def test_with_perfect_clocks_verdict_unique(self, fig3_formula):
        comp = DistributedComputation.from_event_lists(
            1, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        result = SmtMonitor(fig3_formula, saturate=False).run(comp)
        assert result.is_deterministic


class TestBaselineEquivalence:
    """The central soundness theorem of the reproduction: with g=1 the
    segmented solver monitor equals brute-force enumeration exactly."""

    @settings(max_examples=60, deadline=None)
    @given(small_computations(), formulas(max_depth=2))
    def test_verdict_counts_match(self, comp, phi):
        smt = SmtMonitor(phi, segments=1, saturate=False).run(comp)
        baseline = EnumerationMonitor(phi).run(comp)
        assert smt.verdict_counts == baseline.verdict_counts

    @settings(max_examples=30, deadline=None)
    @given(small_computations(), formulas(max_depth=2))
    def test_csp_backend_matches(self, comp, phi):
        dfs = SmtMonitor(phi, saturate=False, backend="dfs").run(comp)
        csp = SmtMonitor(phi, saturate=False, backend="csp").run(comp)
        assert dfs.verdict_counts == csp.verdict_counts

    @settings(max_examples=30, deadline=None)
    @given(small_computations(), formulas(max_depth=2))
    def test_segmentation_preserves_verdict_subset(self, comp, phi):
        """Segmented verdicts are a subset of the exact verdict set (the
        boundary clamping can only remove interleavings, never invent)."""
        exact = SmtMonitor(phi, segments=1, saturate=False).run(comp)
        segmented = SmtMonitor(phi, segments=3, saturate=False).run(comp)
        assert segmented.verdicts <= exact.verdicts
        assert segmented.verdicts  # never empty


class TestSegmentation:
    def test_two_segments_report(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, segments=2, saturate=False).run(fig3_computation)
        assert len(result.segment_reports) == 2
        assert all(r.events > 0 for r in result.segment_reports)

    def test_more_segments_than_events(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, segments=50, saturate=False).run(fig3_computation)
        assert result.verdicts

    def test_invalid_segments_rejected(self, fig3_formula):
        with pytest.raises(MonitorError):
            SmtMonitor(fig3_formula, segments=0)


class TestBudgets:
    def test_max_traces_flags_incomplete(self, fig3_computation, fig3_formula):
        result = SmtMonitor(
            fig3_formula, max_traces_per_segment=3, saturate=False
        ).run(fig3_computation)
        assert not result.exhaustive
        assert not result.verdict_set_complete

    def test_max_distinct_stops_early(self, fig3_computation, fig3_formula):
        result = SmtMonitor(
            fig3_formula, max_distinct_per_segment=1, saturate=False
        ).run(fig3_computation)
        assert len(result.verdicts) >= 1
        assert not result.exhaustive

    def test_sampling_flags_incomplete(self, fig3_computation, fig3_formula):
        result = SmtMonitor(
            fig3_formula, timestamp_samples=2, saturate=False
        ).run(fig3_computation)
        assert not result.verdict_set_complete
        assert result.verdicts  # still sound: found verdicts are real

    def test_sampled_verdicts_are_subset_of_exact(self, fig3_computation, fig3_formula):
        exact = SmtMonitor(fig3_formula, saturate=False).run(fig3_computation)
        sampled = SmtMonitor(fig3_formula, timestamp_samples=2, saturate=False).run(
            fig3_computation
        )
        assert sampled.verdicts <= exact.verdicts


class TestEmptyComputation:
    def test_strong_obligation_violated(self):
        comp = DistributedComputation(1)
        result = monitor(parse("F[0,5) p"), comp)
        assert result.definitely_violated

    def test_weak_obligation_satisfied(self):
        comp = DistributedComputation(1)
        result = monitor(parse("G[0,5) p"), comp)
        assert result.definitely_satisfied


class TestVerdictBookkeeping:
    def test_counts_and_str(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, saturate=False).run(fig3_computation)
        assert result.count(True) + result.count(False) == sum(
            r.traces_enumerated for r in result.segment_reports
        )
        assert "T×" in str(result) and "F×" in str(result)

    def test_boolean_queries(self, fig3_computation, fig3_formula):
        result = SmtMonitor(fig3_formula, saturate=False).run(fig3_computation)
        assert result.may_be_satisfied
        assert result.may_be_violated
        assert not result.definitely_satisfied
        assert not result.definitely_violated


class TestEarlyResolution:
    def test_all_residuals_resolved_stops_early(self):
        """A formula decided by the first segment stops the monitor."""
        comp = DistributedComputation.from_event_lists(
            1, {"P1": [(0, "p"), (10, ()), (20, ()), (30, ())]}
        )
        result = SmtMonitor(parse("p"), segments=4, saturate=False).run(comp)
        assert result.definitely_satisfied
        assert len(result.segment_reports) == 1
