"""Randomized differential tests: every monitor, one verdict multiset.

The repo documents SmtMonitor (unsegmented, unsaturated), FastMonitor,
and the explicit-enumeration baseline as *verdict-multiset-equivalent*;
these property tests make that claim continuously checked instead of
asserted.  The solver backends ("dfs" vs the paper-literal "csp" cut
encoding) are likewise cross-checked.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.fast import FastMonitor
from repro.monitor.smt_monitor import SmtMonitor

from tests.conftest import formulas, small_computations
from tests.mtl.test_interning import structural_clone

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=40, **_SETTINGS)
def test_smt_fast_baseline_agree(computation, formula):
    """The three offline monitors produce identical verdict multisets."""
    baseline = EnumerationMonitor(formula).run(computation)
    smt = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    fast = FastMonitor(formula).run(computation)
    assert smt.verdict_counts == baseline.verdict_counts
    assert fast.verdict_counts == baseline.verdict_counts
    assert smt.exhaustive and fast.exhaustive and baseline.exhaustive


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=20, **_SETTINGS)
def test_csp_backend_agrees_with_dfs(computation, formula):
    """The paper-literal CSP cut encoding enumerates the same multiset."""
    dfs = SmtMonitor(formula, segments=1, saturate=False, backend="dfs").run(computation)
    csp = SmtMonitor(formula, segments=1, saturate=False, backend="csp").run(computation)
    assert csp.verdict_counts == dfs.verdict_counts


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=40, **_SETTINGS)
def test_interned_equals_structural(computation, formula):
    """Interning is invisible to verdicts: a formula rebuilt through the
    raw (non-interning) constructors produces a bit-identical verdict
    multiset to the canonical instance, across engines and segmentation."""
    clone = structural_clone(formula)
    assert clone == formula
    interned = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    structural = SmtMonitor(clone, segments=1, saturate=False).run(computation)
    assert structural.verdict_counts == interned.verdict_counts
    segmented_interned = SmtMonitor(formula, segments=3, saturate=False).run(computation)
    segmented_structural = SmtMonitor(clone, segments=3, saturate=False).run(computation)
    assert segmented_structural.verdict_counts == segmented_interned.verdict_counts


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=20, **_SETTINGS)
def test_saturation_is_lossless_for_the_verdict_set(computation, formula):
    """Stopping enumeration once both verdicts are witnessed (the default
    ``saturate=True``) may make counts partial but never changes the
    verdict *set*."""
    exact = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    saturated = SmtMonitor(formula, segments=1, saturate=True).run(computation)
    assert saturated.verdicts == exact.verdicts
    assert saturated.verdict_set_complete
