"""Randomized differential tests: every monitor, one verdict multiset.

The repo documents SmtMonitor (unsegmented, unsaturated), FastMonitor,
and the explicit-enumeration baseline as *verdict-multiset-equivalent*;
these property tests make that claim continuously checked instead of
asserted.  The solver backends ("dfs" vs the paper-literal "csp" cut
encoding) are likewise cross-checked.
"""

from __future__ import annotations

import os
import pickle
from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings

from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.fast import FastMonitor
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.monitor.verdicts import MonitorResult
from repro.progression.progressor import close

from tests.conftest import formulas, small_computations
from tests.mtl.test_interning import structural_clone

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=40, **_SETTINGS)
def test_smt_fast_baseline_agree(computation, formula):
    """The three offline monitors produce identical verdict multisets."""
    baseline = EnumerationMonitor(formula).run(computation)
    smt = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    fast = FastMonitor(formula).run(computation)
    assert smt.verdict_counts == baseline.verdict_counts
    assert fast.verdict_counts == baseline.verdict_counts
    assert smt.exhaustive and fast.exhaustive and baseline.exhaustive


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=20, **_SETTINGS)
def test_csp_backend_agrees_with_dfs(computation, formula):
    """The paper-literal CSP cut encoding enumerates the same multiset."""
    dfs = SmtMonitor(formula, segments=1, saturate=False, backend="dfs").run(computation)
    csp = SmtMonitor(formula, segments=1, saturate=False, backend="csp").run(computation)
    assert csp.verdict_counts == dfs.verdict_counts


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=40, **_SETTINGS)
def test_interned_equals_structural(computation, formula):
    """Interning is invisible to verdicts: a formula rebuilt through the
    raw (non-interning) constructors produces a bit-identical verdict
    multiset to the canonical instance, across engines and segmentation."""
    clone = structural_clone(formula)
    assert clone == formula
    interned = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    structural = SmtMonitor(clone, segments=1, saturate=False).run(computation)
    assert structural.verdict_counts == interned.verdict_counts
    segmented_interned = SmtMonitor(formula, segments=3, saturate=False).run(computation)
    segmented_structural = SmtMonitor(clone, segments=3, saturate=False).run(computation)
    assert segmented_structural.verdict_counts == segmented_interned.verdict_counts


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=20, **_SETTINGS)
def test_saturation_is_lossless_for_the_verdict_set(computation, formula):
    """Stopping enumeration once both verdicts are witnessed (the default
    ``saturate=True``) may make counts partial but never changes the
    verdict *set*."""
    exact = SmtMonitor(formula, segments=1, saturate=False).run(computation)
    saturated = SmtMonitor(formula, segments=1, saturate=True).run(computation)
    assert saturated.verdicts == exact.verdicts
    assert saturated.verdict_set_complete


# -- columnar <-> object path ----------------------------------------------------


@contextmanager
def _columnar(enabled: bool):
    """Select the progression engine for the enclosed workload."""
    previous = os.environ.get("REPRO_COLUMNAR")
    os.environ["REPRO_COLUMNAR"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_COLUMNAR", None)
        else:
            os.environ["REPRO_COLUMNAR"] = previous


def _pipeline_trajectory(formula, computation, segments):
    """Verdict counts plus the carried residual dict after *every* segment.

    Drives the resumable ``step`` API directly so the intermediate
    carried sets — not just the final verdicts — are comparable between
    the columnar kernel and the legacy object walk.
    """
    engine = SmtMonitor(formula, segments=segments, saturate=False)
    result = MonitorResult(formula)
    hb = computation.happened_before()
    segs = engine.segments_of(computation)
    state = engine.initial_state()
    carried_per_segment = []
    for order in range(len(segs)):
        if not state.carried:
            break
        state = engine.step(hb, segs, order, state, result, computation.epsilon)
        carried_per_segment.append(dict(state.carried))
    for residual, count in state.carried.items():
        result.record(close(residual), count)
    return result.verdict_counts, carried_per_segment


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=30, **_SETTINGS)
def test_columnar_equals_object_path(computation, formula):
    """The columnar kernel and the legacy object walk are bit-identical:
    same verdict multisets AND same carried residual dicts at every
    segment boundary, serial and segmented."""
    for segments in (1, 3):
        with _columnar(True):
            col_counts, col_carried = _pipeline_trajectory(
                formula, computation, segments
            )
        with _columnar(False):
            obj_counts, obj_carried = _pipeline_trajectory(
                formula, computation, segments
            )
        assert col_counts == obj_counts
        assert col_carried == obj_carried


@given(computation=small_computations(), formula=formulas(max_depth=2))
@settings(max_examples=15, **_SETTINGS)
def test_columnar_snapshot_restores_onto_object_path(computation, formula):
    """A session snapshot taken mid-stream under the columnar kernel
    restores and finishes bit-identically under the object path (and
    vice versa): the snapshot wire format carries materialized formulas,
    never arena ids."""
    events = sorted(computation.events, key=lambda e: (e.local_time, e.process, e.seq))
    if len(events) < 2:
        return
    cut = events[len(events) // 2].local_time + 1
    epsilon = computation.epsilon

    def run_split(first_columnar: bool, second_columnar: bool):
        with _columnar(first_columnar):
            origin = OnlineMonitor(formula, epsilon)
            for event in events:
                if event.local_time < cut:
                    origin.observe(event.process, event.local_time, event.props)
            origin.advance_to(cut)
            snapshot = pickle.loads(pickle.dumps(origin.snapshot()))
        with _columnar(second_columnar):
            restored = OnlineMonitor.restore(snapshot)
            for event in events:
                if event.local_time >= cut:
                    restored.observe(event.process, event.local_time, event.props)
            return restored.finish()

    baseline = run_split(False, False)
    for flags in ((True, True), (True, False), (False, True)):
        result = run_split(*flags)
        assert result.verdict_counts == baseline.verdict_counts
        assert result.verdicts == baseline.verdicts
