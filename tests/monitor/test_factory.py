"""Tests for the Monitor protocol and the make_monitor factory."""

from __future__ import annotations

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor import (
    EnumerationMonitor,
    FastMonitor,
    Monitor,
    OnlineMonitor,
    SmtMonitor,
    available_monitors,
    formula_size,
    make_monitor,
    register_monitor,
    select_kind,
)
from repro.monitor import (
    apply_calibration,
    calibration,
    load_calibration,
    reset_calibration,
)
from repro.monitor.factory import (
    FAST_EPSILON_LIMIT,
    FAST_EVENT_LIMIT,
    _REGISTRY,
)
from repro.mtl import parse


@pytest.fixture
def spec():
    return parse("a U[0,6) b")


class TestRegistry:
    def test_all_kinds_constructible(self, spec):
        expected = {
            "smt": SmtMonitor,
            "fast": FastMonitor,
            "baseline": EnumerationMonitor,
            "enumeration": EnumerationMonitor,
            "online": OnlineMonitor,
        }
        for kind, cls in expected.items():
            engine = make_monitor(spec, kind, epsilon=2)
            assert isinstance(engine, cls)
            assert isinstance(engine, Monitor)
            assert engine.formula == spec

    def test_available_monitors(self):
        kinds = available_monitors()
        assert {"smt", "fast", "baseline", "online"} <= set(kinds)
        assert kinds == tuple(sorted(kinds))

    def test_unknown_kind_rejected(self, spec):
        with pytest.raises(MonitorError, match="unknown monitor kind"):
            make_monitor(spec, "z3")

    def test_register_custom_kind(self, spec):
        class EchoMonitor:
            def __init__(self, formula):
                self._formula = formula

            @property
            def formula(self):
                return self._formula

            def run(self, computation):
                from repro.monitor.verdicts import MonitorResult

                result = MonitorResult(self._formula)
                result.record(True)
                return result

        register_monitor("echo", lambda formula, *, epsilon=None, **kw: EchoMonitor(formula))
        try:
            engine = make_monitor(spec, "echo")
            assert isinstance(engine, Monitor)
            assert engine.run(DistributedComputation(1)).verdicts == {True}
        finally:
            _REGISTRY.pop("echo", None)

    def test_register_reserved_names_rejected(self):
        with pytest.raises(MonitorError):
            register_monitor("auto", lambda formula, **kw: None)
        with pytest.raises(MonitorError):
            register_monitor("", lambda formula, **kw: None)

    def test_online_requires_epsilon(self, spec):
        with pytest.raises(MonitorError, match="epsilon"):
            make_monitor(spec, "online")

    def test_kwargs_forwarded(self, spec):
        engine = make_monitor(spec, "smt", segments=4, saturate=False)
        assert isinstance(engine, SmtMonitor)
        assert engine._segments == 4


class TestAutoSelection:
    def test_no_hints_defaults_to_smt(self, spec):
        assert select_kind(spec) == "smt"
        assert isinstance(make_monitor(spec), SmtMonitor)

    def test_small_computation_selects_fast(self, spec):
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a")], "P2": [(2, "b")]}
        )
        assert select_kind(spec, event_count=len(comp), epsilon=comp.epsilon) == "fast"
        assert isinstance(make_monitor(spec, computation=comp), FastMonitor)

    def test_large_event_count_selects_smt(self, spec):
        assert select_kind(spec, event_count=FAST_EVENT_LIMIT + 1, epsilon=2) == "smt"

    def test_wide_skew_selects_smt(self, spec):
        assert select_kind(spec, event_count=10, epsilon=FAST_EPSILON_LIMIT + 1) == "smt"

    def test_huge_formula_selects_smt(self):
        big = parse(" & ".join(f"(F[0,5) a{i})" for i in range(25)))
        assert formula_size(big) > 40
        assert select_kind(big, event_count=10, epsilon=2) == "smt"

    def test_auto_smt_gets_segment_heuristic(self, spec):
        engine = make_monitor(spec, event_count=240, epsilon=50)
        assert isinstance(engine, SmtMonitor)
        assert engine._segments == 20  # 240 events / 12 per segment

    def test_auto_with_smt_kwargs_never_picks_fast(self, spec):
        """SMT-specific knobs express intent the fast monitor cannot honour:
        auto must fall back to smt instead of raising TypeError."""
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a")], "P2": [(2, "b")]}
        )
        engine = make_monitor(spec, computation=comp, segments=2, saturate=False)
        assert isinstance(engine, SmtMonitor)
        assert engine.run(comp).verdicts

    def test_auto_selection_runs(self, spec):
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        auto = make_monitor(spec, computation=comp)
        explicit = make_monitor(spec, "smt", saturate=False)
        assert auto.run(comp).verdicts == explicit.run(comp).verdicts


class TestCalibration:
    """Measured-crossover overrides for the auto-selection thresholds."""

    @pytest.fixture(autouse=True)
    def restore_defaults(self):
        yield
        reset_calibration()

    def test_defaults_match_module_constants(self):
        thresholds = calibration()
        assert thresholds["fast_event_limit"] == FAST_EVENT_LIMIT
        assert thresholds["fast_epsilon_limit"] == FAST_EPSILON_LIMIT

    def test_apply_overrides_change_selection(self, spec):
        assert select_kind(spec, event_count=10, epsilon=2) == "fast"
        apply_calibration({"fast_event_limit": 5})
        assert select_kind(spec, event_count=10, epsilon=2) == "smt"
        assert select_kind(spec, event_count=5, epsilon=2) == "fast"
        reset_calibration()
        assert select_kind(spec, event_count=10, epsilon=2) == "fast"

    def test_apply_overrides_epsilon_axis(self, spec):
        apply_calibration({"fast_epsilon_limit": 3})
        assert select_kind(spec, event_count=10, epsilon=4) == "smt"
        assert select_kind(spec, event_count=10, epsilon=3) == "fast"

    def test_events_per_segment_override(self, spec):
        apply_calibration({"events_per_segment": 24, "fast_event_limit": 1})
        engine = make_monitor(spec, event_count=240, epsilon=50)
        assert isinstance(engine, SmtMonitor)
        assert engine._segments == 10  # 240 events / 24 per segment

    def test_calibration_returns_a_copy(self):
        snapshot = calibration()
        snapshot["fast_event_limit"] = 1
        assert calibration()["fast_event_limit"] == FAST_EVENT_LIMIT

    def test_unknown_key_rejected(self):
        with pytest.raises(MonitorError, match="unknown calibration key"):
            apply_calibration({"fast_event_cap": 10})

    def test_invalid_value_rejected(self):
        with pytest.raises(MonitorError, match="positive integer"):
            apply_calibration({"fast_event_limit": 0})
        with pytest.raises(MonitorError, match="positive integer"):
            apply_calibration({"fast_event_limit": 2.5})
        with pytest.raises(MonitorError, match="positive integer"):
            apply_calibration({"fast_event_limit": True})

    def test_load_calibration_report_file(self, tmp_path, spec):
        """The factory reads both the calibrate_factory.py report shape
        (overrides under "thresholds") and a flat overrides object."""
        import json

        report = tmp_path / "calibration.json"
        report.write_text(
            json.dumps(
                {
                    "event_ladder": [{"events": 6, "fast_seconds": 0.1}],
                    "thresholds": {"fast_event_limit": 6, "fast_epsilon_limit": 3},
                }
            )
        )
        applied = load_calibration(str(report))
        assert applied["fast_event_limit"] == 6
        assert select_kind(spec, event_count=7, epsilon=2) == "smt"

        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps({"fast_event_limit": 50}))
        assert load_calibration(str(flat))["fast_event_limit"] == 50

    def test_load_calibration_rejects_non_object(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(MonitorError, match="JSON object"):
            load_calibration(str(bad))


class TestProtocolCompliance:
    def test_online_run_adapter_matches_offline(self, spec):
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        online = OnlineMonitor(spec, epsilon=comp.epsilon)
        offline = SmtMonitor(spec, saturate=False).run(comp)
        result = online.run(comp)
        assert result.verdicts == offline.verdicts
        # run() is repeatable and leaves the streaming instance untouched.
        again = online.run(comp)
        assert again.verdict_counts == result.verdict_counts
        assert online.pending == 0
        online.observe("P1", 10, "a")
        assert online.pending == 1

    def test_online_run_rejects_message_edges(self, spec):
        """Dropping message edges would enlarge the admissible-trace set
        and return unsound verdicts, so run() must refuse."""
        comp = DistributedComputation(2)
        send = comp.add_event("P1", 1, "a")
        recv = comp.add_event("P2", 2, "b")
        comp.add_message(send, recv)
        with pytest.raises(MonitorError, match="message edges"):
            OnlineMonitor(spec, epsilon=2).run(comp)
