"""Tests for the process-local segment-trace cache."""

from __future__ import annotations

import pytest

from repro.distributed.computation import DistributedComputation
from repro.encoding import trace_cache
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse
from repro.service.tasks import SegmentShardTask, run_segment_shard


@pytest.fixture(autouse=True)
def fresh_cache():
    trace_cache.clear_cache()
    yield
    trace_cache.clear_cache()


def _computation() -> DistributedComputation:
    return DistributedComputation.from_event_lists(
        2,
        {
            "P1": [(0, "a"), (3, "a"), (6, ()), (9, "b")],
            "P2": [(1, ()), (4, "b"), (8, "a")],
        },
    )


class TestSharedTraces:
    def test_shared_enumeration_is_lazy_and_shared(self):
        produced = []

        def factory():
            def generate():
                for value in range(10):
                    produced.append(value)
                    yield value

            return generate()

        first = [t for _, t in zip(range(3), trace_cache.shared_traces("k", factory))]
        assert first == [0, 1, 2]
        assert produced == [0, 1, 2]  # early-stop consumer pulls only 3
        second = list(trace_cache.shared_traces("k", factory))
        assert second == list(range(10))
        assert produced == list(range(10))  # prefix replayed, tail continued
        third = list(trace_cache.shared_traces("k", factory))
        assert third == second
        assert produced == list(range(10))  # fully cached now
        stats = trace_cache.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_distinct_keys_do_not_share(self):
        a = list(trace_cache.shared_traces("a", lambda: iter([1, 2])))
        b = list(trace_cache.shared_traces("b", lambda: iter([3])))
        assert (a, b) == ([1, 2], [3])
        assert trace_cache.cache_stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setattr(trace_cache, "MAX_ENTRIES", 2)
        for key in ("a", "b", "c"):
            list(trace_cache.shared_traces(key, lambda: iter([0])))
        assert trace_cache.cache_stats()["entries"] == 2
        # "a" was evicted: touching it again is a miss
        list(trace_cache.shared_traces("a", lambda: iter([0])))
        assert trace_cache.cache_stats()["misses"] == 4


class TestMonitorCaching:
    def test_cached_run_identical_to_uncached(self):
        spec = parse("(F[0,5) a) & (F[0,9) b)")
        computation = _computation()
        plain = SmtMonitor(spec, segments=3, saturate=False).run(computation)
        cached = SmtMonitor(
            spec, segments=3, saturate=False, cache_traces=True
        ).run(computation)
        assert cached.verdict_counts == plain.verdict_counts
        assert [r.traces_enumerated for r in cached.segment_reports] == [
            r.traces_enumerated for r in plain.segment_reports
        ]

    def test_second_run_hits_the_cache(self):
        spec = parse("F[0,8) b")
        computation = _computation()
        engine = SmtMonitor(spec, segments=3, saturate=False, cache_traces=True)
        first = engine.run(computation)
        after_first = trace_cache.cache_stats()
        assert after_first["misses"] > 0
        second = engine.run(computation)
        after_second = trace_cache.cache_stats()
        assert second.verdict_counts == first.verdict_counts
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]

    def test_uncached_monitor_never_touches_the_cache(self):
        SmtMonitor(parse("F[0,8) b"), segments=3).run(_computation())
        assert trace_cache.cache_stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_message_edges_are_part_of_the_key(self):
        """Two computations with identical event fields but different
        message topology must not share cached traces (the admissible
        trace sets differ, so sharing would be unsound)."""
        spec = parse("a U[0,9) b")

        def build(with_message: bool) -> DistributedComputation:
            comp = DistributedComputation(3)
            send = comp.add_event("P1", 1, "a")
            comp.add_event("P1", 6, ())
            recv = comp.add_event("P2", 2, "a")
            comp.add_event("P2", 5, "b")
            if with_message:
                comp.add_message(send, recv)
            return comp

        plain, chained = build(False), build(True)
        expected_plain = SmtMonitor(spec, saturate=False).run(plain).verdict_counts
        expected_chained = SmtMonitor(spec, saturate=False).run(chained).verdict_counts
        assert expected_plain != expected_chained, "corpus must distinguish topologies"

        cached_plain = SmtMonitor(spec, saturate=False, cache_traces=True).run(plain)
        cached_chained = SmtMonitor(spec, saturate=False, cache_traces=True).run(chained)
        assert cached_plain.verdict_counts == expected_plain
        assert cached_chained.verdict_counts == expected_chained
        assert trace_cache.cache_stats()["misses"] == 2  # distinct keys

    def test_shards_share_segment_enumeration(self):
        """Two shards of one computation processed by the same worker
        process must enumerate each segment only once (the satellite's
        acceptance assertion)."""
        spec = parse("(F[0,5) a) & (F[0,9) b)")
        computation = _computation()
        engine = SmtMonitor(spec, segments=3, saturate=False)
        hb = computation.happened_before()
        segments = engine.segments_of(computation)
        state = engine.initial_state()
        from repro.monitor.verdicts import MonitorResult

        scratch = MonitorResult(spec)
        state = engine.step(hb, segments, 0, state, scratch, computation.epsilon)
        carried = sorted(state.carried.items(), key=lambda kv: str(kv[0]))
        assert len(carried) >= 2, "corpus must carry >= 2 residuals to shard"
        half = len(carried) // 2
        shards = [dict(carried[:half]), dict(carried[half:])]
        tasks = [
            SegmentShardTask(
                computation=computation,
                formula=spec,
                kwargs={"segments": 3, "saturate": False},
                carried=shard,
                anchor=state.anchor,
                base_valuation=state.base_valuation,
                frontier=state.frontier,
                start=1,
            )
            for shard in shards
        ]
        first = run_segment_shard(tasks[0])
        after_first = trace_cache.cache_stats()
        assert after_first["misses"] >= 1
        second = run_segment_shard(tasks[1])
        after_second = trace_cache.cache_stats()
        # the second shard replays the first shard's enumerations: every
        # segment it touches is a hit, never a fresh enumeration
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]
        assert len(segments) == 3  # pipeline actually had segments to share
        # and the merged shard verdicts match the serial pipeline
        serial = SmtMonitor(spec, segments=3, saturate=False).run(computation)
        merged = first.merge(second)
        combined = dict(scratch.verdict_counts)
        for verdict, count in merged.verdict_counts.items():
            combined[verdict] = combined.get(verdict, 0) + count
        assert combined == serial.verdict_counts


class TestInterningInteraction:
    """Segment-cache keys must keep hitting now that formulas intern.

    The cache key deliberately excludes the carried residuals; interning
    must not leak formula identity into it (e.g. via valuation/frontier
    tuples), so two shards carrying *different* residual sets over the
    same segments still share one enumeration.
    """

    def test_cache_hits_across_interned_residual_shards(self):
        from repro.mtl.ast import intern_formula
        from repro.monitor.verdicts import MonitorResult
        from repro.service.tasks import SegmentShardTask, run_segment_shard

        spec = parse("(F[0,5) a) & (F[0,9) b)")
        computation = _computation()
        engine = SmtMonitor(spec, segments=3, saturate=False)
        hb = computation.happened_before()
        segments = engine.segments_of(computation)
        state = engine.initial_state()
        sink = MonitorResult(spec)
        order = 0
        while order < len(segments) and len(state.carried) < 2:
            state = engine.step(hb, segments, order, state, sink, computation.epsilon)
            order += 1
        assert len(state.carried) >= 2, "corpus must fan out"
        residuals = sorted(state.carried.items(), key=lambda kv: str(kv[0]))
        half = len(residuals) // 2
        shards = [dict(residuals[:half]), dict(residuals[half:])]
        assert all(
            intern_formula(f) is f for shard in shards for f in shard
        ), "carried residuals come out of the pipeline interned"

        trace_cache.clear_cache()
        results = [
            run_segment_shard(
                SegmentShardTask(
                    computation=computation,
                    formula=spec,
                    kwargs={"segments": 3, "saturate": False},
                    carried=shard,
                    anchor=state.anchor,
                    base_valuation=state.base_valuation,
                    frontier=state.frontier,
                    start=order,
                )
            )
            for shard in shards
        ]
        stats = trace_cache.cache_stats()
        assert stats["hits"] > 0, "second shard must reuse the first's enumeration"
        # Prefix-decided verdicts plus the merged shard verdicts must be
        # exactly the serial run's multiset (interning changed no verdict).
        merged = results[0]
        merged.merge(results[1])
        serial = SmtMonitor(spec, segments=3, saturate=False).run(computation)
        combined = dict(sink.verdict_counts)
        for verdict, count in merged.verdict_counts.items():
            combined[verdict] = combined.get(verdict, 0) + count
        assert combined == dict(serial.verdict_counts)
