"""Tests for trace construction from ordered events (frontier semantics)."""

from repro.distributed.event import make_event
from repro.encoding.trace_extractor import build_trace, model_to_trace, segment_carry


def events_two_processes():
    return [
        make_event("P1", 0, 1, ("a",)),
        make_event("P2", 0, 2, ("b",), {"to.alice": 10}),
        make_event("P1", 1, 4, ("c",)),
        make_event("P2", 1, 5, (), {"to.alice": 5}),
    ]


class TestFrontierSemantics:
    def test_props_persist_until_next_event_of_process(self):
        e = events_two_processes()
        trace = build_trace([(e[0], 1), (e[1], 2), (e[2], 4), (e[3], 5)])
        assert trace.state(0).props == {"a"}
        assert trace.state(1).props == {"a", "b"}       # P1's a persists
        assert trace.state(2).props == {"b", "c"}       # a replaced by c
        assert trace.state(3).props == {"c"}            # P2 clears b

    def test_valuation_accumulates(self):
        e = events_two_processes()
        trace = build_trace([(e[0], 1), (e[1], 2), (e[2], 4), (e[3], 5)])
        assert trace.state(0).valuation == {}
        assert trace.state(1).valuation["to.alice"] == 10
        assert trace.state(3).valuation["to.alice"] == 15

    def test_base_valuation_seeds_sums(self):
        e = events_two_processes()
        trace = build_trace([(e[1], 2)], base_valuation={"to.alice": 100})
        assert trace.state(0).valuation["to.alice"] == 110

    def test_frontier_props_seed_state(self):
        e = events_two_processes()
        trace = build_trace(
            [(e[1], 2)], frontier_props={"P1": frozenset({"x"})}
        )
        assert trace.state(0).props == {"x", "b"}

    def test_empty_input(self):
        assert len(build_trace([])) == 0


class TestSegmentCarry:
    def test_valuation_and_frontier(self):
        e = events_two_processes()
        valuation, frontier = segment_carry(e)
        assert valuation == {"to.alice": 15}
        assert frontier["P1"] == frozenset({"c"})
        assert frontier["P2"] == frozenset()

    def test_carry_composes(self):
        e = events_two_processes()
        v1, f1 = segment_carry(e[:2])
        v2, f2 = segment_carry(e[2:], v1, f1)
        v_all, f_all = segment_carry(e)
        assert v2 == v_all
        assert f2 == f_all


class TestModelDecoding:
    def test_positions_define_order(self):
        e = events_two_processes()[:2]
        model = {"pos0": 1, "pos1": 0, "t0": 3, "t1": 2}
        trace = model_to_trace(e, model)
        assert trace.times == (2, 3)
        assert trace.state(0).props == {"b"}
