"""Tests for segment trace enumeration — DFS vs the paper-literal CSP."""

from hypothesis import given, settings

from repro.distributed.computation import DistributedComputation
from repro.encoding.cut_encoder import timestamp_domain
from repro.encoding.enumerator import count_traces, enumerate_traces
from repro.mtl.trace import TimedTrace

from tests.conftest import small_computations


def fig3() -> DistributedComputation:
    return DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


class TestTimestampDomain:
    def test_unclamped_window(self):
        comp = fig3()
        event = comp.events[0]  # @1, epsilon 2
        domain = timestamp_domain(event, 2)
        assert domain.values == (0, 1, 2)

    def test_clamped_window(self):
        comp = fig3()
        event = comp.events[0]
        domain = timestamp_domain(event, 2, clamp_lo=1, clamp_hi=2)
        assert domain.values == (1,)

    def test_sampling_keeps_reading_and_extremes(self):
        comp = DistributedComputation.from_event_lists(20, {"P1": [(50, "a")]})
        event = comp.events[0]
        domain = timestamp_domain(event, 20, samples=3)
        assert set(domain.values) == {31, 50, 69}

    def test_sampling_noop_for_small_windows(self):
        comp = fig3()
        event = comp.events[0]
        assert timestamp_domain(event, 2, samples=5).values == (0, 1, 2)


class TestEnumeration:
    def test_monotone_timestamps(self):
        comp = fig3()
        for trace in enumerate_traces(comp.happened_before(), 2):
            assert list(trace.times) == sorted(trace.times)

    def test_respects_happened_before(self):
        comp = fig3()
        hb = comp.happened_before()
        # P1@1 precedes P2@5 under the epsilon rule (1 + 2 < 5): in every
        # trace, the {a}-then-... ordering must hold.  We check via event
        # count only: enumeration always yields full-length traces.
        for trace in enumerate_traces(hb, 2):
            assert len(trace) == 4

    def test_limit(self):
        comp = fig3()
        traces = list(enumerate_traces(comp.happened_before(), 2, limit=7))
        assert len(traces) == 7

    def test_deterministic(self):
        comp = fig3()
        first = list(enumerate_traces(comp.happened_before(), 2, limit=5))
        second = list(enumerate_traces(comp.happened_before(), 2, limit=5))
        assert first == second

    def test_epsilon_one_single_delta(self):
        comp = DistributedComputation.from_event_lists(
            1, {"P1": [(0, "a"), (5, "b")]}
        )
        traces = list(enumerate_traces(comp.happened_before(), 1))
        assert traces == [
            TimedTrace.from_pairs(
                [(traces[0].state(0), 0), (traces[0].state(1), 5)]
            )
        ]


class TestBackendAgreement:
    @settings(max_examples=30, deadline=None)
    @given(small_computations())
    def test_dfs_and_csp_enumerate_same_trace_set(self, comp):
        hb = comp.happened_before()
        dfs = set(enumerate_traces(hb, comp.epsilon, backend="dfs"))
        csp = set(enumerate_traces(hb, comp.epsilon, backend="csp"))
        assert dfs == csp

    @settings(max_examples=30, deadline=None)
    @given(small_computations())
    def test_count_positive(self, comp):
        assert count_traces(comp.happened_before(), comp.epsilon) >= 1

    @settings(max_examples=20, deadline=None)
    @given(small_computations())
    def test_clamping_only_removes_traces(self, comp):
        hb = comp.happened_before()
        lo, hi = comp.local_span()
        unclamped = set(enumerate_traces(hb, comp.epsilon))
        clamped = set(enumerate_traces(hb, comp.epsilon, clamp_lo=lo, clamp_hi=hi + 1))
        assert clamped <= unclamped

    @settings(max_examples=20, deadline=None)
    @given(small_computations())
    def test_sampling_only_removes_traces(self, comp):
        hb = comp.happened_before()
        full = set(enumerate_traces(hb, comp.epsilon))
        sampled = set(enumerate_traces(hb, comp.epsilon, timestamp_samples=2))
        assert sampled <= full
        assert sampled
