"""Tests for per-segment verdict/residual enumeration."""

from repro.distributed.computation import DistributedComputation
from repro.encoding.verdict_enumerator import enumerate_segment_outcomes
from repro.mtl import ast, parse
from repro.mtl.interval import Interval


def fig3():
    return DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


class TestOutcomes:
    def test_counts_sum_to_traces(self):
        comp = fig3()
        spec = parse("a U[0,6) b")
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        assert sum(outcome.residuals.values()) == outcome.traces_enumerated
        assert outcome.traces_enumerated == 130

    def test_constant_residuals_for_decided_spec(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a"): 1}, None, boundary=7
        )
        assert set(outcome.residuals) <= {ast.TRUE, ast.FALSE}

    def test_carried_counts_multiply(self):
        comp = fig3()
        spec = parse("a")
        single = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        tripled = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 3}, None, boundary=7
        )
        for residual, count in single.residuals.items():
            assert tripled.residuals[residual] == 3 * count

    def test_max_traces_truncates(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U b"): 1}, None,
            boundary=7, max_traces=5,
        )
        assert outcome.truncated
        assert outcome.traces_enumerated == 5

    def test_max_distinct_stops(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U[0,6) b"): 1}, None,
            boundary=7, max_distinct=1,
        )
        assert outcome.truncated
        assert len(outcome.residuals) == 1

    def test_saturation_stops_when_both_verdicts_seen(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U[0,6) b"): 1}, None,
            boundary=7, saturate_final=True,
        )
        assert outcome.saturated
        assert outcome.traces_enumerated < 130

    def test_residual_obligation_carries_over(self):
        """A window extending past the boundary leaves a pending F."""
        comp = DistributedComputation.from_event_lists(1, {"P1": [(0, "a")]})
        spec = ast.eventually(ast.atom("b"), Interval.bounded(0, 100))
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), 1, {spec: 1}, None, boundary=10
        )
        (residual,) = outcome.residuals
        assert isinstance(residual, ast.Eventually)
        assert residual.interval == Interval.bounded(0, 90)
