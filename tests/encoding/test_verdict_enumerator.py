"""Tests for per-segment verdict/residual enumeration."""

from repro.distributed.computation import DistributedComputation
from repro.encoding.verdict_enumerator import enumerate_segment_outcomes
from repro.mtl import ast, parse
from repro.mtl.interval import Interval


def fig3():
    return DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


class TestOutcomes:
    def test_counts_sum_to_traces(self):
        comp = fig3()
        spec = parse("a U[0,6) b")
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        assert sum(outcome.residuals.values()) == outcome.traces_enumerated
        assert outcome.traces_enumerated == 130

    def test_constant_residuals_for_decided_spec(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a"): 1}, None, boundary=7
        )
        assert set(outcome.residuals) <= {ast.TRUE, ast.FALSE}

    def test_carried_counts_multiply(self):
        comp = fig3()
        spec = parse("a")
        single = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        tripled = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 3}, None, boundary=7
        )
        for residual, count in single.residuals.items():
            assert tripled.residuals[residual] == 3 * count

    def test_max_traces_truncates(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U b"): 1}, None,
            boundary=7, max_traces=5,
        )
        assert outcome.truncated
        assert outcome.traces_enumerated == 5

    def test_max_distinct_stops(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U[0,6) b"): 1}, None,
            boundary=7, max_distinct=1,
        )
        assert outcome.truncated
        assert len(outcome.residuals) == 1

    def test_saturation_stops_when_both_verdicts_seen(self):
        comp = fig3()
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {parse("a U[0,6) b"): 1}, None,
            boundary=7, saturate_final=True,
        )
        assert outcome.saturated
        assert outcome.traces_enumerated < 130

    def test_residual_obligation_carries_over(self):
        """A window extending past the boundary leaves a pending F."""
        comp = DistributedComputation.from_event_lists(1, {"P1": [(0, "a")]})
        spec = ast.eventually(ast.atom("b"), Interval.bounded(0, 100))
        outcome = enumerate_segment_outcomes(
            comp.happened_before(), 1, {spec: 1}, None, boundary=10
        )
        (residual,) = outcome.residuals
        assert isinstance(residual, ast.Eventually)
        assert residual.interval == Interval.bounded(0, 90)


class TestStreaming:
    """The generator-driven pipeline behind ``enumerate_segment_outcomes``."""

    def test_stream_yields_per_trace_and_settles(self):
        from repro.encoding.verdict_enumerator import stream_segment_outcomes

        comp = fig3()
        spec = parse("a U[0,6) b")
        snapshots = list(
            stream_segment_outcomes(
                comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
            )
        )
        # One yield per trace plus the settled final snapshot, all the
        # same mutating outcome instance.
        final = snapshots[-1]
        assert len(snapshots) == final.traces_enumerated + 1
        assert all(s is final for s in snapshots)
        drained = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        assert final.residuals == drained.residuals
        assert final.traces_enumerated == drained.traces_enumerated == 130

    def test_stream_counts_grow_monotonically(self):
        from repro.encoding.verdict_enumerator import stream_segment_outcomes

        comp = fig3()
        spec = parse("F[0,8) b")
        seen = 0
        for outcome in stream_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        ):
            assert outcome.traces_enumerated >= seen
            seen = outcome.traces_enumerated
            assert sum(outcome.residuals.values()) <= outcome.traces_enumerated

    def test_abandoning_the_stream_stops_enumeration(self):
        from repro.encoding.verdict_enumerator import stream_segment_outcomes

        comp = fig3()
        spec = parse("a U[0,6) b")
        stream = stream_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7
        )
        first = next(stream)
        assert first.traces_enumerated == 1
        stream.close()  # must not raise; enumeration is abandoned mid-way

    def test_stream_honours_truncation_flags(self):
        from repro.encoding.verdict_enumerator import stream_segment_outcomes

        comp = fig3()
        spec = parse("a U[0,6) b")
        final = None
        for final in stream_segment_outcomes(
            comp.happened_before(), comp.epsilon, {spec: 1}, None, boundary=7,
            max_traces=5,
        ):
            pass
        assert final.truncated
        assert final.traces_enumerated == 5

    def test_structurally_equal_carried_keys_merge(self):
        """Two structurally equal (but distinct-object) carried keys are
        one residual class after interning — their counts add."""
        from repro.mtl import ast as mtl_ast

        comp = fig3()
        one = mtl_ast.Until(mtl_ast.Atom("a"), mtl_ast.Atom("b"), Interval.bounded(0, 6))
        other = parse("a U[0,6) b")
        assert one == other and one is not other
        # dict with both keys collapses at construction already; feed the
        # duplicates through two dicts instead.
        merged = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {one: 2}, None, boundary=7
        )
        canonical = enumerate_segment_outcomes(
            comp.happened_before(), comp.epsilon, {other: 2}, None, boundary=7
        )
        assert merged.residuals == canonical.residuals
