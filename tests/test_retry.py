"""RetryPolicy: the one backoff/timeout shape every peer-facing layer shares."""

from __future__ import annotations

import threading

import pytest

from repro.errors import CancelledError, PreemptedError, ServiceError
from repro.progression.budget import Budget
from repro.retry import (
    REDIAL_POLICY,
    REGISTRY_CALL_POLICY,
    SESSION_CALL_POLICY,
    RetryPolicy,
)


class TestShape:
    def test_delays_are_capped_exponential(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(attempts=1).delays()) == []

    def test_unbounded_policy_streams_delays(self):
        delays = REDIAL_POLICY.delays()
        first = [next(delays) for _ in range(10)]
        assert first[0] == pytest.approx(REDIAL_POLICY.base_delay)
        assert max(first) == REDIAL_POLICY.max_delay
        assert first == sorted(first)  # monotone up to the cap

    def test_with_timeout_returns_a_new_frozen_policy(self):
        tighter = SESSION_CALL_POLICY.with_timeout(0.5)
        assert tighter.timeout == 0.5
        assert SESSION_CALL_POLICY.timeout == 30.0
        with pytest.raises(Exception):
            tighter.timeout = 1.0  # frozen dataclass

    @pytest.mark.parametrize(
        "kwargs",
        [dict(attempts=0), dict(base_delay=-1), dict(multiplier=0.5)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_shared_policies_are_single_attempt_calls(self):
        # Pinned: call-site policies delegate retrying to their own
        # loops (recovery, redial); accidental double-retry under faults
        # would break the exactly-once analysis.
        assert SESSION_CALL_POLICY.attempts == 1
        assert REGISTRY_CALL_POLICY.attempts == 1
        assert REDIAL_POLICY.attempts is None


FAST = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)


class TestRun:
    def test_returns_first_success(self):
        calls = []
        assert FAST.run(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_retries_then_succeeds(self):
        outcomes = iter([ServiceError("one"), ServiceError("two"), "ok"])

        def attempt():
            value = next(outcomes)
            if isinstance(value, Exception):
                raise value
            return value

        retried = []
        result = FAST.run(attempt, on_retry=lambda n, exc: retried.append((n, str(exc))))
        assert result == "ok"
        assert retried == [(1, "one"), (2, "two")]

    def test_exhaustion_reraises_the_last_error(self):
        attempts = []

        def always_fails():
            attempts.append(1)
            raise ServiceError(f"failure {len(attempts)}")

        with pytest.raises(ServiceError, match="failure 3"):
            FAST.run(always_fails)
        assert len(attempts) == 3

    def test_no_retry_on_wins_over_retry_on(self):
        # CancelledError subclasses ServiceError; no_retry_on is checked
        # first so a proven cancellation is not blindly retried.
        attempts = []

        def cancelled():
            attempts.append(1)
            raise CancelledError("proven dead")

        with pytest.raises(CancelledError):
            FAST.run(cancelled, no_retry_on=(CancelledError,))
        assert len(attempts) == 1

    def test_unlisted_exceptions_propagate_immediately(self):
        with pytest.raises(KeyError):
            FAST.run(lambda: (_ for _ in ()).throw(KeyError("boom")))

    def test_deadline_stops_early(self):
        policy = RetryPolicy(attempts=50, base_delay=0.2, max_delay=0.2, deadline=0.3)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise ServiceError("slow system")

        with pytest.raises(ServiceError, match="slow system"):
            policy.run(always_fails)
        assert len(attempts) <= 3  # ~0.3s of 0.2s gaps, not 50 attempts

    def test_stop_event_aborts_between_attempts(self):
        stop = threading.Event()
        policy = RetryPolicy(attempts=None, base_delay=0.05, max_delay=0.05)
        attempts = []

        def fail_then_signal():
            attempts.append(1)
            if len(attempts) == 3:
                stop.set()
            raise ServiceError("still down")

        with pytest.raises(ServiceError, match="still down"):
            policy.run(fail_then_signal, stop=stop)
        assert len(attempts) == 3

    def test_preset_stop_raises_without_calling(self):
        stop = threading.Event()
        stop.set()
        with pytest.raises(ServiceError, match="before the first attempt"):
            FAST.run(lambda: "never", stop=stop)

    def test_cancelled_budget_aborts_like_preemption(self):
        budget = Budget()
        budget.cancel("shutting down")
        with pytest.raises(PreemptedError):
            FAST.run(lambda: "never", budget=budget)
