"""Deterministic fault injection: schedule, wrapper, and proxy.

The contract (see :mod:`repro.transport.faults`): a
:class:`FaultSchedule` is a pure function of ``(seed, lane, index)`` —
same seed, same decisions, regardless of thread timing; the
:class:`FaultyConnection` wrapper applies those decisions per direction
with FIFO preserved except for explicit reorder swaps; ``corrupt`` at
the wrapper level is link loss (a real receiver tears down on an
undecodable frame); the :class:`ChaosProxy` relays real TCP frames and
its ``corrupt`` is a genuine bit flip that must be *caught* by the
receiving decoder, never misread.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.transport import (
    ChaosProxy,
    FaultSchedule,
    FaultyTransport,
    LocalTransport,
    Request,
    Response,
    TcpTransport,
)
from repro.transport.agent import WorkerAgent
from repro.transport.faults import C2S, S2C, FaultyConnection


class TestFaultSchedule:
    def test_deterministic_per_seed_lane_index(self):
        knobs = dict(drop=0.3, duplicate=0.3, reorder=0.3, corrupt=0.1, delay=0.5)
        first = FaultSchedule(seed="chaos:7", **knobs)
        second = FaultSchedule(seed="chaos:7", **knobs)
        for lane in ("0:c2s", "0:s2c", "9:c2s"):
            for index in range(64):
                assert first.decision(lane, index) == second.decision(lane, index)

    def test_lanes_draw_independent_streams(self):
        schedule = FaultSchedule(seed=3, drop=0.5)
        a = [schedule.decision("0:c2s", i).drop for i in range(64)]
        b = [schedule.decision("1:c2s", i).drop for i in range(64)]
        assert a != b  # distinct lanes must not mirror each other

    def test_draw_order_is_fixed_across_knobs(self):
        """Adding one fault class never shifts another class's stream."""
        drop_only = FaultSchedule(seed=11, drop=0.4)
        drop_and_more = FaultSchedule(seed=11, drop=0.4, delay=0.9, corrupt=0.2)
        for index in range(64):
            assert (
                drop_only.decision("0:c2s", index).drop
                == drop_and_more.decision("0:c2s", index).drop
            )

    def test_partition_window(self):
        schedule = FaultSchedule(partition=C2S, partition_start=3, partition_span=4)
        assert [schedule.partitioned(C2S, i) for i in range(9)] == [
            False, False, False, True, True, True, True, False, False,
        ]
        assert not any(schedule.partitioned(S2C, i) for i in range(9))

    def test_partition_none_span_never_heals(self):
        schedule = FaultSchedule(partition="both", partition_start=2)
        assert schedule.partitioned(C2S, 10_000)
        assert schedule.partitioned(S2C, 10_000)
        assert not schedule.partitioned(C2S, 1)

    def test_stall_folds_latency_jitter_and_delay(self):
        slow = FaultSchedule(latency=0.01, jitter=0.0, delay=1.0, delay_seconds=0.5)
        decision = slow.decision("0:c2s", 0)
        assert decision.stall == pytest.approx(0.51)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(drop=1.5),
            dict(reorder=-0.1),
            dict(partition="sideways"),
            dict(grace=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSchedule(**kwargs)

    def test_describe_names_seed_and_active_knobs(self):
        text = FaultSchedule(
            seed="s1", drop=0.1, partition=C2S, partition_start=5, partition_span=9
        ).describe()
        assert "'s1'" in text and "drop=0.1" in text and "partition=c2s[5+9]" in text
        assert "duplicate" not in text


class _FakeInner:
    """A recording stand-in for the wrapped connection."""

    endpoint = "fake://peer"

    def __init__(self):
        self.sent: "queue.Queue[Request]" = queue.Queue()
        self.closed = threading.Event()
        self.fail_sends = False

    def send(self, request: Request) -> None:
        if self.fail_sends:
            raise ServiceError("wire is gone")
        self.sent.put(request)

    def alive(self) -> bool:
        return not self.closed.is_set()

    def close(self, timeout: float = 5.0) -> None:
        self.closed.set()

    def kill(self) -> None:
        self.closed.set()


class _Sink:
    def __init__(self):
        self.responses: "queue.Queue[Response]" = queue.Queue()
        self.disconnected = threading.Event()

    def on_response(self, response: Response) -> None:
        self.responses.put(response)

    def on_disconnect(self) -> None:
        self.disconnected.set()


def _wrap(schedule: FaultSchedule):
    inner = _FakeInner()
    sink = _Sink()
    connection = FaultyConnection(
        inner, schedule, sink.on_response, sink.on_disconnect
    )
    return inner, sink, connection


def _drain(q: "queue.Queue", count: int, timeout: float = 5.0) -> list:
    got = []
    deadline = time.monotonic() + timeout
    while len(got) < count and time.monotonic() < deadline:
        try:
            got.append(q.get(timeout=max(0.01, deadline - time.monotonic())))
        except queue.Empty:
            break
    return got


class TestFaultyConnection:
    def test_clean_schedule_preserves_order(self):
        inner, _, connection = _wrap(FaultSchedule())
        try:
            for i in range(6):
                connection.send(Request(i, "echo", i))
            assert [r.request_id for r in _drain(inner.sent, 6)] == list(range(6))
            assert connection.stats["delivered"] == 6
        finally:
            connection.kill()

    def test_drop_swallows_frames_after_grace(self):
        inner, _, connection = _wrap(FaultSchedule(drop=1.0, grace=2))
        try:
            for i in range(5):
                connection.send(Request(i, "echo", i))
            assert [r.request_id for r in _drain(inner.sent, 2)] == [0, 1]
            time.sleep(0.1)
            assert inner.sent.empty()
            assert connection.stats["dropped"] == 3
        finally:
            connection.kill()

    def test_duplicate_delivers_twice(self):
        inner, _, connection = _wrap(FaultSchedule(duplicate=1.0))
        try:
            connection.send(Request(1, "echo", "x"))
            pair = _drain(inner.sent, 2)
            assert [r.request_id for r in pair] == [1, 1]
            assert connection.stats["duplicated"] == 1
        finally:
            connection.kill()

    def test_reorder_swaps_adjacent_frames(self):
        # reorder=1.0 holds every odd-positioned frame until its
        # successor arrives, so four sends deliver pairwise swapped.
        inner, _, connection = _wrap(FaultSchedule(reorder=1.0, reorder_window=5.0))
        try:
            for i in range(4):
                connection.send(Request(i, "echo", i))
            assert [r.request_id for r in _drain(inner.sent, 4)] == [1, 0, 3, 2]
            assert connection.stats["reordered"] == 2
        finally:
            connection.kill()

    def test_reorder_window_expiry_flushes_in_order(self):
        inner, _, connection = _wrap(FaultSchedule(reorder=1.0, reorder_window=0.05))
        try:
            connection.send(Request(7, "echo", None))
            # No successor arrives: the hold must flush, not vanish.
            assert [r.request_id for r in _drain(inner.sent, 1)] == [7]
            assert connection.stats["reordered"] == 0
        finally:
            connection.kill()

    def test_one_way_partition_drops_requests_not_responses(self):
        inner, sink, connection = _wrap(
            FaultSchedule(partition=C2S, partition_start=0)
        )
        try:
            connection.send(Request(1, "echo", None))
            time.sleep(0.1)
            assert inner.sent.empty()
            assert connection.alive()  # partitioned, not dead: the gray case
            connection._inner_response(Response(0, "pong"))
            assert _drain(sink.responses, 1)[0].payload == "pong"
            assert connection.stats["partitioned"] == 1
        finally:
            connection.kill()

    def test_corrupt_is_link_loss(self):
        inner, sink, connection = _wrap(FaultSchedule(corrupt=1.0))
        connection.send(Request(1, "echo", None))
        assert sink.disconnected.wait(5.0)
        assert inner.closed.is_set()
        assert not connection.alive()
        with pytest.raises(ServiceError, match="closed"):
            connection.send(Request(2, "echo", None))
        assert connection.stats["corrupted"] == 1

    def test_slow_link_stalls_but_delivers(self):
        inner, _, connection = _wrap(
            FaultSchedule(delay=1.0, delay_seconds=0.2)
        )
        try:
            started = time.monotonic()
            connection.send(Request(1, "echo", None))
            assert _drain(inner.sent, 1)[0].request_id == 1
            assert time.monotonic() - started >= 0.2
        finally:
            connection.kill()

    def test_inner_send_failure_surfaces_as_disconnect(self):
        inner, sink, connection = _wrap(FaultSchedule())
        inner.fail_sends = True
        connection.send(Request(1, "echo", None))
        assert sink.disconnected.wait(5.0)
        assert not connection.alive()

    def test_grace_frames_ignore_every_fault(self):
        inner, _, connection = _wrap(
            FaultSchedule(drop=1.0, duplicate=1.0, corrupt=1.0, grace=3)
        )
        try:
            for i in range(3):
                connection.send(Request(i, "echo", i))
            assert [r.request_id for r in _drain(inner.sent, 3)] == [0, 1, 2]
            assert connection.alive()
        finally:
            connection.kill()


class TestFaultyTransportEndToEnd:
    """The wrapper over a real LocalTransport worker."""

    def test_clean_wrapper_is_transparent(self):
        transport = FaultyTransport(LocalTransport(), FaultSchedule())
        sink = _Sink()
        connection = transport.open(sink.on_response, sink.on_disconnect)
        try:
            connection.send(Request(1, "echo", "through-the-wrapper"))
            response = _drain(sink.responses, 1)[0]
            assert response.payload == "through-the-wrapper"
            assert transport.stats()["sent"] == 1
            assert transport.stats()["received"] == 1
        finally:
            connection.close(timeout=5.0)

    def test_connections_get_distinct_lanes(self):
        # Lane keys are per-connection, so two endpoints see different
        # decision streams from one shared schedule.
        transport = FaultyTransport(LocalTransport(), FaultSchedule(seed=5))
        sinks = [_Sink(), _Sink()]
        connections = [
            transport.open(sink.on_response, sink.on_disconnect) for sink in sinks
        ]
        try:
            assert connections[0]._c2s._lane_key == "0:c2s"
            assert connections[1]._c2s._lane_key == "1:c2s"
        finally:
            for connection in connections:
                connection.close(timeout=5.0)

    def test_describe_marks_the_wrapping(self):
        transport = FaultyTransport(LocalTransport(), FaultSchedule())
        assert transport.describe().startswith("faulty(")


@pytest.fixture
def agent():
    with WorkerAgent(token="") as served:
        yield served


class TestChaosProxy:
    def test_clean_proxy_relays_bit_identically(self, agent):
        with ChaosProxy("127.0.0.1", agent.port, FaultSchedule()) as proxy:
            sink = _Sink()
            connection = TcpTransport("127.0.0.1", proxy.port, token="").open(
                sink.on_response, sink.on_disconnect
            )
            try:
                payload = {"nested": [1, 2, ("deep", frozenset({"a"}))]}
                connection.send(Request(1, "echo", payload))
                assert _drain(sink.responses, 1)[0].payload == payload
                assert proxy.stats["delivered"] >= 2
            finally:
                connection.close(timeout=5.0)

    def test_bit_flip_is_caught_by_the_decoder(self, agent):
        # Corrupt every post-grace frame: the agent's reader must reject
        # the damaged frame and drop the connection — never misread it.
        schedule = FaultSchedule(corrupt=1.0)
        with ChaosProxy(
            "127.0.0.1", agent.port, schedule, handshake_grace=2
        ) as proxy:
            sink = _Sink()
            connection = TcpTransport("127.0.0.1", proxy.port, token="").open(
                sink.on_response, sink.on_disconnect
            )
            try:
                connection.send(Request(1, "echo", "will-be-damaged"))
                assert sink.disconnected.wait(10.0)
                assert proxy.stats["corrupted"] >= 1
            finally:
                connection.kill()
        # The agent itself survives the hostile frame: a clean, direct
        # connection still serves.
        clean = _Sink()
        direct = TcpTransport("127.0.0.1", agent.port, token="").open(
            clean.on_response, clean.on_disconnect
        )
        try:
            direct.send(Request(1, "echo", "still-alive"))
            assert _drain(clean.responses, 1)[0].payload == "still-alive"
        finally:
            direct.close(timeout=5.0)

    def test_proxy_drop_loses_the_request(self, agent):
        schedule = FaultSchedule(drop=1.0)
        with ChaosProxy(
            "127.0.0.1", agent.port, schedule, handshake_grace=2
        ) as proxy:
            sink = _Sink()
            connection = TcpTransport("127.0.0.1", proxy.port, token="").open(
                sink.on_response, sink.on_disconnect
            )
            try:
                connection.send(Request(1, "echo", "into-the-void"))
                with pytest.raises(queue.Empty):
                    sink.responses.get(timeout=0.5)
                assert proxy.stats["dropped"] >= 1
            finally:
                connection.kill()
