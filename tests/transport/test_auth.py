"""Shared-token auth handshake: protocol unit tests + agent integration.

The contract under test (see :mod:`repro.transport.auth`): every
networked connection opens with an HMAC challenge/response before any
other frame is dispatched; rejection is a *typed* error frame (never a
bare close) so clients surface a :class:`~repro.errors.ServiceError`
naming the endpoint; a tokenless server stays lenient so unauthenticated
deployments keep working; an explicit empty token disables auth even
when the environment variable is set.
"""

from __future__ import annotations

import queue
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.transport import Request, Response, TcpTransport
from repro.transport.agent import WorkerAgent
from repro.transport.auth import (
    AUTH_ERROR_PREFIX,
    AUTH_OK,
    TOKEN_ENV_VAR,
    auth_digest,
    client_handshake,
    resolve_token,
    server_handshake,
)
from repro.transport.frames import AUTH_ID, read_frame, write_frame


class TestResolveToken:
    def test_explicit_token_wins(self, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV_VAR, "from-env")
        assert resolve_token("explicit") == "explicit"

    def test_none_defers_to_environment(self, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV_VAR, "from-env")
        assert resolve_token(None) == "from-env"
        monkeypatch.delenv(TOKEN_ENV_VAR)
        assert resolve_token(None) is None

    def test_empty_string_disables_even_with_env(self, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV_VAR, "from-env")
        assert resolve_token("") is None

    def test_empty_env_is_no_token(self, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV_VAR, "")
        assert resolve_token(None) is None


class TestDigest:
    def test_deterministic_hex(self):
        first = auth_digest("token", "nonce")
        assert first == auth_digest("token", "nonce")
        assert len(first) == 64 and int(first, 16) >= 0

    def test_varies_with_token_and_nonce(self):
        assert auth_digest("a", "n") != auth_digest("b", "n")
        assert auth_digest("a", "n") != auth_digest("a", "m")


def _run_handshake(server_token, client_token, endpoint="tcp://peer:7"):
    """Drive both halves over a socketpair; returns the server outcome."""
    server_sock, client_sock = socket.socketpair()
    outcome: dict = {}

    def server():
        try:
            outcome["leftover"] = server_handshake(
                server_sock, token=server_token, timeout=5.0
            )
        except ServiceError as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=server)
    thread.start()
    try:
        client_handshake(
            client_sock, token=client_token, endpoint=endpoint, timeout=5.0
        )
    finally:
        # Close the client side first: an early client abort (missing
        # token) leaves the server blocked on the auth response, and the
        # EOF is what releases it before the join.
        client_sock.close()
        thread.join(5.0)
        server_sock.close()
    return outcome


class TestHandshake:
    def test_matching_token_authenticates(self):
        outcome = _run_handshake("secret", "secret")
        assert outcome == {"leftover": None}

    def test_tokenless_both_sides_authenticates(self):
        outcome = _run_handshake(None, None)
        assert outcome == {"leftover": None}

    def test_tokenless_server_accepts_token_bearing_client(self):
        outcome = _run_handshake(None, "whatever")
        assert outcome == {"leftover": None}

    def test_wrong_token_rejected_with_typed_error(self):
        with pytest.raises(ServiceError, match=AUTH_ERROR_PREFIX) as excinfo:
            _run_handshake("secret", "not-the-secret", endpoint="tcp://w:9")
        assert "tcp://w:9" in str(excinfo.value)

    def test_missing_token_names_endpoint_and_env_var(self):
        with pytest.raises(ServiceError, match=TOKEN_ENV_VAR) as excinfo:
            _run_handshake("secret", None, endpoint="tcp://w:9")
        assert "tcp://w:9" in str(excinfo.value)

    def test_tokenless_server_leniency_returns_first_regular_frame(self):
        """A pre-auth client that never reads the challenge still works
        against a tokenless server: its first real frame is handed back
        to the caller instead of being rejected."""
        server_sock, client_sock = socket.socketpair()
        outcome: dict = {}

        def server():
            outcome["leftover"] = server_handshake(server_sock, timeout=5.0)

        thread = threading.Thread(target=server)
        thread.start()
        try:
            write_frame(client_sock, Request(1, "echo", "legacy"))
            thread.join(5.0)
        finally:
            server_sock.close()
            client_sock.close()
        assert outcome["leftover"] == Request(1, "echo", "legacy")

    def test_token_server_rejects_regular_first_frame_before_dispatch(self):
        """With a token configured there is no leniency: a peer that
        skips the handshake gets the typed rejection and nothing it sent
        is ever returned for dispatch."""
        server_sock, client_sock = socket.socketpair()
        outcome: dict = {}

        def server():
            try:
                outcome["leftover"] = server_handshake(
                    server_sock, token="secret", timeout=5.0
                )
            except ServiceError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=server)
        thread.start()
        try:
            challenge = read_frame(client_sock)
            assert challenge.payload["required"] is True
            write_frame(client_sock, Request(1, "echo", "smuggled"))
            thread.join(5.0)
            rejection = read_frame(client_sock)
        finally:
            server_sock.close()
            client_sock.close()
        assert "leftover" not in outcome and "error" in outcome
        assert isinstance(rejection, Response)
        assert rejection.request_id == AUTH_ID
        assert rejection.error.startswith(AUTH_ERROR_PREFIX)

    def test_acknowledgement_frame_shape(self):
        """The success ack is a Response on AUTH_ID carrying AUTH_OK —
        pinned because cross-version peers key on it."""
        server_sock, client_sock = socket.socketpair()
        thread = threading.Thread(
            target=server_handshake, args=(server_sock,), kwargs={"token": "t"}
        )
        thread.start()
        try:
            challenge = read_frame(client_sock)
            write_frame(
                client_sock,
                Request(
                    AUTH_ID,
                    "auth_response",
                    auth_digest("t", challenge.payload["nonce"]),
                ),
            )
            ack = read_frame(client_sock)
            thread.join(5.0)
        finally:
            server_sock.close()
            client_sock.close()
        assert ack == Response(AUTH_ID, AUTH_OK, None)


class _Sink:
    def __init__(self):
        self.responses: "queue.Queue" = queue.Queue()
        self.disconnected = threading.Event()

    def on_response(self, response):
        self.responses.put(response)

    def on_disconnect(self):
        self.disconnected.set()


class TestAgentIntegration:
    """The handshake wired through WorkerAgent + TcpTransport."""

    def test_matching_token_serves_requests(self):
        with WorkerAgent(token="secret") as agent:
            assert agent.authenticated
            sink = _Sink()
            connection = TcpTransport(
                "127.0.0.1", agent.port, token="secret"
            ).open(sink.on_response, sink.on_disconnect)
            try:
                connection.send(Request(1, "echo", "over-auth"))
                assert sink.responses.get(timeout=10).payload == "over-auth"
            finally:
                connection.close(timeout=5.0)

    def test_unauthenticated_client_rejected_naming_endpoint(self):
        with WorkerAgent(token="secret") as agent:
            endpoint = f"tcp://127.0.0.1:{agent.port}"
            with pytest.raises(ServiceError, match=TOKEN_ENV_VAR) as excinfo:
                TcpTransport("127.0.0.1", agent.port, token="").open(
                    lambda r: None, lambda: None
                )
            assert endpoint in str(excinfo.value)

    def test_wrong_token_rejected_naming_endpoint(self):
        with WorkerAgent(token="secret") as agent:
            endpoint = f"tcp://127.0.0.1:{agent.port}"
            with pytest.raises(ServiceError, match=AUTH_ERROR_PREFIX) as excinfo:
                TcpTransport("127.0.0.1", agent.port, token="wrong").open(
                    lambda r: None, lambda: None
                )
            assert endpoint in str(excinfo.value)

    def test_pre_auth_frames_never_dispatch(self):
        """A raw peer that skips the handshake on a token-gated agent
        gets the typed rejection and EOF; its smuggled request is never
        executed (no echo response ever arrives)."""
        with WorkerAgent(token="secret") as agent:
            sock = socket.create_connection(("127.0.0.1", agent.port), timeout=5)
            sock.settimeout(5.0)
            try:
                read_frame(sock)  # the challenge
                write_frame(sock, Request(1, "echo", "smuggled"))
                rejection = read_frame(sock)
                assert rejection.request_id == AUTH_ID
                assert rejection.error.startswith(AUTH_ERROR_PREFIX)
                assert read_frame(sock) is None  # EOF, not an echo
            finally:
                sock.close()

    def test_tokenless_agent_env_token_still_gates(self, monkeypatch):
        """token=None resolves the environment on the agent side too."""
        monkeypatch.setenv(TOKEN_ENV_VAR, "env-secret")
        with WorkerAgent() as agent:
            assert agent.authenticated
            sink = _Sink()
            connection = TcpTransport("127.0.0.1", agent.port).open(
                sink.on_response, sink.on_disconnect
            )
            try:
                connection.send(Request(1, "ping", None))
                assert sink.responses.get(timeout=10).error is None
            finally:
                connection.close(timeout=5.0)
