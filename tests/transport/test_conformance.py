"""Transport conformance: one behavioural contract, every backend.

Each test runs against both backends — ``LocalTransport`` (worker in a
``multiprocessing`` child) and ``TcpTransport`` (worker hosted by a
``WorkerAgent`` in a separate OS process) — through nothing but the
:class:`~repro.transport.Transport` / :class:`~repro.transport.Connection`
interface.  What the service relies on is exactly what is asserted here:
echo roundtrips, multi-megabyte frames, response-to-request matching by
id (not order), disconnect signalling on peer death mid-request, and
refusal to send after close / reconnect after listener shutdown.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.transport import LocalTransport, Request, TcpTransport
from repro.transport.agent import spawn_agent


class Client:
    """Callback sink standing in for the service's dispatcher."""

    def __init__(self):
        self.responses: "queue.Queue" = queue.Queue()
        self.disconnected = threading.Event()

    def on_response(self, response):
        self.responses.put(response)

    def on_disconnect(self):
        self.disconnected.set()

    def next_response(self, timeout=30.0):
        return self.responses.get(timeout=timeout)


@pytest.fixture(params=["local", "tcp", "tcp-process"])
def transport(request):
    if request.param == "local":
        yield LocalTransport()
        return
    # "tcp-process" hosts the worker in a ProcessPoolAgent: the agent
    # forks one executor child per accepted connection, so the same
    # contract must hold across a pipe-pumped process boundary.
    popen, host, port = spawn_agent(processes=request.param == "tcp-process")
    try:
        yield TcpTransport(host, port, heartbeat_interval=0.2, liveness_timeout=3.0)
    finally:
        popen.kill()
        popen.wait(timeout=10)
        popen.stdout.close()


@pytest.fixture
def conn(transport):
    client = Client()
    connection = transport.open(client.on_response, client.on_disconnect)
    yield connection, client
    connection.close(timeout=5.0)


class TestRequestResponse:
    def test_echo_roundtrip(self, conn):
        connection, client = conn
        connection.send(Request(1, "echo", {"k": [1, 2, 3]}))
        response = client.next_response()
        assert response.request_id == 1
        assert response.error is None
        assert response.payload == {"k": [1, 2, 3]}
        assert response.worker > 0  # the hosting pid rides along

    def test_ping_reports_pid_and_sessions(self, conn):
        connection, client = conn
        connection.send(Request(2, "ping", None))
        pid, sessions = client.next_response().payload
        assert pid > 0 and sessions == 0

    def test_large_frame_roundtrip(self, conn):
        connection, client = conn
        blob = bytes(range(256)) * (3 * 1024 * 4)  # ~3 MiB
        connection.send(Request(3, "echo", blob))
        assert client.next_response().payload == blob

    def test_responses_resolve_by_id_not_arrival_order(self, conn):
        """The client contract is id-matching; arrival order is never
        assumed (a future multiplexing backend may interleave freely)."""
        connection, client = conn
        count = 24
        for request_id in range(count):
            connection.send(Request(request_id, "echo", f"payload-{request_id}"))
        seen = {}
        for _ in range(count):
            response = client.next_response()
            seen[response.request_id] = response.payload
        assert seen == {i: f"payload-{i}" for i in range(count)}

    def test_worker_error_comes_back_as_error_string(self, conn):
        connection, client = conn
        connection.send(Request(4, "no-such-op", None))
        response = client.next_response()
        assert response.payload is None
        assert "MonitorError" in response.error and "no-such-op" in response.error


class TestLiveness:
    def test_fresh_connection_is_alive(self, conn):
        connection, _ = conn
        assert connection.alive()

    def test_peer_death_mid_request_fires_disconnect(self, conn):
        connection, client = conn
        connection.send(Request(5, "crash", 11))
        assert client.disconnected.wait(timeout=10), "peer death never signalled"
        deadline = time.monotonic() + 5
        while connection.alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not connection.alive()
        with pytest.raises(ServiceError):
            connection.send(Request(6, "ping", None))


class TestClose:
    def test_send_after_close_refused(self, transport):
        client = Client()
        connection = transport.open(client.on_response, client.on_disconnect)
        connection.close(timeout=5.0)
        with pytest.raises(ServiceError, match="closed"):
            connection.send(Request(7, "ping", None))
        # a locally initiated close is not a peer loss
        assert not client.disconnected.is_set()

    def test_close_is_idempotent(self, transport):
        client = Client()
        connection = transport.open(client.on_response, client.on_disconnect)
        connection.close(timeout=5.0)
        connection.close(timeout=5.0)

    def test_close_waits_for_sent_requests(self, transport):
        """Requests already sent resolve before close tears the channel."""
        client = Client()
        connection = transport.open(client.on_response, client.on_disconnect)
        for request_id in range(5):
            connection.send(Request(request_id, "echo", request_id))
        connection.close(timeout=10.0)
        got = set()
        while True:
            try:
                got.add(client.responses.get_nowait().request_id)
            except queue.Empty:
                break
        assert got == set(range(5))


class PoisonDecodeCodec:
    """Pickle codec whose *client-side* decode chokes on one payload —
    stands in for a cross-revision peer whose response will not decode."""

    name = "poison-decode"

    def encode(self, obj):
        import pickle

        return pickle.dumps(obj)

    def decode(self, data):
        import pickle

        obj = pickle.loads(data)
        if getattr(obj, "payload", None) == "poison":
            raise RuntimeError("undecodable response")
        return obj


class TestUndecodableResponse:
    def test_decode_failure_loses_peer_instead_of_hanging(self):
        """A response the client codec cannot decode must surface as a
        peer loss (disconnect + dead connection), never a silent hang."""
        client = Client()
        connection = LocalTransport(codec=PoisonDecodeCodec()).open(
            client.on_response, client.on_disconnect
        )
        try:
            connection.send(Request(1, "echo", "fine"))
            assert client.next_response().payload == "fine"
            connection.send(Request(2, "echo", "poison"))
            assert client.disconnected.wait(timeout=10), (
                "undecodable response did not surface as peer loss"
            )
            assert not connection.alive()
        finally:
            connection.close(timeout=2.0)


class TestReconnectRefusal:
    def test_tcp_connect_refused_after_agent_close(self):
        popen, host, port = spawn_agent()
        try:
            transport = TcpTransport(host, port, connect_timeout=2.0)
            client = Client()
            connection = transport.open(client.on_response, client.on_disconnect)
            connection.close(timeout=5.0)
        finally:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                stale = transport.open(client.on_response, client.on_disconnect)
            except ServiceError:
                return  # refused, as demanded
            stale.close(timeout=0.0)
            time.sleep(0.1)
        raise AssertionError("agent kept accepting after shutdown")


class TestAuthConformance:
    """Token-gated agents reject unauthenticated peers *as a typed
    error*: the client must surface a ServiceError naming the endpoint,
    before any frame it sent is dispatched."""

    @pytest.fixture(params=["tcp", "tcp-process"])
    def gated_agent(self, request):
        popen, host, port = spawn_agent(
            token="conformance-secret", processes=request.param == "tcp-process"
        )
        try:
            yield host, port
        finally:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()

    def test_unauthenticated_open_surfaces_service_error_naming_endpoint(
        self, gated_agent
    ):
        host, port = gated_agent
        client = Client()
        with pytest.raises(ServiceError) as excinfo:
            TcpTransport(host, port, token="").open(
                client.on_response, client.on_disconnect
            )
        assert f"tcp://{host}:{port}" in str(excinfo.value)

    def test_wrong_token_surfaces_typed_auth_error(self, gated_agent):
        host, port = gated_agent
        client = Client()
        with pytest.raises(ServiceError, match="AuthError") as excinfo:
            TcpTransport(host, port, token="not-it").open(
                client.on_response, client.on_disconnect
            )
        assert f"tcp://{host}:{port}" in str(excinfo.value)

    def test_matching_token_conforms(self, gated_agent):
        host, port = gated_agent
        client = Client()
        connection = TcpTransport(host, port, token="conformance-secret").open(
            client.on_response, client.on_disconnect
        )
        try:
            connection.send(Request(1, "echo", "authenticated"))
            assert client.next_response().payload == "authenticated"
        finally:
            connection.close(timeout=5.0)


class TestCloseReleasesResources:
    """A closed connection leaves no threads running and no sockets open
    (the fast test lane runs with ``-W error::ResourceWarning``)."""

    def test_close_joins_backend_threads(self, transport):
        client = Client()
        connection = transport.open(client.on_response, client.on_disconnect)
        connection.send(Request(1, "ping", None))
        client.next_response()
        connection.close(timeout=5.0)
        threads = [connection._reader]
        heartbeat = getattr(connection, "_heartbeat", None)
        if heartbeat is not None:
            threads.append(heartbeat)
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive(), f"{thread.name} survived close()"

    def test_tcp_socket_closed_exactly_once(self):
        """Teardown is reachable from close(), the reader (EOF), and the
        heartbeat (silence); whatever the interleaving, the socket must
        end up closed and repeated closes must stay no-ops."""
        popen, host, port = spawn_agent()
        try:
            transport = TcpTransport(host, port, heartbeat_interval=0.2)
            client = Client()
            connection = transport.open(client.on_response, client.on_disconnect)
            connection.close(timeout=5.0)
            assert connection._sock.fileno() == -1  # released
            connection.close(timeout=5.0)  # idempotent
            connection._teardown_socket()  # direct re-entry is a no-op
        finally:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
