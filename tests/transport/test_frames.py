"""Frame-format tests: versioned length-prefixed encoding + codec."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.transport import Request, Response, decode_frame, encode_frame
from repro.transport.frames import (
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_SIZE,
    PickleCodec,
    decode_header,
)


class TestRoundtrip:
    def test_request_roundtrip(self):
        request = Request(7, "monitor", {"payload": [1, 2, 3]})
        assert decode_frame(encode_frame(request)) == request

    def test_response_roundtrip(self):
        response = Response(7, payload={"a": 1}, error=None, worker=1234)
        assert decode_frame(encode_frame(response)) == response

    def test_large_payload_roundtrip(self):
        blob = bytes(range(256)) * (3 * 1024 * 4)  # ~3 MiB
        frame = encode_frame(Request(1, "echo", blob))
        assert decode_frame(frame).payload == blob

    def test_header_layout(self):
        frame = encode_frame(Request(0, "ping", None))
        assert frame[:2] == FRAME_MAGIC
        assert frame[2] == FRAME_VERSION
        assert decode_header(frame[:HEADER_SIZE]) == len(frame) - HEADER_SIZE


class TestRejection:
    def test_bad_magic(self):
        frame = bytearray(encode_frame(Request(0, "ping", None)))
        frame[:2] = b"XX"
        with pytest.raises(ServiceError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch(self):
        frame = bytearray(encode_frame(Request(0, "ping", None)))
        frame[2] = FRAME_VERSION + 1
        with pytest.raises(ServiceError, match="version"):
            decode_frame(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ServiceError, match="truncated"):
            decode_header(b"RV")

    def test_length_mismatch(self):
        frame = encode_frame(Request(0, "ping", None))
        with pytest.raises(ServiceError, match="length"):
            decode_frame(frame[:-1])

    def test_codec_is_pluggable(self):
        class ReversedPickle(PickleCodec):
            name = "reversed-pickle"

            def encode(self, obj):
                return super().encode(obj)[::-1]

            def decode(self, data):
                return super().decode(data[::-1])

        codec = ReversedPickle()
        request = Request(3, "echo", "payload")
        frame = encode_frame(request, codec)
        assert decode_frame(frame, codec) == request
        with pytest.raises(Exception):  # noqa: B017 - default codec must not read it
            decode_frame(frame)
