"""Frame-format tests: versioned length-prefixed encoding + codec."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.transport import Request, Response, decode_frame, encode_frame
from repro.transport.frames import (
    FRAME_MAGIC,
    FRAME_VERSION,
    FRAME_VERSION_PACKED,
    FRAME_VERSION_PACKED_CALL,
    HEADER_SIZE,
    KNOWN_FRAME_VERSIONS,
    PickleCodec,
    decode_header,
)


class TestRoundtrip:
    def test_request_roundtrip(self):
        request = Request(7, "monitor", {"payload": [1, 2, 3]})
        assert decode_frame(encode_frame(request)) == request

    def test_response_roundtrip(self):
        response = Response(7, payload={"a": 1}, error=None, worker=1234)
        assert decode_frame(encode_frame(response)) == response

    def test_large_payload_roundtrip(self):
        blob = bytes(range(256)) * (3 * 1024 * 4)  # ~3 MiB
        frame = encode_frame(Request(1, "echo", blob))
        assert decode_frame(frame).payload == blob

    def test_header_layout(self):
        frame = encode_frame(Request(0, "ping", None))
        assert frame[:2] == FRAME_MAGIC
        assert frame[2] == FRAME_VERSION
        assert decode_header(frame[:HEADER_SIZE]) == len(frame) - HEADER_SIZE


class TestRejection:
    def test_bad_magic(self):
        frame = bytearray(encode_frame(Request(0, "ping", None)))
        frame[:2] = b"XX"
        with pytest.raises(ServiceError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch(self):
        frame = bytearray(encode_frame(Request(0, "ping", None)))
        frame[2] = max(KNOWN_FRAME_VERSIONS) + 1
        with pytest.raises(ServiceError, match="version"):
            decode_frame(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ServiceError, match="truncated"):
            decode_header(b"RV")

    def test_length_mismatch(self):
        frame = encode_frame(Request(0, "ping", None))
        with pytest.raises(ServiceError, match="length"):
            decode_frame(frame[:-1])

    def test_codec_is_pluggable(self):
        class ReversedPickle(PickleCodec):
            name = "reversed-pickle"

            def encode(self, obj):
                return super().encode(obj)[::-1]

            def decode(self, data):
                return super().decode(data[::-1])

        codec = ReversedPickle()
        request = Request(3, "echo", "payload")
        frame = encode_frame(request, codec)
        assert decode_frame(frame, codec) == request
        with pytest.raises(Exception):  # noqa: B017 - default codec must not read it
            decode_frame(frame)


class TestPackedObserveFastPath:
    """The struct-packed ``session_observe`` frame (FRAME_VERSION_PACKED)."""

    EVENTS = [
        ("apricot", 250, frozenset({"apr.escrow(alice)", "apr.premium"}), None),
        ("banana", 251, frozenset(), {"from.bob": 1.0, "fee": -0.5}),
        ("çedille", 300, frozenset({"ünïcode.prop"}), {"π": 3.5}),
    ]

    def request(self):
        return Request(42, "session_observe", (7, list(self.EVENTS)))

    def test_observe_requests_take_the_packed_version(self):
        frame = encode_frame(self.request())
        assert frame[2] == FRAME_VERSION_PACKED

    def test_roundtrip_bit_identical(self):
        decoded = decode_frame(encode_frame(self.request()))
        assert decoded == self.request()
        assert decoded.payload[1] == list(self.EVENTS)

    def test_socketless_other_ops_stay_pickled(self):
        frame = encode_frame(Request(1, "session_close", (7,)))
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == Request(1, "session_close", (7,))

    def test_packed_is_smaller_than_pickled(self):
        packed = encode_frame(self.request())
        pickled = encode_frame(Request(42, "not_observe", (7, list(self.EVENTS))))
        assert len(packed) < len(pickled)

    def test_ineligible_payload_falls_back_to_pickle(self):
        # complex deltas cannot pack (doubles only) but pickle fine
        odd = Request(3, "session_observe", (7, [("p", 1, frozenset(), {"x": 1 + 2j})]))
        frame = encode_frame(odd)
        assert frame[2] == FRAME_VERSION  # pickled, not packed
        assert decode_frame(frame).payload[1][0][3]["x"] == 1 + 2j

    def test_malformed_shapes_fall_back(self):
        from repro.transport.frames import pack_observe_request

        assert pack_observe_request(Request(1, "session_observe", "nope")) is None
        assert pack_observe_request(Request(1, "session_observe", (1, 2, 3))) is None
        assert pack_observe_request(
            Request(1, "session_observe", (1, [("p", "not-an-int", frozenset(), None)]))
        ) is None
        assert pack_observe_request(
            Request(1, "session_observe", (1, [("p", 1, ["list-not-frozenset"], None)]))
        ) is None
        # int64 overflow must not truncate silently
        assert pack_observe_request(
            Request(1, "session_observe", (1, [("p", 1 << 70, frozenset(), None)]))
        ) is None

    def test_empty_batch_roundtrip(self):
        request = Request(5, "session_observe", (9, []))
        decoded = decode_frame(encode_frame(request))
        assert decoded == request

    def test_corrupt_packed_frame_raises_service_error(self):
        frame = bytearray(encode_frame(self.request()))
        truncated = bytes(frame[: len(frame) - 3])
        with pytest.raises(ServiceError):
            decode_frame(truncated)

    def test_trailing_garbage_rejected(self):
        from repro.transport.frames import HEADER_SIZE as H
        from repro.transport.frames import _HEADER, FRAME_MAGIC

        frame = encode_frame(self.request())
        payload = frame[H:] + b"\x00\x00"
        rebuilt = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION_PACKED, len(payload)) + payload
        with pytest.raises(ServiceError, match="trailing|corrupt"):
            decode_frame(rebuilt)

    def test_opt_out_env_flag(self, monkeypatch):
        from repro.transport import frames

        monkeypatch.setattr(frames, "PACK_OBSERVE_BATCHES", False)
        frame = encode_frame(self.request())
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == self.request()  # decode side unchanged

    def test_deltas_preserve_float_values(self):
        events = [("p", 0, frozenset(), {"v": 0.1 + 0.2})]
        decoded = decode_frame(encode_frame(Request(1, "session_observe", (0, events))))
        assert decoded.payload[1][0][3]["v"] == 0.1 + 0.2  # exact double roundtrip

    def test_huge_int_deltas_fall_back_to_pickle(self):
        """An integer delta beyond 2^53 would lose precision as a double;
        the packed path must refuse it so both codepaths decode the same
        number (wei-sized payoff sums are realistic inputs)."""
        events = [("p", 0, frozenset(), {"wei": 2**60 + 1})]
        frame = encode_frame(Request(1, "session_observe", (0, events)))
        assert frame[2] == FRAME_VERSION  # pickled
        assert decode_frame(frame).payload[1][0][3]["wei"] == 2**60 + 1

    def test_packed_call_custom_codec_bypassed_too(self):
        codec = PickleCodec()
        frame = encode_frame(Request(1, "session_advance", (7, 40)), codec)
        assert frame[2] == FRAME_VERSION  # non-default codec owns the bytes
        assert decode_frame(frame, codec) == Request(1, "session_advance", (7, 40))

    def test_custom_codec_bypasses_the_fast_path(self):
        """A non-default codec must see every payload (the codec contract:
        compressing/encrypting/cross-language codecs own the bytes)."""

        class Tracing(PickleCodec):
            name = "tracing"

            def __init__(self):
                self.encoded = 0

            def encode(self, obj):
                self.encoded += 1
                return super().encode(obj)

        codec = Tracing()
        frame = encode_frame(self.request(), codec)
        assert codec.encoded == 1
        assert frame[2] == FRAME_VERSION  # codec payload, not packed
        assert decode_frame(frame, codec) == self.request()


class TestPackedCallFastPath:
    """The fixed-shape ``session_advance``/``session_poll`` frames
    (FRAME_VERSION_PACKED_CALL): with observe these cover the whole
    per-event hot loop, so a feeding client runs pickle-free."""

    def test_advance_takes_the_packed_call_version(self):
        request = Request(11, "session_advance", (7, 4000))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        assert decode_frame(frame) == request

    def test_poll_takes_the_packed_call_version(self):
        request = Request(12, "session_poll", (7,))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        assert decode_frame(frame) == request

    def test_negative_ids_and_boundaries_roundtrip(self):
        request = Request(-5, "session_advance", (-9, -(1 << 40)))
        assert decode_frame(encode_frame(request)) == request

    def test_packed_call_is_smaller_than_pickled(self):
        packed = encode_frame(Request(11, "session_advance", (7, 4000)))
        pickled = encode_frame(Request(11, "not_advance", (7, 4000)))
        assert len(packed) < len(pickled)

    def test_malformed_shapes_fall_back_to_pickle(self):
        from repro.transport.frames import pack_call_request

        assert pack_call_request(Request(1, "session_advance", "nope")) is None
        assert pack_call_request(Request(1, "session_advance", (7,))) is None
        assert pack_call_request(Request(1, "session_advance", (7, 1.5))) is None
        assert pack_call_request(Request(1, "session_advance", (7, True))) is None
        assert pack_call_request(Request(1, "session_poll", (7, 8))) is None
        assert pack_call_request(Request(1, "session_poll", ("7",))) is None
        # int64 overflow must not truncate silently
        assert pack_call_request(Request(1, "session_advance", (7, 1 << 70))) is None
        assert pack_call_request(Request(1 << 70, "session_poll", (7,))) is None

    def test_ineligible_payload_still_decodes_via_pickle(self):
        odd = Request(3, "session_advance", (7, 1 << 70))
        frame = encode_frame(odd)
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == odd

    def test_wrong_size_payload_raises_service_error(self):
        from repro.transport.frames import unpack_call_request

        with pytest.raises(ServiceError, match="expected"):
            unpack_call_request(b"\x01short")
        # and through the framed path: a truncated frame is rejected too
        frame = encode_frame(Request(11, "session_poll", (7,)))
        with pytest.raises(ServiceError):
            decode_frame(frame[:-1])

    def test_unknown_opcode_raises_service_error(self):
        import struct

        from repro.transport.frames import unpack_call_request

        with pytest.raises(ServiceError, match="opcode"):
            unpack_call_request(struct.pack(">Bqqq", 9, 1, 2, 3))

    def test_opt_out_env_flag_covers_calls_too(self, monkeypatch):
        from repro.transport import frames

        monkeypatch.setattr(frames, "PACK_OBSERVE_BATCHES", False)
        request = Request(11, "session_advance", (7, 4000))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == request  # decode side unchanged


class TestPackedSessionLifecycleFrames:
    """The v3 family extended to the session lifecycle: ``session_open``
    and ``session_finish`` requests plus their ack responses, under the
    same strict-shape-or-pickle-fallback contract."""

    def _formula(self):
        from repro.mtl import parse

        return parse("G[0,10) (!a | F[0,3) b)")

    def test_open_request_takes_the_packed_call_version(self):
        request = Request(3, "session_open", (7, self._formula(), 2, {}))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        assert decode_frame(frame) == request

    def test_open_request_with_kwargs_roundtrips(self):
        for kwargs in (
            {"max_traces_per_segment": None},
            {"max_traces_per_segment": 5000},
            {"backend": "csp"},
            {"max_traces_per_segment": 123, "backend": "dfs"},
        ):
            request = Request(3, "session_open", (7, self._formula(), 2, kwargs))
            frame = encode_frame(request)
            assert frame[2] == FRAME_VERSION_PACKED_CALL, kwargs
            assert decode_frame(frame) == request, kwargs

    def test_open_with_foreign_kwarg_falls_back_to_pickle(self):
        request = Request(
            3, "session_open", (7, self._formula(), 2, {"surprise": 1})
        )
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == request

    def test_finish_request_takes_the_packed_call_version(self):
        request = Request(9, "session_finish", (7,))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        assert decode_frame(frame) == request

    def test_open_ack_takes_the_packed_call_version(self):
        ack = Response(3, 7, None, 4321, op="session_open")
        frame = encode_frame(ack)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        assert decode_frame(frame) == ack

    def test_finish_ack_roundtrips_the_result(self):
        from repro.monitor.verdicts import MonitorResult, SegmentReport

        result = MonitorResult(
            formula=self._formula(),
            verdict_counts={True: 41, False: 1},
            segment_reports=[
                SegmentReport(
                    index=0,
                    events=3,
                    traces_enumerated=42,
                    distinct_residuals=5,
                    truncated=False,
                ),
                SegmentReport(
                    index=1,
                    events=2,
                    traces_enumerated=17,
                    distinct_residuals=1,
                    truncated=True,
                    preempted=True,
                ),
            ],
            exhaustive=False,
            verdict_set_complete=True,
        )
        ack = Response(9, result, None, 4321, op="session_finish")
        frame = encode_frame(ack)
        assert frame[2] == FRAME_VERSION_PACKED_CALL
        decoded = decode_frame(frame)
        assert decoded.payload.formula == result.formula
        assert decoded.payload.verdict_counts == result.verdict_counts
        assert decoded.payload.exhaustive == result.exhaustive
        assert decoded.payload.verdict_set_complete == result.verdict_set_complete
        reports = decoded.payload.segment_reports
        assert [vars(r) for r in reports] == [
            vars(r) for r in result.segment_reports
        ]

    def test_error_ack_falls_back_to_pickle(self):
        ack = Response(9, None, "MonitorError: boom", 4321, op="session_finish")
        frame = encode_frame(ack)
        assert frame[2] == FRAME_VERSION
        assert decode_frame(frame) == ack

    def test_unparseable_formula_falls_back_to_pickle(self):
        from repro.mtl import ast

        # A predicate atom renders as text that cannot be re-parsed, so
        # the strict round-trip check must reject the fast path.
        from repro.mtl.interval import Interval

        formula = ast.Eventually(
            ast.PredicateAtom("x", predicate=bool), Interval(0, 5)
        )
        request = Request(3, "session_open", (7, formula, 2, {}))
        frame = encode_frame(request)
        assert frame[2] == FRAME_VERSION

    def test_opt_out_env_flag_covers_lifecycle_too(self, monkeypatch):
        from repro.transport import frames

        monkeypatch.setattr(frames, "PACK_OBSERVE_BATCHES", False)
        request = Request(3, "session_open", (7, self._formula(), 2, {}))
        assert encode_frame(request)[2] == FRAME_VERSION
        ack = Response(3, 7, None, 4321, op="session_open")
        assert encode_frame(ack)[2] == FRAME_VERSION

    def test_packed_open_is_smaller_than_pickled(self):
        request = Request(3, "session_open", (7, self._formula(), 2, {}))
        packed = encode_frame(request)
        pickled = encode_frame(
            Request(3, "not_session_open", (7, self._formula(), 2, {}))
        )
        assert len(packed) < len(pickled)
