"""Codec hostility: hand-hostile and fuzzed bytes against live servers.

The bar (robustness PR): whatever bytes arrive on a listener —
truncated headers, bit-flipped version bytes, absurd length prefixes,
garbage payloads, smuggled reserved ids — the server answers with a
typed error or drops the connection cleanly.  It never hangs a reader,
never crashes the process, and always accepts the *next* well-formed
connection.  Every fuzz case derives from a printed seed.
"""

from __future__ import annotations

import queue
import random
import socket
import struct
import threading
import time

import pytest

from repro.cluster import ClusterRegistry, RegistryClient
from repro.transport import Request, Response, TcpTransport
from repro.transport.agent import WorkerAgent
from repro.transport.frames import (
    AUTH_ID,
    CONTROL_ID,
    FRAME_MAGIC,
    HEADER_SIZE,
    HEARTBEAT_ID,
    MAX_FRAME_BYTES,
    REGISTRY_EVENT_ID,
    encode_frame,
    read_frame,
    write_frame,
)

FUZZ_SEED = 20260808
FUZZ_ROUNDS = 30


@pytest.fixture
def agent():
    with WorkerAgent(token="") as served:
        yield served


@pytest.fixture
def registry():
    with ClusterRegistry(token="", lease_timeout=5.0) as reg:
        yield reg


def _open_raw(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _handshake(sock: socket.socket) -> None:
    """Get past the pre-auth gate so hostile bytes hit the regular frame
    reader.  A tokenless server still sends its (non-required) challenge;
    the leniency path dispatches our first regular frame as-is."""
    write_frame(sock, Request(1, "ping", None))
    while True:
        frame = read_frame(sock)
        assert frame is not None, "server closed during the tokenless handshake"
        if isinstance(frame, Response) and frame.request_id == 1:
            return


def _hostile_send(sock: socket.socket, data: bytes) -> None:
    """Send hostile bytes and half-close; tolerate the server winning the
    race and resetting the connection first (that IS a clean close)."""
    try:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass


def _read_until_close(sock: socket.socket, timeout: float = 5.0):
    """Collect whatever the server answers before EOF; [] on silence.

    Raises on a server that neither answers nor closes — a hung reader
    is exactly the failure mode under test.
    """
    sock.settimeout(timeout)
    frames = []
    while True:
        try:
            frame = read_frame(sock)
        except Exception:  # noqa: BLE001 — mid-frame close is also a close
            return frames
        if frame is None:
            return frames
        frames.append(frame)
        if len(frames) > 64:
            raise AssertionError("server streamed endlessly at hostile input")


def _assert_agent_serves(agent: WorkerAgent) -> None:
    """The recovery bar: a fresh, well-formed connection still works."""
    sock = _open_raw(agent.port)
    try:
        write_frame(sock, Request(1, "echo", "post-hostility"))
        while True:
            response = read_frame(sock)
            assert response is not None, "agent refused a clean connection"
            if isinstance(response, Response) and response.request_id == 1:
                break
        assert response.payload == "post-hostility"
    finally:
        sock.close()


def _assert_registry_serves(registry: ClusterRegistry) -> None:
    client = RegistryClient.connect(registry.describe(), token="")
    try:
        client.register("tcp://post-hostility:1")
        assert any(
            m["address"] == "tcp://post-hostility:1" for m in client.members()
        )
        client.leave()
    finally:
        client.close()


HOSTILE_BYTES = {
    "truncated-header": b"RV\x01",
    "bad-magic": b"XX" + bytes(HEADER_SIZE - 2) + b"junk",
    "unknown-version": struct.pack(">2sBI", FRAME_MAGIC, 0xEE, 4) + b"\0\0\0\0",
    "oversized-length": struct.pack(
        ">2sBI", FRAME_MAGIC, 1, MAX_FRAME_BYTES + 1
    ),
    "length-overruns-data": struct.pack(">2sBI", FRAME_MAGIC, 1, 1 << 20) + b"x",
    "garbage-pickle": struct.pack(">2sBI", FRAME_MAGIC, 1, 8) + b"\x93NOTPICK",
    "empty-packed-call": struct.pack(">2sBI", FRAME_MAGIC, 3, 0),
    "bad-packed-opcode": struct.pack(">2sBI", FRAME_MAGIC, 3, 1) + b"\xff",
    "short-packed-observe": struct.pack(">2sBI", FRAME_MAGIC, 2, 3) + b"\0\0\0",
}


class TestHostileBytesAgainstAgent:
    @pytest.mark.parametrize("name", sorted(HOSTILE_BYTES))
    def test_hostile_frame_never_hangs_or_kills(self, agent, name):
        sock = _open_raw(agent.port)
        try:
            _handshake(sock)
            _hostile_send(sock, HOSTILE_BYTES[name])
            for frame in _read_until_close(sock):
                # Anything the server does answer must be a typed error,
                # never a payload fabricated from hostile bytes.
                assert isinstance(frame, Response)
                assert frame.error is not None
        finally:
            sock.close()
        _assert_agent_serves(agent)

    def test_client_closing_mid_frame_releases_the_reader(self, agent):
        sock = _open_raw(agent.port)
        _handshake(sock)
        # Promise 1 MiB, deliver 5 bytes, vanish.
        sock.sendall(struct.pack(">2sBI", FRAME_MAGIC, 1, 1 << 20) + b"abcde")
        sock.close()
        deadline = time.monotonic() + 5.0
        while agent.active_connections() > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert agent.active_connections() == 0
        _assert_agent_serves(agent)

    def test_unknown_op_is_a_typed_error_not_a_disconnect(self, agent):
        sock = _open_raw(agent.port)
        try:
            write_frame(sock, Request(1, "no_such_op", None))
            while True:
                response = read_frame(sock)
                assert response is not None
                if isinstance(response, Response) and response.request_id == 1:
                    break
            assert response.error is not None
            assert "no_such_op" in response.error
            # Same connection still serves afterwards.
            write_frame(sock, Request(2, "echo", "still-here"))
            assert read_frame(sock).payload == "still-here"
        finally:
            sock.close()

    def test_reserved_ids_never_dispatch_or_hang(self, agent):
        """Heartbeat, control, auth, and registry-event ids are protocol
        plumbing; a hostile peer riding them must not reach the executor
        or wedge the reader."""
        sock = _open_raw(agent.port)
        try:
            _handshake(sock)
            write_frame(sock, Request(HEARTBEAT_ID, "echo", "smuggled"))
            pong = read_frame(sock)
            assert pong.request_id == HEARTBEAT_ID  # answered out-of-band
            assert pong.payload != "smuggled"
            write_frame(sock, Request(CONTROL_ID, "drop", "not-an-id"))
            write_frame(sock, Request(AUTH_ID, "auth_response", "late"))
            write_frame(sock, Request(REGISTRY_EVENT_ID, "echo", "smuggled"))
            # The connection still answers ordinary work after all four.
            write_frame(sock, Request(5, "echo", "normal"))
            frames = []
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                frame = read_frame(sock)
                assert frame is not None, "server dropped a surviving connection"
                frames.append(frame)
                if any(
                    isinstance(f, Response) and f.payload == "normal"
                    for f in frames
                ):
                    break
            assert any(
                isinstance(f, Response) and f.payload == "normal" for f in frames
            )
            assert not any(
                isinstance(f, Response) and f.payload == "smuggled" for f in frames
            )
        finally:
            sock.close()


class TestFuzzedFramesAgainstAgent:
    def test_bit_flipped_frames_seeded(self, agent):
        """Take valid frames, flip random bits, replay against a live
        agent.  Every outcome must be a typed error or a clean close;
        the agent must serve afterwards.

        Payload bits are only flipped on the *packed* frame versions,
        whose decoders are this repo's own bounded parsers.  Pickled
        (v1) payloads get header-only flips: stock pickle on hostile
        bytes can stall in C (e.g. a flipped ``LONG_BINPUT`` index
        pre-allocates a multi-GB memo), which is why the wire protocol
        keeps pickle off every hot-path frame — see DESIGN.md.
        """
        rng = random.Random(FUZZ_SEED)
        observe_events = [("P1", 3, frozenset({"a"}), None)] * 4
        templates = [
            (encode_frame(Request(9, "echo", {"k": [1, 2, 3]})), HEADER_SIZE),
            (
                encode_frame(Request(10, "session_observe", (1, observe_events))),
                None,
            ),
            (encode_frame(Request(11, "session_advance", (1, 5))), None),
            (encode_frame(Request(12, "session_poll", (1,))), None),
        ]
        for round_index in range(FUZZ_ROUNDS):
            template, flip_limit = rng.choice(templates)
            frame = bytearray(template)
            span = len(frame) if flip_limit is None else flip_limit
            flips = rng.randint(1, 3)
            for _ in range(flips):
                frame[rng.randrange(span)] ^= 1 << rng.randrange(8)
            sock = _open_raw(agent.port)
            try:
                _handshake(sock)
                _hostile_send(sock, bytes(frame))
                for answer in _read_until_close(sock):
                    assert isinstance(answer, Response), (
                        f"seed={FUZZ_SEED} round={round_index}: "
                        f"non-response frame {answer!r}"
                    )
            finally:
                sock.close()
        _assert_agent_serves(agent)

    def test_random_byte_blobs_seeded(self, agent):
        rng = random.Random(FUZZ_SEED + 1)
        for round_index in range(FUZZ_ROUNDS):
            blob = bytes(rng.randrange(256) for _ in range(rng.randint(1, 128)))
            sock = _open_raw(agent.port)
            try:
                _handshake(sock)
                _hostile_send(sock, blob)
                _read_until_close(sock)
            finally:
                sock.close()
        _assert_agent_serves(agent)


class TestHostileBytesAgainstRegistry:
    @pytest.mark.parametrize(
        "name", ["bad-magic", "oversized-length", "garbage-pickle", "truncated-header"]
    )
    def test_hostile_frame_never_kills_the_registry(self, registry, name):
        sock = _open_raw(registry.port)
        try:
            _hostile_send(sock, HOSTILE_BYTES[name])
            _read_until_close(sock)
        finally:
            sock.close()
        _assert_registry_serves(registry)

    def test_fuzzed_registry_ops_seeded(self, registry):
        """Well-framed but malformed registry requests: wrong payload
        shapes on real ops plus bit flips on valid registration frames."""
        rng = random.Random(FUZZ_SEED + 2)
        # (request, must_fail): ops that ignore their payload may
        # legitimately succeed — the bar is a typed answer either way.
        malformed = [
            (Request(1, "registry_register", "not-a-dict"), True),
            (Request(2, "registry_register", {"address": 7}), True),
            (Request(3, "registry_watch", ["unexpected"]), False),
            (Request(4, "registry_leave", {"address": None}), False),
            (Request(5, "definitely_not_an_op", {"address": "tcp://x:1"}), True),
        ]
        # Registry ops are pickled (v1) frames: flip header bits only —
        # payload flips would fuzz pickle itself, which can stall in C
        # on hostile bytes (see the agent bit-flip test).
        template = encode_frame(
            Request(6, "registry_register", {"address": "tcp://fuzz:1"})
        )
        for request, must_fail in malformed:
            sock = _open_raw(registry.port)
            try:
                write_frame(sock, request)
                sock.shutdown(socket.SHUT_WR)
                for answer in _read_until_close(sock):
                    if isinstance(answer, Request) and answer.request_id == AUTH_ID:
                        continue  # the tokenless challenge
                    assert isinstance(answer, Response)
                    if must_fail and answer.request_id == request.request_id:
                        assert answer.error is not None
            finally:
                sock.close()
        for round_index in range(FUZZ_ROUNDS):
            frame = bytearray(template)
            frame[rng.randrange(HEADER_SIZE)] ^= 1 << rng.randrange(8)
            sock = _open_raw(registry.port)
            try:
                _hostile_send(sock, bytes(frame))
                _read_until_close(sock)
            finally:
                sock.close()
        _assert_registry_serves(registry)

    def test_registry_survives_a_flooding_peer_disconnect(self, registry):
        """A peer that bursts frames and vanishes mid-write leaves no
        wedged reader behind."""
        for _ in range(5):
            sock = _open_raw(registry.port)
            for i in range(20):
                write_frame(sock, Request(i, "registry_members", None))
            sock.close()  # without reading a single response
        _assert_registry_serves(registry)
