"""End-to-end acceptance: the same workload over both transports.

The bar from the transport refactor: a batch + session workload runs
*bit-identically* on a local-process pool and on a TCP pool of worker
agents (localhost), and both pools recover from a worker kill — the dead
endpoint's futures fail with :class:`~repro.errors.ServiceError` while
survivors keep serving.
"""

from __future__ import annotations

import time

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import ServiceError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

BATCH_SPEC = parse("a U[0,6) b")
SESSION_SPECS = [parse("F[0,8) b"), parse("G[0,4) (a | b)")]


def _computations() -> list[DistributedComputation]:
    fig3 = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    skewed = DistributedComputation.from_event_lists(
        3,
        {
            "P1": [(0, "a"), (3, "a"), (6, ())],
            "P2": [(1, ()), (4, "b")],
            "P3": [(2, "a")],
        },
    )
    return [fig3, skewed, fig3]


def _session_stream(index: int):
    return [
        ("P1", 1 + index, frozenset({"a"})),
        ("P2", 2 + index, frozenset({"a", "b"})),
        ("P1", 5 + index, frozenset({"b"})),
        ("P2", 6 + index, frozenset()),
    ]


def _run_workload(service: MonitorService):
    """The acceptance workload: a batch and two sessions, interleaved."""
    sessions = [
        service.open_session(spec, epsilon=2) for spec in SESSION_SPECS
    ]
    for index, session in enumerate(sessions):
        for process, local_time, props in _session_stream(index)[:2]:
            session.observe(process, local_time, props)
    report = service.map(_computations(), formula=BATCH_SPEC, saturate=False)
    for index, session in enumerate(sessions):
        for process, local_time, props in _session_stream(index)[2:]:
            session.observe(process, local_time, props)
    session_results = [session.finish() for session in sessions]
    assert not report.errors
    return (
        [item.result.verdict_counts for item in report.items],
        [result.verdict_counts for result in session_results],
        [result.verdicts for result in session_results],
    )


@pytest.fixture
def tcp_endpoints():
    """Two worker agents in their own OS processes on localhost."""
    agents = [spawn_agent() for _ in range(2)]
    try:
        yield agents, [f"tcp://{host}:{port}" for _, host, port in agents]
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()


class TestBitIdentical:
    def test_local_and_tcp_pools_agree(self, tcp_endpoints):
        """Acceptance: identical batch + session outcomes on both backends."""
        _, endpoints = tcp_endpoints
        with MonitorService(workers=2) as service:
            local = _run_workload(service)
        with MonitorService(endpoints=endpoints) as service:
            assert service.endpoints() == endpoints
            remote = _run_workload(service)
        assert remote == local

    def test_mixed_pool_serves_both_backends(self, tcp_endpoints):
        """One pool, one local worker + one TCP agent: work lands on both."""
        _, endpoints = tcp_endpoints
        with MonitorService(endpoints=["local", endpoints[0]]) as service:
            assert service.endpoints()[0].startswith("local[")
            assert service.endpoints()[1] == endpoints[0]
            outcome = _run_workload(service)
            pids = service.worker_pids()
        with MonitorService(workers=2) as service:
            assert _run_workload(service) == outcome
        assert len(set(pids)) == 2


def _kill_and_verify_recovery(service: MonitorService, kill) -> None:
    """Shared recovery bar: dead endpoint's session fails, pool survives."""
    session = service.open_session(SESSION_SPECS[0], epsilon=2)  # id 0 -> worker 0
    assert session.worker_index == 0
    kill()
    deadline = time.monotonic() + 15
    with pytest.raises(ServiceError, match="died|closed|unreachable"):
        while time.monotonic() < deadline:
            session.poll()
            time.sleep(0.05)
        raise AssertionError("dead worker never detected")
    report = service.map(_computations(), formula=BATCH_SPEC, saturate=False)
    assert not report.errors
    assert all(item.ok for item in report.items)


class TestWorkerKillRecovery:
    def test_local_pool_recovers_from_worker_kill(self):
        with MonitorService(workers=2, saturate=False) as service:
            _kill_and_verify_recovery(
                service, lambda: service._connections[0].kill()
            )

    def test_tcp_pool_recovers_from_agent_kill(self, tcp_endpoints):
        agents, endpoints = tcp_endpoints
        with MonitorService(endpoints=endpoints, saturate=False) as service:
            _kill_and_verify_recovery(service, lambda: agents[0][0].kill())


DURABLE_SPEC = parse("a U[0,30) b")
KILL_AT = 15  # mid-stream: after two checkpoints, before the last boundary


def _drive_durable_stream(target, kill_at=None, kill=None):
    """Feed one deterministic multi-segment stream; return verdict counts.

    ``target`` is anything with the online-monitor surface — an
    in-process :class:`OnlineMonitor` (the reference) or a durable
    :class:`~repro.service.session.Session` (the system under test,
    optionally killed mid-stream via ``kill``).
    """
    for t in range(1, 25):
        target.observe("P1", t, {"a"} if t % 3 else {"a", "b"})
        if t % 5 == 0:  # sparse second process: keeps enumeration cheap
            target.observe("P2", t, {"b"} if t % 10 == 0 else set())
        if t % 6 == 0:
            target.advance_to(t)
        if kill is not None and t == kill_at:
            kill()
    return target.finish().verdict_counts


class TestDurableKillMidStream:
    """Acceptance: kill -9 mid-stream with checkpointing enabled yields a
    verdict multiset bit-identical to an uninterrupted in-process replay —
    no ServiceError ever reaches the caller."""

    def _verify(self, service: MonitorService, kill) -> None:
        reference = _drive_durable_stream(OnlineMonitor(DURABLE_SPEC, epsilon=2))
        session = service.open_session(
            DURABLE_SPEC, epsilon=2, checkpoint={"every_events": 4}
        )
        assert session.worker_index == 0  # id 0 hashes to endpoint 0
        counts = _drive_durable_stream(session, kill_at=KILL_AT, kill=kill)
        assert counts == reference
        assert session.recoveries == 1
        assert session.worker_index == 1
        assert session.checkpoints >= 1

    def test_local_worker_kill_is_bit_identical(self):
        with MonitorService(workers=2, saturate=False) as service:
            self._verify(service, lambda: service._connections[0].kill())
            assert service.outstanding() == [0, 0]

    def test_tcp_agent_sigkill_is_bit_identical(self, tcp_endpoints):
        agents, endpoints = tcp_endpoints
        with MonitorService(endpoints=endpoints, saturate=False) as service:
            self._verify(service, lambda: agents[0][0].kill())
            assert service.outstanding() == [0, 0]
