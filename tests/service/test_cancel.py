"""Tests for client-side future cancellation (``MonitorFuture.cancel``).

The contract: a not-yet-resolved future cancels immediately client-side
(``result()`` raises :class:`~repro.errors.CancelledError`), a drop
frame asks the worker to skip the request if it has not executed yet,
and :class:`~repro.service.reports.BatchReport` records cancelled items
separately from errors.  Cancellation is best-effort — a future that
already resolved refuses (returns False).
"""

from __future__ import annotations

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import CancelledError
from repro.mtl import parse
from repro.service import MonitorService

SPEC = parse("a U[0,6) b")


def _computation() -> DistributedComputation:
    return DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )


def _occupy(service: MonitorService, seconds: float = 0.4):
    """Park the single worker on a sleep so submits queue behind it."""
    return service._send(0, "sleep", seconds)


class TestCancel:
    def test_cancel_pending_future(self):
        comp = _computation()
        with MonitorService(workers=1, formula=SPEC, saturate=False) as service:
            blocker = _occupy(service)
            futures = service.submit_many([comp, comp, comp])
            assert futures[1].cancel() is True
            assert futures[1].cancelled
            assert futures[1].done()
            with pytest.raises(CancelledError):
                futures[1].result(timeout=30)
            # neighbours are untouched
            assert futures[0].result(timeout=30).ok
            assert futures[2].result(timeout=30).ok
            blocker.result(timeout=30)

    def test_cancel_after_resolve_refuses(self):
        comp = _computation()
        with MonitorService(workers=1, formula=SPEC, saturate=False) as service:
            future = service.submit(comp)
            assert future.result(timeout=30).ok
            assert future.cancel() is False
            assert not future.cancelled
            assert future.result(timeout=30).ok  # result survives the attempt

    def test_cancel_is_idempotent(self):
        comp = _computation()
        with MonitorService(workers=1, formula=SPEC, saturate=False) as service:
            blocker = _occupy(service)
            future = service.submit(comp)
            assert future.cancel() is True
            assert future.cancel() is True  # repeated cancels keep the outcome
            blocker.result(timeout=30)

    def test_cancelled_request_releases_backpressure(self):
        """A cancelled future must release its max_in_flight slot, or the
        pool would leak capacity on every cancel."""
        comp = _computation()
        with MonitorService(
            workers=1, formula=SPEC, max_in_flight=1, saturate=False
        ) as service:
            blocker = _occupy(service)
            first = service.submit(comp)
            first.cancel()
            # with the slot released this submit cannot deadlock
            second = service.submit(comp)
            assert second.result(timeout=30).ok
            blocker.result(timeout=30)

    def test_worker_skips_dropped_request(self):
        """The drop frame overtakes queued work: a request cancelled while
        the worker is busy is acknowledged as dropped, never executed."""
        comp = _computation()
        with MonitorService(workers=1, formula=SPEC, saturate=False) as service:
            blocker = _occupy(service, seconds=0.6)
            future = service.submit(comp)
            assert future.cancel() is True
            blocker.result(timeout=30)
            # the drop-ack settles the books: nothing stays outstanding
            deadline_futures = service.submit_many([comp, comp])
            report = service.gather(deadline_futures)
            assert not report.errors
            assert service.outstanding() == [0]


class TestBatchReportRecordsCancellation:
    def test_gather_marks_cancelled_items(self):
        comp = _computation()
        with MonitorService(workers=1, formula=SPEC, saturate=False) as service:
            blocker = _occupy(service)
            futures = service.submit_many([comp, comp, comp])
            futures[2].cancel()
            report = service.gather(futures)
            blocker.result(timeout=30)
        assert [item.index for item in report.items] == [0, 1, 2]
        assert [item.cancelled for item in report.items] == [False, False, True]
        assert [item.index for item in report.cancelled_items] == [2]
        assert report.errors == []  # cancelled is not failed
        assert len(report.ok_items) == 2
        assert "1 cancelled" in str(report)
