"""Gray-failure tolerance: the exactly-once chain under ambiguous faults.

Three layers make an ambiguous timeout safe to retry, and each is pinned
here in isolation before the chaos matrix prices them together:

1. the worker-side idempotency fence (:class:`RequestExecutor`) refuses
   duplicated/reordered frames without executing and proves drops;
2. the client-side fence classifier (:meth:`Session._fence_slow_call`)
   retries only on that proof, returns merely-slow results, and
   declares unprovable endpoints gray;
3. the service reacts to gray endpoints reversibly — FIFO gap reaping,
   quarantine out of placement, probe-based readmission.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.errors import CancelledError, ServiceError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.retry import RetryPolicy
from repro.service import MonitorFuture, MonitorService
from repro.service.service import QUARANTINE_PROBE_TIMEOUT, QUARANTINE_PROBES
from repro.service.worker import Request, RequestExecutor
from repro.transport import FaultSchedule, FaultyTransport, LocalTransport
from repro.transport.agent import spawn_agent
from repro.transport.frames import (
    CONTROL_ID,
    DROPPED_BEFORE_EXECUTION,
    STALE_REQUEST_PREFIX,
)

SPEC = parse("a U[0,10) b")
EPSILON = 1


class TestIdempotencyFence:
    """Worker-side half of exactly-once: stale ids never execute twice."""

    def test_duplicate_frame_refused_without_executing(self):
        executor = RequestExecutor()
        first = executor.execute(Request(1, "ping", None))
        assert first.error is None
        again = executor.execute(Request(1, "ping", None))
        assert again.error is not None
        assert again.error.startswith(STALE_REQUEST_PREFIX)

    def test_reordered_frame_refused(self):
        executor = RequestExecutor()
        executor.execute(Request(5, "ping", None))
        late = executor.execute(Request(3, "ping", None))
        assert late.error is not None and late.error.startswith(STALE_REQUEST_PREFIX)

    def test_drop_before_arrival_mints_immediate_ack(self):
        # On a lossy link the dropped request's frame may never arrive;
        # the ack must not wait for it.
        executor = RequestExecutor()
        executor.drop(7)
        assert [r.request_id for r in executor.pending_acks] == [7]
        assert executor.pending_acks[0].error == DROPPED_BEFORE_EXECUTION

    def test_late_frame_after_drop_ack_is_consumed_silently(self):
        # The drop already answered id 7: executing the late copy would
        # put a second response for one id on the wire.
        executor = RequestExecutor()
        executor.drop(7)
        executor.pending_acks.clear()
        assert executor.execute(Request(7, "session_open", "garbage")) is None
        # And it never dispatched: a real execution of that hostile
        # payload would have answered with a typed error.
        assert executor.sessions == {}

    def test_parked_ids_are_pruned_once_overtaken(self):
        # A later execution raises the high-water mark past a parked id:
        # the late copy now hits the stale fence instead.  Its second
        # response is harmless — the drop ack already resolved (and
        # removed) the client future, so the stale answer finds nothing.
        executor = RequestExecutor()
        executor.drop(7)
        executor.execute(Request(8, "ping", None))
        late = executor.execute(Request(7, "ping", None))
        assert late is not None and late.error.startswith(STALE_REQUEST_PREFIX)
        assert executor.dropped == set()

    def test_drop_for_already_executed_request_is_discarded(self):
        executor = RequestExecutor()
        executor.execute(Request(1, "ping", None))
        executor.drop(1)
        assert executor.dropped == set()
        assert executor.pending_acks == []

    def test_reserved_ids_cannot_be_smuggled_as_requests(self):
        # AUTH/REGISTRY frames that leak past their handshake phase sit
        # below the high-water mark (-1) by construction.
        executor = RequestExecutor()
        smuggled = executor.execute(Request(-3, "ping", None))
        assert smuggled.error is not None
        assert smuggled.error.startswith(STALE_REQUEST_PREFIX)

    def test_hostile_drop_payload_is_ignored(self):
        executor = RequestExecutor()
        assert executor.ingest(Request(CONTROL_ID, "drop", "not-an-id")) is False
        assert executor.dropped == set()
        assert executor.ingest(Request(CONTROL_ID, "drop", True)) is False
        assert executor.dropped == set()  # bool is not an id either

    def test_retried_advance_to_current_frontier_is_answered_not_reexecuted(self):
        # A lost *response* makes the client retry the advance under a
        # fresh request id, which the connection-level fence cannot
        # catch.  The session layer answers an advance to exactly the
        # current frontier with the verdicts already decided — the same
        # cumulative set the first execution returned — instead of
        # surfacing the in-process "boundary must advance" error.
        executor = RequestExecutor()
        executor.execute(Request(1, "session_open", (1, SPEC, EPSILON, {})))
        executor.execute(
            Request(2, "session_observe", (1, [("p", 1, frozenset({"b"}), None)]))
        )
        first = executor.execute(Request(3, "session_advance", (1, 5)))
        assert first.error is None
        retried = executor.execute(Request(4, "session_advance", (1, 5)))
        assert retried.error is None
        assert retried.payload == first.payload
        # A genuinely stale boundary is still an error, and the stream
        # keeps advancing normally past the duplicate.
        stale = executor.execute(Request(5, "session_advance", (1, 3)))
        assert stale.error is not None and "boundary must advance" in stale.error
        onwards = executor.execute(Request(6, "session_advance", (1, 8)))
        assert onwards.error is None


class TestRecoveryOrphanFence:
    """A recovery restore whose ack is lost may still have executed:
    the possible orphan copy must be fenced before the endpoint is
    reused, or the next restore collides with 'session already open'."""

    def test_lost_restore_ack_fences_the_target(self):
        with MonitorService(workers=2, saturate=False) as service:
            handle = service.open_session(
                SPEC,
                EPSILON,
                checkpoint={"every_events": 1000, "standby": False},
                call_policy=RetryPolicy(attempts=1, timeout=0.3, base_delay=0.0),
            )
            handle.observe("p", 1, {"a"})
            origin = handle._worker
            target = 1 - origin
            real = service._send_session
            # Pin placement to the failover target so the quarantine
            # branch (and its background migration sweep) stays out of
            # the picture — this test is about the restore fence only.
            service._pick_worker = lambda: target

            def lossy(index, op, payload):
                if index == target and op == "session_open":
                    return MonitorFuture()  # executed, ack lost in transit
                return real(index, op, payload)

            service._send_session = lossy
            try:
                with pytest.raises(ServiceError):
                    handle._recover(ServiceError("injected gray failure"))
            finally:
                service._send_session = real
            # The failed restore left a possible orphan on the target:
            # it is fenced (unconfirmed discard) and the session did not
            # move off its origin.
            assert target in handle._stale_copies
            assert handle._worker == origin
            # The next recovery confirms the discard, reopens cleanly,
            # and the stream lands on the target with the fence cleared.
            handle._recover(ServiceError("injected gray failure, round 2"))
            assert handle._worker == target
            assert target not in handle._stale_copies


class TestFenceClassification:
    """Client-side half: what each fence answer proves about executions."""

    @pytest.fixture()
    def session(self):
        with MonitorService(workers=1, saturate=False) as service:
            handle = service.open_session(
                SPEC,
                EPSILON,
                call_policy=RetryPolicy(attempts=2, timeout=0.2, base_delay=0.0),
            )
            yield handle

    def test_dropped_before_execution_means_retry(self, session):
        future = MonitorFuture()
        future.resolve(None, DROPPED_BEFORE_EXECUTION)
        assert session._fence_slow_call(future, "session_advance") == ("retry", None)

    def test_preempted_mid_execution_means_retry(self, session):
        future = MonitorFuture()
        future.resolve(None, "PreemptedError: request 9 dropped by client")
        assert session._fence_slow_call(future, "session_advance") == ("retry", None)

    def test_slow_payload_is_the_result(self, session):
        future = MonitorFuture()
        future.resolve({"verdict": True}, None)
        outcome, value = session._fence_slow_call(future, "session_advance")
        assert outcome == "done" and value == {"verdict": True}

    def test_real_failure_reraises(self, session):
        future = MonitorFuture()
        future.resolve(None, "MonitorError: boundary moved backwards")
        with pytest.raises(Exception, match="boundary moved backwards"):
            session._fence_slow_call(future, "session_advance")

    def test_silence_is_gray(self, session):
        started = time.monotonic()
        outcome, _ = session._fence_slow_call(MonitorFuture(), "session_advance")
        assert outcome == "gray"
        # It waited one full per-attempt timeout for the ack first.
        assert time.monotonic() - started >= 0.2


class TestSlowButAliveExactlyOnce:
    """Acceptance: a stalled-but-alive link never double-executes."""

    def test_stalled_sync_calls_return_their_slow_result(self):
        # Every post-grace frame stalls 0.6s per lane while the
        # per-attempt timeout is 0.9s: each synchronising call times
        # out, fences, and then receives the *original* response during
        # the fence wait — outcome "done", zero resends.
        schedule = FaultSchedule(
            seed="slow-alive", delay=1.0, delay_seconds=0.6, grace=2
        )
        reference = OnlineMonitor(SPEC, epsilon=EPSILON)
        reference.observe("P1", 1, {"a"})
        reference.observe("P1", 2, {"b"})
        expected_advance = reference.advance_to(2)
        expected = reference.finish()
        with MonitorService(
            saturate=False, endpoints=[FaultyTransport(LocalTransport(), schedule)]
        ) as service:
            handle = service.open_session(
                SPEC,
                EPSILON,
                call_policy=RetryPolicy(attempts=3, timeout=0.9, base_delay=0.05),
            )
            handle.observe("P1", 1, {"a"})
            handle.observe("P1", 2, {"b"})
            started = time.monotonic()
            verdicts = handle.advance_to(2)
            elapsed = time.monotonic() - started
            result = handle.finish()
            assert verdicts == expected_advance
            assert result.verdict_counts == expected.verdict_counts
            # The call really did outlive its per-attempt bound (the
            # fence path ran) rather than completing fast and clean.
            assert elapsed >= 0.9
            assert handle.recoveries == 0 and handle.migrations == 0
            assert not any(service.quarantined_endpoints())

    def test_never_healing_partition_goes_gray_and_quarantines(self):
        # One-way c2s partition from frame 2 onwards: the sync call and
        # its fence both vanish, nothing is provable, so the endpoint is
        # declared gray.  With a second live endpoint the service
        # quarantines it instead of failing the pool.
        schedule = FaultSchedule(
            seed="one-way", partition="c2s", partition_start=1, partition_span=None
        )
        with MonitorService(
            saturate=False,
            endpoints=[FaultyTransport(LocalTransport(), schedule), LocalTransport()],
        ) as service:
            handle = service.open_session(
                SPEC,
                EPSILON,
                placement="least_loaded",
                call_policy=RetryPolicy(attempts=2, timeout=0.3, base_delay=0.0),
            )
            if handle.worker_index != 0:
                # least_loaded broke the tie the other way; re-pin.
                handle.migrate(0)
            with pytest.raises(ServiceError, match="gray"):
                handle.advance_to(1)
            assert service.quarantined_endpoints()[0] is True
            # Books settled despite the lost acks: nothing outstanding
            # leaks on the partitioned endpoint.
            deadline = time.monotonic() + 5.0
            while any(service.outstanding()) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not any(service.outstanding())
            # The healthy endpoint still serves new sessions.
            clean = service.open_session(SPEC, EPSILON)
            assert clean.worker_index == 1
            clean.observe("P1", 1, {"b"})
            clean.finish()


class TestOvertakenReaper:
    """A response for id R settles every pending id < R on that worker."""

    def test_overtaken_request_resolves_before_the_overtaking_response(self):
        with MonitorService(workers=1, saturate=False) as service:
            on_response = service._make_on_response(0)
            lost, answered = MonitorFuture(), MonitorFuture()
            with service._lock:
                for future in (lost, answered):
                    rid = next(service._request_ids)
                    future.request_id = rid
                    service._futures[rid] = future
                    service._request_to_worker[rid] = 0
                    service._outstanding[0] += 1
            order: list[str] = []
            lost.add_done_callback(lambda: order.append("lost"))
            answered.add_done_callback(lambda: order.append("answered"))
            from repro.service.worker import Response

            on_response(Response(answered.request_id, "pong", None))
            assert lost.error == MonitorService.OVERTAKEN
            assert answered.result(1.0) == "pong"
            # Gap evidence resolves first so a session's FIFO check
            # already sees the loss when its sync call returns.
            assert order == ["lost", "answered"]
            assert service.outstanding() == [0]

    def test_minted_drop_ack_does_not_reap_queued_neighbours(self):
        # A drop ack is emitted the moment the drop frame is ingested,
        # jumping ahead of earlier requests still queued behind the
        # running one — out of FIFO order, so it proves nothing about
        # them and must not settle their books.
        with MonitorService(workers=1, saturate=False) as service:
            on_response = service._make_on_response(0)
            queued, dropped = MonitorFuture(), MonitorFuture()
            with service._lock:
                for future in (queued, dropped):
                    rid = next(service._request_ids)
                    future.request_id = rid
                    service._futures[rid] = future
                    service._request_to_worker[rid] = 0
                    service._outstanding[0] += 1
            from repro.service.worker import Response

            on_response(Response(dropped.request_id, None, DROPPED_BEFORE_EXECUTION))
            assert not queued.done()  # still queued worker-side, untouched
            assert service.outstanding() == [1]
            with pytest.raises(CancelledError):
                dropped.result(1.0)
            # Settle the books so close() does not wait on the leftover.
            service._abandon_requests([queued])

    def test_confirm_inflight_rejects_unresolved_earlier_batches(self):
        with MonitorService(workers=1, saturate=False) as service:
            handle = service.open_session(SPEC, EPSILON)
            handle._inflight.append(MonitorFuture())  # a batch that never resolved
            with pytest.raises(ServiceError, match="still.*unresolved|unresolved"):
                handle._confirm_inflight("session_advance")

    def test_confirm_inflight_rejects_transit_refused_batches(self):
        with MonitorService(workers=1, saturate=False) as service:
            handle = service.open_session(SPEC, EPSILON)
            refused = MonitorFuture()
            refused.resolve(None, MonitorService.OVERTAKEN)
            handle._inflight.append(refused)
            with pytest.raises(ServiceError, match="refused in transit"):
                handle._confirm_inflight("session_advance")

    def test_confirm_inflight_ignores_monitor_level_rejections(self):
        # The in-process monitor would have refused the same event — not
        # gap evidence, surfaced by the normal _check_inflight pass.
        with MonitorService(workers=1, saturate=False) as service:
            handle = service.open_session(SPEC, EPSILON)
            rejected = MonitorFuture()
            rejected.resolve(None, "MonitorError: event before the frontier")
            handle._inflight.append(rejected)
            handle._confirm_inflight("session_advance")  # no gap claimed
            handle._inflight.clear()


class TestHeartbeatCadence:
    """Sub-second liveness plumbed end-to-end through string endpoints."""

    def test_frozen_agent_detected_at_configured_cadence(self):
        # SIGSTOP freezes the agent with its socket open: no EOF, only
        # silence.  At the default 1 s / 5 s cadence detection takes
        # ≥ 5 s; with the plumbed-through ms-scale knobs it must land
        # well under that.
        popen, host, port = spawn_agent(token="")
        try:
            with MonitorService(
                saturate=False,
                endpoints=[f"tcp://{host}:{port}"],
                token="",
                heartbeat_interval=0.05,
                liveness_timeout=0.3,
            ) as service:
                handle = service.open_session(SPEC, EPSILON)
                handle.observe("P1", 1, {"a"})
                popen.send_signal(signal.SIGSTOP)
                started = time.monotonic()
                deadline = started + 10.0
                while not service.dead_endpoints()[0] and time.monotonic() < deadline:
                    time.sleep(0.02)
                elapsed = time.monotonic() - started
                assert service.dead_endpoints() == [True]
                assert elapsed < 3.0, (
                    f"silence took {elapsed:.1f}s to detect — the ms-scale "
                    f"cadence did not reach the endpoint"
                )
        finally:
            popen.send_signal(signal.SIGCONT)
            popen.kill()
            popen.wait(timeout=10)


class TestQuarantine:
    """Reversible placement exclusion for alive-but-wrong endpoints."""

    def test_quarantine_excludes_from_placement(self):
        with MonitorService(workers=2, saturate=False) as service:
            assert service.quarantine_endpoint(1, reason="test gray") is True
            assert service.quarantined_endpoints() == [False, True]
            for _ in range(8):
                assert service._pick_worker() == 0
            assert all(
                service.open_session(SPEC, EPSILON).worker_index == 0
                for _ in range(4)
            )

    def test_last_live_endpoint_refuses_quarantine(self):
        with MonitorService(workers=2, saturate=False) as service:
            assert service.quarantine_endpoint(0) is True
            assert service.quarantine_endpoint(1) is False
            assert service.quarantined_endpoints() == [True, False]

    def test_sessions_migrate_off_quarantined_endpoint(self):
        with MonitorService(workers=2, saturate=False) as service:
            handles = [service.open_session(SPEC, EPSILON) for _ in range(4)]
            victim = handles[0].worker_index
            pinned = [h for h in handles if h.worker_index == victim]
            assert service.quarantine_endpoint(victim) is True
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(h.worker_index != victim for h in handles):
                    break
                time.sleep(0.05)
            assert all(h.worker_index != victim for h in handles)
            assert all(h.migrations >= 1 for h in pinned)
            for handle in handles:
                handle.observe("P1", 1, {"a"})
                handle.finish()

    def test_probes_readmit_after_consecutive_fast_answers(self):
        with MonitorService(workers=2, saturate=False) as service:
            assert service.quarantine_endpoint(1) is True
            # Drive the liveness tick by hand: each probe is a real ping
            # round-trip; QUARANTINE_PROBES consecutive answers readmit.
            deadline = time.monotonic() + 10.0
            while service.quarantined_endpoints()[1] and time.monotonic() < deadline:
                service._probe_quarantined()
                time.sleep(0.05)
            assert service.quarantined_endpoints() == [False, False]

    def test_slow_probe_resets_the_readmission_streak(self):
        with MonitorService(workers=2, saturate=False) as service:
            assert service.quarantine_endpoint(1) is True
            # Two fast answers...
            for _ in range(40):
                service._probe_quarantined()
                if service._probe_streak.get(1, 0) >= QUARANTINE_PROBES - 1:
                    break
                time.sleep(0.05)
            assert service._probe_streak.get(1, 0) == QUARANTINE_PROBES - 1
            # ...then one probe that outlives the probe timeout:
            # hysteresis restarts the streak from zero.
            stalled = MonitorFuture()
            service._probe_futures[1] = (
                stalled,
                time.monotonic() - QUARANTINE_PROBE_TIMEOUT - 1.0,
            )
            service._probe_quarantined()
            assert service._probe_streak.get(1, 0) == 0
            assert service.quarantined_endpoints()[1] is True
