"""Tests for live session migration (snapshot/restore across endpoints).

The contract: a migrated stream's verdicts are bit-identical to a
never-migrated replay, on both transport backends; a failed hop leaves
the stream usable on its origin endpoint; ordering holds across the hop
(events observed before the migration are in the snapshot, events after
land on the target).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import MonitorError, ServiceError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,40) b")

#: A stream with a mid-point advance: events (process, t, props) fed in
#: observation order, with ``advance_to(BOUNDARY)`` between the halves.
FIRST_HALF = [("P1", 1, "a"), ("P2", 2, "a"), ("P1", 5, "a")]
BOUNDARY = 4
SECOND_HALF = [("P2", 8, "a"), ("P1", 12, "a"), ("P2", 15, "b"), ("P1", 18, ())]


def _reference() -> object:
    monitor = OnlineMonitor(SPEC, epsilon=2)
    for event in FIRST_HALF:
        monitor.observe(*event)
    monitor.advance_to(BOUNDARY)
    for event in SECOND_HALF:
        monitor.observe(*event)
    return monitor.finish()


@pytest.fixture
def tcp_pool():
    """Three worker agents in their own OS processes on localhost."""
    agents = [spawn_agent() for _ in range(3)]
    try:
        yield agents, [f"tcp://{host}:{port}" for _, host, port in agents]
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()


class TestMigrationSemantics:
    def test_migrate_mid_segment_bit_identical(self):
        """The hop lands between an advance and buffered later events —
        frontier, carried residuals, and worker-side buffer all cross."""
        with MonitorService(workers=3) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            session.advance_to(BOUNDARY)
            # Buffer one event worker-side (beyond the frontier) so the
            # snapshot carries a nonempty monitor buffer too.
            session.observe(*SECOND_HALF[0])
            session.poll()  # flushes it to the origin worker
            target = (origin + 1) % 3
            service.migrate(session, target)
            assert session.worker_index == target
            assert session.migrations == 1
            for event in SECOND_HALF[1:]:
                session.observe(*event)
            result = session.finish()
            assert service.outstanding() == [0, 0, 0]
        assert result.verdict_counts == _reference().verdict_counts

    def test_migrate_with_nonempty_client_buffer(self):
        """Client-side buffered events drain to the origin before the
        snapshot — nothing is lost or reordered across the hop."""
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            for event in FIRST_HALF:
                session.observe(*event)  # all below the flush threshold
            service.migrate(session, 1 - session.worker_index)
            session.advance_to(BOUNDARY)
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
            assert service.outstanding() == [0, 0]
        assert result.verdict_counts == _reference().verdict_counts

    def test_double_migrate_and_back(self):
        """A→B→A works: the origin copy is discarded after each hop, so
        returning to a previous endpoint does not collide."""
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            service.migrate(session, 1 - origin)
            session.advance_to(BOUNDARY)
            service.migrate(session, origin)
            assert session.worker_index == origin
            assert session.migrations == 2
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
        assert result.verdict_counts == _reference().verdict_counts

    def test_migrate_to_same_endpoint_is_a_noop(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            service.migrate(session, session.worker_index)
            assert session.migrations == 0
            session.close()

    def test_migrate_by_endpoint_description(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            target = 1 - session.worker_index
            service.migrate(session, service.endpoints()[target])
            assert session.worker_index == target
            assert session.endpoint == service.endpoints()[target]
            session.close()

    def test_migrate_unknown_endpoint_rejected(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            with pytest.raises(MonitorError, match="no endpoint"):
                service.migrate(session, 7)
            with pytest.raises(MonitorError, match="no endpoint"):
                service.migrate(session, "tcp://nowhere:1")
            session.close()

    def test_migrate_finished_session_rejected(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            session.finish()
            with pytest.raises(MonitorError, match="finished"):
                service.migrate(session, 1 - session.worker_index)


class TestMigrationFailure:
    def test_migrate_to_dead_endpoint_leaves_session_usable(self):
        """A dead target fails the hop cleanly; the stream stays on its
        origin endpoint and keeps working."""
        with MonitorService(workers=3) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            target = (origin + 1) % 3
            service._connections[target].kill()
            deadline = time.monotonic() + 15
            while not service.dead_endpoints()[target]:
                assert time.monotonic() < deadline, "kill never detected"
                time.sleep(0.05)
            with pytest.raises(ServiceError):
                service.migrate(session, target)
            assert session.worker_index == origin  # unchanged
            session.advance_to(BOUNDARY)
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
        assert result.verdict_counts == _reference().verdict_counts

    def test_kill_origin_during_migration_raises_cleanly(self):
        """The origin dying while the snapshot is queued behind its
        backlog fails the hop with ServiceError, never a hang."""
        with MonitorService(workers=2, saturate=False) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            session.observe(*FIRST_HALF[0])
            # Park the origin so the snapshot queues behind the sleep,
            # then kill it while the migration is waiting.
            service._send(origin, "sleep", 30.0)
            failure: list[BaseException] = []

            def hop():
                try:
                    service.migrate(session, 1 - origin)
                except BaseException as exc:  # noqa: BLE001 — recorded for assert
                    failure.append(exc)

            mover = threading.Thread(target=hop)
            mover.start()
            time.sleep(0.3)  # let the migration reach its snapshot wait
            service._connections[origin].kill()
            mover.join(timeout=30)
            assert not mover.is_alive(), "migration hung on a dead origin"
            assert failure and isinstance(failure[0], ServiceError)

    def test_unconfirmed_discard_is_fenced_on_hop_back(self):
        """A→B where the origin discard is lost, then B→A: the fence
        must re-issue the discard before restoring, or the hop back
        races a stale, still-open origin copy of the same stream."""
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            real_send = service._send_session
            lost = []

            def flaky_send(worker_index, op, payload):
                if op == "session_close" and worker_index == origin and not lost:
                    lost.append(op)
                    raise ServiceError("injected: discard send failed")
                return real_send(worker_index, op, payload)

            service._send_session = flaky_send
            try:
                service.migrate(session, 1 - origin)
            finally:
                service._send_session = real_send
            assert lost  # the origin discard really was swallowed
            assert origin in session._stale_copies  # remembered as unconfirmed
            session.advance_to(BOUNDARY)
            service.migrate(session, origin)  # fence re-issues the discard
            assert session.worker_index == origin
            assert origin not in session._stale_copies
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
            assert service.outstanding() == [0, 0]
        assert result.verdict_counts == _reference().verdict_counts

    def test_timed_out_restore_does_not_leak_a_target_copy(self):
        """A restore that times out client-side may still execute on the
        target later; the queued cleanup must discard that duplicate so
        a retry of the same hop succeeds instead of colliding."""
        with MonitorService(workers=2, saturate=False) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            target = 1 - origin
            session.observe(*FIRST_HALF[0])
            service._send(target, "sleep", 1.0)  # restore queues behind this
            with pytest.raises(ServiceError, match="did not complete"):
                session.migrate(target, timeout=0.1)
            assert session.worker_index == origin  # hop failed cleanly
            # Once the backlog drains (restore, then the cleanup close,
            # both executed), the same hop must succeed.
            deadline = time.monotonic() + 15
            while True:
                try:
                    session.migrate(target)
                    break
                except ServiceError:
                    assert time.monotonic() < deadline, "retry never succeeded"
                    time.sleep(0.1)
            assert session.worker_index == target
            for event in FIRST_HALF[1:]:
                session.observe(*event)
            session.advance_to(BOUNDARY)
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
        assert result.verdict_counts == _reference().verdict_counts


class TestMigrationOverTcp:
    def test_migrated_tcp_stream_bit_identical(self, tcp_pool):
        """The same hop over sockets: snapshot crosses two agents."""
        _, endpoints = tcp_pool
        with MonitorService(endpoints=endpoints) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            session.advance_to(BOUNDARY)
            service.migrate(session, (origin + 1) % 3)
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
            assert service.outstanding() == [0, 0, 0]
        assert result.verdict_counts == _reference().verdict_counts

    def test_tcp_migrate_to_killed_agent_leaves_session_usable(self, tcp_pool):
        agents, endpoints = tcp_pool
        with MonitorService(endpoints=endpoints) as service:
            session = service.open_session(SPEC, epsilon=2)
            origin = session.worker_index
            for event in FIRST_HALF:
                session.observe(*event)
            target = (origin + 1) % 3
            agents[target][0].kill()
            deadline = time.monotonic() + 15
            while not service.dead_endpoints()[target]:
                assert time.monotonic() < deadline, "agent kill never detected"
                time.sleep(0.05)
            with pytest.raises(ServiceError):
                service.migrate(session, target)
            assert session.worker_index == origin
            session.advance_to(BOUNDARY)
            for event in SECOND_HALF:
                session.observe(*event)
            result = session.finish()
        assert result.verdict_counts == _reference().verdict_counts
