"""Preemption: cancel-mid-segment differential suite.

The contract: preempting a running segment at an arbitrary checkpoint
raises a typed :class:`~repro.errors.PreemptedError` and leaves the
monitor in its pre-call state (the advance buffer rolls back), so
retrying the same call and finishing yields verdicts bit-identical to a
never-interrupted run.  That must hold across both residual engines
(columnar and object paths) and both transports (in-process workers and
TCP agents), and a worker whose running request is dropped must unwind
within one checkpoint interval instead of burning to completion.
"""

from __future__ import annotations

import functools
import random
import threading
import time

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import CancelledError, PreemptedError
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse
from repro.progression.budget import Budget
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("G[0,40) (a -> F[0,6) b)")
EPSILON = 4
BOUNDARY = 8

ENGINES = [
    pytest.param("1", id="columnar"),
    pytest.param("0", id="object"),
]


def _events(seed: int) -> list[tuple[str, int, frozenset[str]]]:
    """A concurrency-heavy stream (three processes, dense overlap)."""
    rng = random.Random(seed)
    events = []
    clocks = {"P1": 0, "P2": 0, "P3": 0}
    for _ in range(8):
        for process in ("P1", "P2", "P3"):
            clocks[process] += rng.randint(0, 2)
            props = frozenset(p for p in ("a", "b") if rng.random() < 0.4)
            events.append((process, clocks[process], props))
    return events


@functools.lru_cache(maxsize=None)
def _reference(seed: int) -> "object":
    """The same stream, never interrupted."""
    monitor = OnlineMonitor(SPEC, EPSILON)
    for process, t, props in _events(seed):
        monitor.observe(process, t, props)
    monitor.advance_to(BOUNDARY)
    return monitor.finish()


def _counting_cancel_budget(after_checkpoints: int) -> Budget:
    """A budget that cancels itself at its Nth checkpoint — deterministic
    preemption at an arbitrary engine-chosen program point."""
    budget = Budget(check_every=1)
    seen = [0]

    def hook() -> None:
        seen[0] += 1
        if seen[0] >= after_checkpoints:
            budget.cancel(f"scripted cancel at checkpoint {after_checkpoints}")

    budget.poll_hook = hook
    return budget


class TestEngineLevelDifferential:
    """Random-checkpoint preemption, columnar vs object engines."""

    @pytest.mark.parametrize("columnar", ENGINES)
    def test_preempt_retry_is_bit_identical(self, columnar, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", columnar)
        rng = random.Random(20260808)
        preempted = 0
        for seed in range(4):
            monitor = OnlineMonitor(SPEC, EPSILON)
            for process, t, props in _events(seed):
                monitor.observe(process, t, props)
            budget = _counting_cancel_budget(rng.randint(1, 60))
            try:
                monitor.advance_to(BOUNDARY, budget=budget)
            except PreemptedError:
                preempted += 1
                monitor.advance_to(BOUNDARY)  # post-restore retry
            result = monitor.finish()
            reference = _reference(seed)
            assert result.verdict_counts == reference.verdict_counts, f"seed {seed}"
            assert result.verdicts == reference.verdicts
        # The suite is vacuous if the scripted cancels never fire.
        assert preempted >= 2

    @pytest.mark.parametrize("columnar", ENGINES)
    def test_preempted_run_reports_the_flag(self, columnar, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", columnar)
        computation = DistributedComputation.from_event_lists(
            3,
            {
                "P1": [(i, "a" if i % 2 else ()) for i in range(10)],
                "P2": [(i, "b" if i % 3 else ()) for i in range(10)],
                "P3": [(i, ()) for i in range(10)],
            },
        )
        engine = SmtMonitor(SPEC, saturate=False)
        with pytest.raises(PreemptedError, match="preempted after"):
            engine.run(computation, budget=_counting_cancel_budget(5))

    def test_preempted_is_distinct_from_truncated(self):
        # max_traces is the truncation facet: it never raises, it flags.
        computation = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        result = SmtMonitor(
            SPEC, saturate=False, max_traces_per_segment=3
        ).run(computation)
        assert result.truncated
        assert not result.preempted


def _interrupted_session_run(service: MonitorService, seed: int):
    """Feed a session, interrupt a running advance, retry, finish."""
    session = service.open_session(SPEC, epsilon=EPSILON)
    for process, t, props in _events(seed):
        session.observe(process, t, props)
    outcome: dict = {}

    def advance() -> None:
        try:
            session.advance_to(BOUNDARY)
            outcome["preempted"] = False
        except PreemptedError:
            outcome["preempted"] = True

    thread = threading.Thread(target=advance)
    thread.start()
    time.sleep(0.3)
    session.interrupt()
    thread.join(timeout=60)
    assert not thread.is_alive(), "advance neither finished nor preempted"
    if outcome["preempted"]:
        session.advance_to(BOUNDARY)  # post-restore retry
    result = session.finish()
    return result, outcome["preempted"]


class TestTransportLevelDifferential:
    """The same contract through the service layer, both transports."""

    def test_local_interrupt_is_bit_identical(self):
        preempted_any = False
        with MonitorService(workers=1) as service:
            for seed in range(3):
                result, preempted = _interrupted_session_run(service, seed)
                preempted_any = preempted_any or preempted
                reference = _reference(seed)
                assert result.verdict_counts == reference.verdict_counts
                assert result.verdicts == reference.verdicts
        assert preempted_any, "no interrupt ever landed mid-segment"

    def test_tcp_interrupt_is_bit_identical(self):
        popen, host, port = spawn_agent()
        try:
            preempted_any = False
            with MonitorService(endpoints=[f"tcp://{host}:{port}"]) as service:
                for seed in range(3):
                    result, preempted = _interrupted_session_run(service, seed)
                    preempted_any = preempted_any or preempted
                    reference = _reference(seed)
                    assert result.verdict_counts == reference.verdict_counts
                    assert result.verdicts == reference.verdicts
            assert preempted_any, "no interrupt ever landed mid-segment"
        finally:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()

    def test_interrupt_without_running_call_refuses(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(SPEC, epsilon=EPSILON)
            assert session.interrupt() is False
            session.observe("P1", 1, frozenset({"a"}))
            assert session.interrupt() is False  # observes are async
            session.close()

    def test_session_survives_interrupt(self):
        """An interrupted session keeps its buffered events and stays
        usable — preemption is not a lifecycle event."""
        with MonitorService(workers=1) as service:
            session = service.open_session(SPEC, epsilon=EPSILON)
            for process, t, props in _events(0):
                session.observe(process, t, props)
            done = threading.Event()

            def advance() -> None:
                try:
                    session.advance_to(BOUNDARY)
                except PreemptedError:
                    pass
                finally:
                    done.set()

            threading.Thread(target=advance).start()
            time.sleep(0.3)
            session.interrupt()
            assert done.wait(timeout=60)
            status = session.poll()
            assert status.pending == len(_events(0))
            assert session.recoveries == 0  # no restore-and-replay fired
            session.close()


class TestRunningDropUnwinds:
    def test_cancelled_monitor_op_frees_the_worker(self):
        """Dropping the *running* request must cancel its budget: the
        engine unwinds within a checkpoint interval and the worker is
        free for new work, instead of burning the full enumeration."""
        big = DistributedComputation.from_event_lists(
            3,
            {
                "P1": [(i, "a" if i % 2 else ()) for i in range(12)],
                "P2": [(i, "b" if i % 3 else ()) for i in range(12)],
                "P3": [(i, ()) for i in range(12)],
            },
        )
        small = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a")], "P2": [(2, "b")]}
        )
        with MonitorService(workers=1, formula=SPEC, epsilon=6) as service:
            future = service.submit(big)
            time.sleep(0.3)
            assert future.cancel() is True
            with pytest.raises(CancelledError):
                future.result(timeout=30)
            started = time.monotonic()
            item = service.submit(small).result(timeout=30)
            assert item.error is None
            assert time.monotonic() - started < 10.0
