"""Tests for durable sessions and batch work stealing.

Three layers:

* unit — :class:`CheckpointConfig` validation / resolution and the
  :class:`ReplayJournal` truncation + replay protocol, no service;
* session durability — checkpoint cadence, restore-and-replay recovery
  (cold, pre-first-checkpoint, and warm-standby promote paths) on a
  live local pool;
* work stealing — queued batch requests on a dead or overloaded
  endpoint re-execute exactly once on live endpoints, with the
  maybe-started idempotency guard.
"""

from __future__ import annotations

import time

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError, ServiceError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import CheckpointConfig, MonitorService, ReplayJournal
from repro.service.durability import resolve_checkpoint
from repro.service.rebalance import Rebalancer
from repro.service.tasks import MonitorTask

SPEC = parse("F[0,30) b")

EVENT = ("P1", 3, frozenset({"a"}), None)


# -- unit: config ---------------------------------------------------------------------


class TestCheckpointConfig:
    def test_defaults_are_event_triggered(self):
        config = CheckpointConfig()
        assert config.every_events == 64
        assert config.every_seconds is None
        assert config.standby is False

    def test_needs_at_least_one_interval(self):
        with pytest.raises(MonitorError, match="needs an interval"):
            CheckpointConfig(every_events=None, every_seconds=None)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"every_events": 0}, "every_events"),
            ({"every_seconds": 0.0}, "every_seconds"),
            ({"standby": "warm"}, "standby"),
            ({"max_recovery_attempts": 0}, "max_recovery_attempts"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(MonitorError, match=match):
            CheckpointConfig(**kwargs)

    def test_resolve_maps_the_spec_forms(self):
        assert resolve_checkpoint(None) is None
        assert resolve_checkpoint(False) is None
        assert resolve_checkpoint(True) == CheckpointConfig()
        config = CheckpointConfig(every_events=8)
        assert resolve_checkpoint(config) is config
        assert resolve_checkpoint({"every_events": 8}) == config

    def test_resolve_rejects_junk(self):
        with pytest.raises(MonitorError, match="bad checkpoint spec"):
            resolve_checkpoint({"cadence": 8})
        with pytest.raises(MonitorError, match="checkpoint must be"):
            resolve_checkpoint(42)


# -- unit: journal --------------------------------------------------------------------


class TestReplayJournal:
    def test_mark_and_truncation(self):
        journal = ReplayJournal()
        journal.record_event(EVENT)
        journal.record_advance(10)
        mark = journal.mark()
        assert mark == 2
        journal.record_event(EVENT)  # after the snapshot request: survives
        journal.apply_checkpoint({"fake": True}, mark)
        assert len(journal) == 1
        assert journal.snapshot == {"fake": True}
        assert journal.checkpoints_applied == 1

    def test_replay_ops_batches_consecutive_observes(self):
        journal = ReplayJournal()
        journal.record_event(EVENT)
        journal.record_event(EVENT)
        journal.record_advance(10)
        journal.record_event(EVENT)
        ops = list(journal.replay_ops())
        assert ops == [
            ("observe", [EVENT, EVENT]),
            ("advance", 10),
            ("observe", [EVENT]),
        ]

    def test_clear_releases_state_but_keeps_counters(self):
        journal = ReplayJournal()
        journal.record_event(EVENT)
        journal.apply_checkpoint({"fake": True}, 1)
        journal.clear()
        assert len(journal) == 0
        assert journal.snapshot is None
        assert journal.checkpoints_applied == 1


# -- session durability ---------------------------------------------------------------


def _feed(session, start: int, stop: int) -> None:
    for t in range(start, stop):
        session.observe("P1", t, {"b"} if t % 4 == 0 else {"a"})


class TestCheckpointCadence:
    def test_event_cadence_applies_checkpoints_at_sync_points(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 4}
            )
            assert session.durable
            _feed(session, 1, 7)
            session.advance_to(6)  # flush 6 events -> snapshot requested
            assert session.checkpoints == 0  # not yet polled back
            _feed(session, 7, 13)
            session.advance_to(12)  # poll adopts the resolved snapshot
            assert session.checkpoints >= 1
            assert session.journal_length < 14  # truncated behind the mark
            session.finish()

    def test_non_durable_session_keeps_no_journal(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(SPEC, epsilon=2)
            assert not session.durable
            assert session.checkpoints == 0
            _feed(session, 1, 5)
            session.advance_to(4)
            assert session.journal_length == 0
            session.finish()

    def test_checkpoint_now_forces_and_waits(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 10_000}
            )
            _feed(session, 1, 4)
            assert session.checkpoint_now()
            assert session.checkpoints == 1
            assert session.journal_length == 0
            session.finish()

    def test_failed_snapshot_send_retries_at_next_sync_point(self):
        """A snapshot request that cannot be sent leaves the cadence
        counters untouched: the checkpoint stays due and the next sync
        point retries, instead of the replay window growing by a full
        extra interval."""
        with MonitorService(workers=1) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 4}
            )
            real = service._send_session
            failed = []

            def flaky(worker_index, op, payload):
                if op == "session_snapshot" and not failed:
                    failed.append(op)
                    raise ServiceError("transient send failure")
                return real(worker_index, op, payload)

            service._send_session = flaky
            try:
                _feed(session, 1, 7)
                session.advance_to(6)  # snapshot send fails; still due
            finally:
                service._send_session = real
            assert failed
            session.poll()  # retried here, not an interval later
            session.poll()  # adopt the resolved snapshot
            assert session.checkpoints >= 1
            session.finish()

    def test_service_level_default_is_inherited_and_overridable(self):
        with MonitorService(workers=1, checkpoint={"every_events": 8}) as service:
            durable = service.open_session(SPEC, epsilon=2)
            plain = service.open_session(SPEC, epsilon=2, checkpoint=False)
            assert durable.durable
            assert not plain.durable
            durable.close()
            plain.close()


def _reference(start: int, stop: int, boundaries: list[int]) -> dict:
    monitor = OnlineMonitor(SPEC, epsilon=2)
    for t in range(start, stop):
        monitor.observe("P1", t, {"b"} if t % 4 == 0 else {"a"})
        if t in boundaries:
            monitor.advance_to(t)
    return monitor.finish().verdict_counts


class TestRecovery:
    def test_kill_before_first_checkpoint_replays_from_open(self):
        """Death before any checkpoint: recovery is a fresh session_open
        plus a full journal replay."""
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 10_000}
            )
            _feed(session, 1, 6)
            service._connections[session.worker_index].kill()
            _feed(session, 6, 10)
            session.advance_to(8)
            result = session.finish()
            assert session.recoveries == 1
            assert session.checkpoints == 0
            assert result.verdict_counts == _reference(1, 10, [8])

    def test_recovery_attempts_are_bounded(self):
        """With every endpoint dead, the ServiceError surfaces instead of
        retrying forever."""
        with MonitorService(workers=2) as service:
            session = service.open_session(SPEC, epsilon=2, checkpoint=True)
            _feed(session, 1, 4)
            for connection in service._connections:
                connection.kill()
            deadline = time.monotonic() + 15
            while not all(service.dead_endpoints()):
                assert time.monotonic() < deadline, "kill never detected"
                time.sleep(0.05)
            with pytest.raises(ServiceError):
                session.advance_to(3)

    def test_transient_send_failure_does_not_lose_buffered_events(self):
        """A send-side ServiceError with the endpoint still live resolves
        to a recovery whose only pick is the origin itself; that path
        must leave the client buffer intact so the retried flush
        delivers the events instead of vacuously succeeding on an empty
        buffer (stranding them in the journal, to be truncated away by
        the next checkpoint)."""
        with MonitorService(workers=1) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 4}
            )
            _feed(session, 1, 6)
            real = service._send_session
            failed = []

            def flaky(worker_index, op, payload):
                if op == "session_observe" and not failed:
                    failed.append(op)
                    raise ServiceError("transient send failure")
                return real(worker_index, op, payload)

            service._send_session = flaky
            try:
                session.advance_to(5)  # first flush fails, retry must deliver
            finally:
                service._send_session = real
            assert failed
            result = session.finish()
            assert session.recoveries == 0  # no restore happened, just a retry
            assert result.verdict_counts == _reference(1, 6, [5])

    def test_replayed_rejections_do_not_resurface(self):
        """A client-rejected observe surfaces exactly once; after a
        recovery its journaled twin is swallowed during replay."""
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2, checkpoint={"every_events": 10_000}
            )
            _feed(session, 4, 8)
            session.advance_to(6)
            session.observe("P1", 2, {"a"})  # behind the frontier
            with pytest.raises(MonitorError, match="rejected"):
                session.poll()
            service._connections[session.worker_index].kill()
            _feed(session, 8, 11)
            result = session.finish()  # replay must not re-raise the rejection
            assert session.recoveries == 1
            assert result.verdict_counts == _reference(4, 11, [6])


class TestWarmStandby:
    def test_standby_replica_tracks_checkpoints(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": True},
            )
            _feed(session, 1, 7)
            session.advance_to(6)
            _feed(session, 7, 13)
            session.advance_to(12)
            assert session.checkpoint_now()  # settles the store ack too
            assert session.checkpoints >= 1
            assert session.standby_worker is not None
            assert session.standby_worker != session.worker_index
            session.finish()

    def test_replica_commit_is_ack_gated(self):
        """The replica endpoint is recorded only once the worker acks
        the store — an in-flight push is never trusted for failover."""
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": True},
            )
            _feed(session, 1, 7)
            session.advance_to(6)
            _feed(session, 7, 13)
            session.advance_to(12)  # applies a checkpoint, starts the push
            assert session.standby_worker is None  # ack not yet harvested
            assert session.checkpoint_now()
            assert session.standby_worker is not None
            session.finish()

    def test_failover_promotes_the_standby(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": True},
            )
            _feed(session, 1, 7)
            session.advance_to(6)
            _feed(session, 7, 13)
            session.advance_to(12)
            assert session.checkpoint_now()  # applied + acked replica
            standby = session.standby_worker
            assert standby is not None
            service._connections[session.worker_index].kill()
            _feed(session, 13, 16)
            result = session.finish()
            assert session.recoveries == 1
            assert session.worker_index == standby  # promoted, not restored
            assert result.verdict_counts == _reference(1, 16, [6, 12])

    def test_hot_mode_replicates_only_marked_sessions(self):
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": "hot"},
            )
            _feed(session, 1, 7)
            session.advance_to(6)
            _feed(session, 7, 13)
            session.advance_to(12)
            assert session.standby_worker is None  # cold: no replica
            session.mark_hot()
            _feed(session, 13, 19)
            session.advance_to(18)
            session.checkpoint_now()
            assert session.standby_worker is not None
            session.finish()

    def test_mark_cold_retires_the_replica(self):
        """A ``standby="hot"`` stream marked cold drops its replica at
        the next checkpoint instead of letting it freeze: the journal
        keeps truncating, so promoting the frozen blob later would
        silently lose every event since — recovery must take the cold
        restore path, bit-identically."""
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": "hot"},
            )
            session.mark_hot()
            _feed(session, 1, 7)
            session.advance_to(6)
            session.checkpoint_now()
            assert session.standby_worker is not None
            session.mark_cold()
            _feed(session, 7, 13)
            session.advance_to(12)
            session.checkpoint_now()  # journal truncates; replica retired
            assert session.standby_worker is None
            service._connections[session.worker_index].kill()
            _feed(session, 13, 16)
            result = session.finish()
            assert session.recoveries == 1
            assert result.verdict_counts == _reference(1, 16, [6, 12])

    def test_push_skips_endpoints_with_unconfirmed_discards(self):
        """An endpoint that may still hold a stale live copy of this
        session (a migration discard that was never confirmed) is not a
        standby candidate; with no other peer, the stream simply keeps
        no replica."""
        with MonitorService(workers=2) as service:
            session = service.open_session(
                SPEC, epsilon=2,
                checkpoint={"every_events": 4, "standby": True},
            )
            other = 1 - session.worker_index
            session._stale_copies[other] = None  # unconfirmed discard
            _feed(session, 1, 7)
            session.advance_to(6)
            session.checkpoint_now()
            assert session.checkpoints >= 1
            assert session.standby_worker is None
            session.finish()

    def test_promote_rejects_a_stale_replica_blob(self):
        """Worker-side sequence guard: a standby blob whose checkpoint
        sequence does not match the promote's expectation is rejected
        (and discarded) instead of rehydrated with history missing."""
        from repro.service.worker import _dispatch
        from repro.transport.frames import PROMOTE_SESSION, STANDBY_SESSION

        snapshot = OnlineMonitor(SPEC, epsilon=2).snapshot()
        sessions: dict = {}
        standby: dict = {}
        _dispatch(STANDBY_SESSION, (7, 3, snapshot), sessions, standby)
        with pytest.raises(MonitorError, match="stale"):
            _dispatch(PROMOTE_SESSION, (7, 5), sessions, standby)
        assert 7 not in standby  # a stale blob has no future use
        _dispatch(STANDBY_SESSION, (7, 5, snapshot), sessions, standby)
        assert _dispatch(PROMOTE_SESSION, (7, 5), sessions, standby) == 7
        assert 7 in sessions


# -- work stealing --------------------------------------------------------------------


def _task(index: int) -> MonitorTask:
    computation = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    return MonitorTask(
        index=index,
        kind="auto",
        formula=parse("a U[0,6) b"),
        kwargs={"saturate": False},
        computation=computation,
    )


class TestDeadEndpointStealing:
    def test_queued_batch_work_moves_to_live_endpoints(self):
        """Requests queued behind a parked one on a dead endpoint are
        re-executed exactly once on the survivor; the parked request (the
        only one that may have started) fails."""
        with MonitorService(workers=2) as service:
            pids = service.worker_pids()
            parked = service._send(0, "sleep", 30.0)
            queued = [service._send(0, "monitor", _task(i)) for i in range(3)]
            service._connections[0].kill()
            items = [future.result(20) for future in queued]
            assert [item.ok for item in items] == [True] * 3
            assert {item.worker for item in items} == {pids[1]}  # re-executed
            assert service.steals == 3
            with pytest.raises(ServiceError, match="died"):
                parked.result(20)
            deadline = time.monotonic() + 10
            while service.outstanding() != [0, 0]:
                assert time.monotonic() < deadline
                time.sleep(0.05)

    def test_maybe_started_request_fails_instead_of_double_running(self):
        """The lowest outstanding id on a dead endpoint may have begun
        executing — the idempotency guard fails it rather than re-running."""
        with MonitorService(workers=2) as service:
            pids = service.worker_pids()
            first = service._send(0, "monitor", _task(0))
            second = service._send(0, "monitor", _task(1))
            service._connections[0].kill()
            with pytest.raises(ServiceError, match="died"):
                first.result(20)
            item = second.result(20)
            assert item.ok and item.worker == pids[1]

    def test_no_live_endpoint_fails_the_queue(self):
        with MonitorService(workers=1) as service:
            parked = service._send(0, "sleep", 30.0)
            queued = service._send(0, "monitor", _task(0))
            service._connections[0].kill()
            with pytest.raises(ServiceError, match="died"):
                queued.result(20)
            with pytest.raises(ServiceError, match="died"):
                parked.result(20)


class TestLiveStealing:
    def test_steal_queued_moves_unstarted_work_exactly_once(self):
        with MonitorService(workers=2) as service:
            pids = service.worker_pids()
            parked = service._send(0, "sleep", 2.0)
            queued = [service._send(0, "monitor", _task(i)) for i in range(3)]
            initiated = service.steal_queued(0)
            assert initiated == 3
            items = [future.result(20) for future in queued]
            assert [item.ok for item in items] == [True] * 3
            assert {item.worker for item in items} == {pids[1]}
            assert parked.result(20) == 2.0  # the executing request is untouched
            assert service.steals == 3

    def test_steal_race_lost_still_runs_exactly_once(self):
        """Stealing from an endpoint that already executed the request:
        the drop loses and the original response stands."""
        with MonitorService(workers=2) as service:
            pids = service.worker_pids()
            future = service._send(0, "monitor", _task(0))
            item = future.result(20)  # executed before any steal
            assert service.steal_queued(0) == 0  # nothing left to steal
            assert item.ok and item.worker == pids[0]
            assert service.steals == 0

    def test_rebalancer_steals_from_persistently_overloaded_endpoint(self):
        with MonitorService(workers=2) as service:
            rebalancer = Rebalancer(
                service,
                policy=lambda view: [],
                steal_threshold=2,
                steal_patience=2,
            )
            service._send(0, "sleep", 2.0)
            queued = [service._send(0, "monitor", _task(i)) for i in range(3)]
            assert rebalancer.run_cycle() == []  # patience: streak of 1
            assert rebalancer.stats.steals == 0
            rebalancer.run_cycle()  # streak of 2 -> steal
            assert rebalancer.stats.steals == 3
            items = [future.result(20) for future in queued]
            assert all(item.ok for item in items)

    def test_steal_threshold_knob_requires_rebalance_policy(self):
        with pytest.raises(MonitorError, match="rebalance"):
            MonitorService(workers=1, rebalance_steal_threshold=2)
