"""Tests for live rebalancing (policies + Rebalancer + skew acceptance).

The acceptance bar: a skewed workload (1 hot stream at 10× the event
rate of 15 cold ones over 3 endpoints) produces bit-identical verdicts
with rebalancing enabled vs disabled — including a forced mid-stream
migration — and the outstanding counters return to all-zeros once each
workload drains.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import pytest

from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService, Rebalancer
from repro.service.rebalance import (
    PoolView,
    periodic_policy,
    resolve_policy,
    threshold_policy,
)
from repro.transport.agent import spawn_agent

HOT_SPEC = parse("a U[0,4000) b")
COLD_SPEC = parse("F[0,4000) b")


# -- policy unit tests (no service, fake sessions) -----------------------------------


@dataclass
class FakeSession:
    session_id: int
    worker_index: int
    finished: bool = False
    hops: list[int] = field(default_factory=list)

    def migrate(self, target: int) -> None:
        self.hops.append(target)
        self.worker_index = target


def _view(outstanding, dead, sessions, rates) -> PoolView:
    return PoolView(outstanding=outstanding, dead=dead, sessions=sessions, rates=rates)


class TestPolicies:
    def test_threshold_policy_quiet_pool_never_migrates(self):
        sessions = [FakeSession(0, 0), FakeSession(1, 1)]
        view = _view([1, 0], [False, False], sessions, {0: 5.0, 1: 5.0})
        assert threshold_policy(threshold=2)(view) == []

    def test_threshold_policy_moves_hottest_off_deep_queue(self):
        hot, cold = FakeSession(0, 0), FakeSession(1, 0)
        view = _view([5, 0], [False, False], [hot, cold], {0: 10.0, 1: 1.0})
        assert threshold_policy(threshold=2)(view) == [(hot, 1)]

    def test_periodic_policy_isolates_hot_session(self):
        hot, cold = FakeSession(0, 0), FakeSession(1, 0)
        view = _view([0, 0], [False, False], [hot, cold], {0: 10.0, 1: 1.0})
        assert periodic_policy()(view) == [(hot, 1)]

    def test_periodic_policy_lone_hot_session_stays_put(self):
        """A hot stream alone on its endpoint is already isolated: moving
        it would just swap the imbalance forever (the ping-pong trap)."""
        hot, cold = FakeSession(0, 0), FakeSession(1, 1)
        view = _view([0, 0], [False, False], [hot, cold], {0: 10.0, 1: 0.1})
        assert periodic_policy()(view) == []

    def test_policies_never_target_dead_endpoints(self):
        hot, cold = FakeSession(0, 0), FakeSession(1, 0)
        view = _view([5, 0, 0], [False, False, True], [hot, cold], {0: 10.0, 1: 1.0})
        for policy in (threshold_policy(threshold=2), periodic_policy()):
            for _, target in policy(view):
                assert target == 1  # endpoint 2 is dead

    def test_resolve_policy_accepts_callables_and_rejects_unknowns(self):
        sentinel = lambda view: []  # noqa: E731
        assert resolve_policy(sentinel) is sentinel
        with pytest.raises(MonitorError, match="unknown rebalance policy"):
            resolve_policy("round-robin")


class TestRebalancerCycles:
    def test_run_cycle_isolates_hot_session_deterministically(self):
        """Driven by explicit cycles (no background thread): the hot
        stream hops off the endpoint it shares with a cold one."""
        with MonitorService(workers=2) as service:
            hot = service.open_session(HOT_SPEC, epsilon=2, key="pin")
            cold = service.open_session(COLD_SPEC, epsilon=2, key="pin")
            assert hot.worker_index == cold.worker_index
            rebalancer = Rebalancer(service, policy="periodic", interval=0.01)
            for t in range(1, 40):
                hot.observe("P1", t, "a")
            hot.poll()  # flush: events count toward the heat signal on arrival
            moved = rebalancer.run_cycle()
            assert [m.session_id for m in moved] == [hot.session_id]
            assert hot.worker_index != cold.worker_index
            # cooldown: an immediate identical signal does not bounce it back
            for t in range(40, 80):
                hot.observe("P1", t, "a")
            hot.poll()
            assert rebalancer.run_cycle() == []
            hot.close()
            cold.close()
            assert service.outstanding() == [0, 0]

    def test_service_rebalance_knob_starts_and_stops_the_thread(self):
        with MonitorService(workers=2, rebalance="threshold") as service:
            assert service.rebalancer is not None
            assert service.rebalancer.running
            rebalancer = service.rebalancer
        assert not rebalancer.running

    def test_rebalance_knobs_without_policy_rejected(self):
        with pytest.raises(MonitorError, match="rebalance"):
            MonitorService(workers=1, rebalance_interval=0.5)

    def test_bad_rebalance_arguments_rejected_before_pool_start(self):
        """A typo'd policy or bad interval must fail fast, not after a
        full pool spawn + teardown."""
        with pytest.raises(MonitorError, match="unknown rebalance policy"):
            MonitorService(workers=1, rebalance="round-robin")
        with pytest.raises(MonitorError, match="interval must be > 0"):
            MonitorService(workers=1, rebalance="periodic", rebalance_interval=0)


# -- skew acceptance -----------------------------------------------------------------

COLD_STREAMS = 15
HOT_RATE_MULTIPLIER = 10
COLD_EVENTS = 8


def _skewed_streams() -> dict[int, list[tuple[str, int, frozenset[str]]]]:
    """Stream 0 is hot (10× the events of each cold stream), 1..15 cold."""
    streams: dict[int, list[tuple[str, int, frozenset[str]]]] = {}
    for seed in range(COLD_STREAMS + 1):
        rng = random.Random(seed)
        count = COLD_EVENTS * (HOT_RATE_MULTIPLIER if seed == 0 else 1)
        events = []
        clocks = {"P1": rng.randint(0, 2), "P2": rng.randint(0, 2)}
        for _ in range(count):
            process = rng.choice(("P1", "P2"))
            clocks[process] += rng.randint(1, 3)
            props = frozenset(p for p in ("a", "b") if rng.random() < 0.4)
            events.append((process, clocks[process], props))
        # Observation order = timestamp order (per-process clocks stay
        # monotone), so the windowed driver feeds strictly below each
        # advance boundary.
        events.sort(key=lambda event: event[1])
        streams[seed] = events
    return streams


def _drive_skewed(service: MonitorService, force_migration: bool) -> list:
    """Feed the skewed mix interleaved; optionally force one mid-stream hop."""
    streams = _skewed_streams()
    sessions = {
        seed: service.open_session(
            HOT_SPEC if seed == 0 else COLD_SPEC, epsilon=2
        )
        for seed in streams
    }
    horizon = max(t for events in streams.values() for _, t, _ in events)
    cursors = {seed: 0 for seed in streams}
    forced = False
    for boundary in range(4, horizon + 5, 4):
        for seed, events in streams.items():
            session = sessions[seed]
            cursor = cursors[seed]
            while cursor < len(events) and events[cursor][1] < boundary:
                session.observe(*events[cursor])
                cursor += 1
            cursors[seed] = cursor
            session.advance_to(boundary)
        if force_migration and not forced and boundary >= horizon // 2:
            hot = sessions[0]
            live = [
                index
                for index, dead in enumerate(service.dead_endpoints())
                if not dead and index != hot.worker_index
            ]
            service.migrate(hot, live[0])
            forced = True
    results = [sessions[seed].finish() for seed in sorted(sessions)]
    if force_migration:
        assert sessions[0].migrations >= 1
    return [result.verdict_counts for result in results]


class TestSkewAcceptance:
    def test_skewed_feed_bit_identical_with_rebalancing_local(self):
        """Acceptance: 1 hot @ 10× + 15 cold over 3 local endpoints,
        rebalancing (periodic policy + one forced hop) vs frozen
        placement — identical verdicts, counters all-zero after drain."""
        with MonitorService(workers=3) as service:
            baseline = _drive_skewed(service, force_migration=False)
            assert service.outstanding() == [0, 0, 0]
        with MonitorService(
            workers=3, rebalance="periodic", rebalance_interval=0.05
        ) as service:
            rebalanced = _drive_skewed(service, force_migration=True)
            assert service.outstanding() == [0, 0, 0]
        assert rebalanced == baseline

    def test_skewed_feed_bit_identical_with_rebalancing_tcp(self):
        """The same acceptance bar over 3 TCP worker agents."""
        agents = [spawn_agent() for _ in range(3)]
        endpoints = [f"tcp://{host}:{port}" for _, host, port in agents]
        try:
            with MonitorService(endpoints=endpoints) as service:
                baseline = _drive_skewed(service, force_migration=False)
                assert service.outstanding() == [0, 0, 0]
            with MonitorService(
                endpoints=endpoints, rebalance="periodic", rebalance_interval=0.05
            ) as service:
                rebalanced = _drive_skewed(service, force_migration=True)
                assert service.outstanding() == [0, 0, 0]
        finally:
            for popen, _, _ in agents:
                popen.kill()
                popen.wait(timeout=10)
                popen.stdout.close()
        assert rebalanced == baseline

    def test_skewed_feed_matches_inprocess_replay(self):
        """Ground truth: the migrated service streams equal plain
        OnlineMonitor replays of the same feeds."""
        streams = _skewed_streams()
        expected = []
        for seed in sorted(streams):
            monitor = OnlineMonitor(
                HOT_SPEC if seed == 0 else COLD_SPEC, epsilon=2
            )
            horizon = max(t for _, t, _ in streams[seed])
            cursor = 0
            for boundary in range(4, horizon + 5, 4):
                while cursor < len(streams[seed]) and streams[seed][cursor][1] < boundary:
                    monitor.observe(*streams[seed][cursor])
                    cursor += 1
                monitor.advance_to(boundary)
            expected.append(monitor.finish().verdict_counts)
        with MonitorService(workers=3) as service:
            got = _drive_skewed(service, force_migration=True)
        assert got == expected


class TestOutstandingInvariant:
    def test_outstanding_invariant(self):
        """After every mixed workload drains, the per-endpoint counters
        are all zero — a leak would permanently skew ``least_loaded``
        placement and every rebalancing decision built on it."""
        from repro.distributed.computation import DistributedComputation

        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        spec = parse("a U[0,6) b")
        with MonitorService(workers=3, formula=spec, saturate=False) as service:
            # batch traffic, including cancellations racing a parked worker
            blocker = service._send(0, "sleep", 0.4)
            futures = service.submit_many([comp] * 6)
            futures[1].cancel()
            futures[4].cancel()
            service.gather(futures)
            blocker.result(timeout=30)
            # session traffic: open/feed/migrate/finish/close
            session = service.open_session(spec, epsilon=2)
            session.observe("P1", 1, "a")
            session.observe("P2", 2, "a")
            service.migrate(session, (session.worker_index + 1) % 3)
            session.observe("P1", 4, ())
            session.observe("P2", 5, "b")
            session.finish()
            discarded = service.open_session(spec, epsilon=2)
            discarded.observe("P1", 1, "a")
            discarded.close()
            deadline = time.monotonic() + 15
            while any(service.outstanding()) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.outstanding() == [0, 0, 0]

    def test_outstanding_zeroed_for_dead_workers(self):
        """A worker killed with requests in flight must not leave its
        counter stuck: reaping settles (and force-zeroes) it."""
        with MonitorService(workers=2, saturate=False) as service:
            service._send(0, "sleep", 30.0)  # parked forever
            service._connections[0].kill()
            deadline = time.monotonic() + 15
            while not service.dead_endpoints()[0]:
                assert time.monotonic() < deadline, "kill never detected"
                time.sleep(0.05)
            deadline = time.monotonic() + 5
            while any(service.outstanding()) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.outstanding() == [0, 0]
