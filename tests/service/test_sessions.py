"""Tests for the MonitorService session surface.

The acceptance bar: >= 32 concurrent sessions driven through the service
finish with results identical to the same streams replayed one-at-a-time
through an in-process OnlineMonitor.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService, SessionStatus

SPECS = [
    parse("a U[0,6) b"),
    parse("F[0,8) b"),
    parse("G[0,4) (a | b)"),
    parse("F[0,12) (a & b)"),
]


def _stream(seed: int) -> tuple[object, int, list[tuple[str, int, frozenset[str]]], int]:
    """One deterministic random stream: (formula, epsilon, events, boundary).

    Events are in observation order (per-process monotone local clocks);
    ``boundary`` is a mid-stream ``advance_to`` point.
    """
    rng = random.Random(seed)
    spec = SPECS[seed % len(SPECS)]
    epsilon = rng.randint(1, 3)
    events: list[tuple[str, int, frozenset[str]]] = []
    clocks = {"P1": rng.randint(0, 2), "P2": rng.randint(0, 2)}
    for _ in range(rng.randint(3, 7)):
        process = rng.choice(("P1", "P2"))
        clocks[process] += rng.randint(0, 3)
        props = frozenset(p for p in ("a", "b") if rng.random() < 0.5)
        events.append((process, clocks[process], props))
    boundary = max(t for _, t, _ in events) // 2
    return spec, epsilon, events, boundary


def _serial_replay(seed: int):
    """The same stream through a plain in-process OnlineMonitor."""
    spec, epsilon, events, boundary = _stream(seed)
    monitor = OnlineMonitor(spec, epsilon)
    advanced = False
    for process, local_time, props in events:
        if not advanced and local_time >= boundary > 0:
            monitor.advance_to(boundary)
            advanced = True
        if local_time >= boundary or not advanced:
            monitor.observe(process, local_time, props)
    return monitor.finish()


class TestManySessions:
    SESSIONS = 32

    def test_concurrent_sessions_match_serial_replay(self):
        """Acceptance: >= 32 sessions, interleaved, identical to serial."""
        with MonitorService(workers=4) as service:
            sessions = {}
            for seed in range(self.SESSIONS):
                spec, epsilon, _, _ = _stream(seed)
                sessions[seed] = service.open_session(spec, epsilon)
            # Interleave: feed event i of every stream before event i+1 of
            # any stream, advancing each session at its own boundary.
            advanced: set[int] = set()
            index = 0
            while True:
                fed = False
                for seed, session in sessions.items():
                    _, _, events, boundary = _stream(seed)
                    if index >= len(events):
                        continue
                    process, local_time, props = events[index]
                    if seed not in advanced and local_time >= boundary > 0:
                        session.advance_to(boundary)
                        advanced.add(seed)
                    if local_time >= boundary or seed not in advanced:
                        session.observe(process, local_time, props)
                    fed = True
                if not fed:
                    break
                index += 1
            results = {seed: session.finish() for seed, session in sessions.items()}
        for seed, result in results.items():
            serial = _serial_replay(seed)
            assert result.verdict_counts == serial.verdict_counts, f"stream {seed}"
            assert result.verdicts == serial.verdicts

    def test_sessions_shard_across_all_workers(self):
        with MonitorService(workers=3) as service:
            sessions = [
                service.open_session(parse("F[0,5) a"), epsilon=1) for _ in range(6)
            ]
            workers = {session.worker_index for session in sessions}
            assert workers == {0, 1, 2}
            for session in sessions:
                session.close()

    def test_affinity_key_pins_to_one_worker(self):
        with MonitorService(workers=3) as service:
            first = service.open_session(parse("F[0,5) a"), epsilon=1, key="feed-7")
            second = service.open_session(parse("F[0,8) b"), epsilon=1, key="feed-7")
            assert first.worker_index == second.worker_index


class TestSessionSemantics:
    def test_single_session_matches_online_monitor(self):
        spec = parse("a U[0,6) b")
        with MonitorService(workers=2) as service:
            session = service.open_session(spec, epsilon=2)
            for process, t, props in [
                ("P1", 1, "a"), ("P1", 4, ()), ("P2", 2, "a"), ("P2", 5, "b")
            ]:
                session.observe(process, t, props)
            result = session.finish()
        reference = OnlineMonitor(spec, epsilon=2)
        for process, t, props in [
            ("P1", 1, "a"), ("P1", 4, ()), ("P2", 2, "a"), ("P2", 5, "b")
        ]:
            reference.observe(process, t, props)
        assert result.verdict_counts == reference.finish().verdict_counts

    def test_poll_reports_progress(self):
        spec = parse("F[0,100) done")
        with MonitorService(workers=1) as service:
            session = service.open_session(spec, epsilon=1)
            session.observe("P1", 5, "start")
            status = session.poll()
            assert isinstance(status, SessionStatus)
            assert status.pending == 1
            assert not status.finished
            assert status.verdicts == frozenset()
            verdicts = session.advance_to(10)
            assert verdicts == frozenset()
            session.observe("P1", 50, "done")
            session.finish()
            status = session.poll()
            assert status.finished
            assert status.verdicts == frozenset({True})

    def test_late_observe_surfaces_monitor_error(self):
        """Worker-side rejection re-raises client-side as MonitorError at
        the next synchronising call (observe itself is asynchronous)."""
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F p"), epsilon=1)
            session.advance_to(100)
            session.observe("P1", 5, "p")
            with pytest.raises(MonitorError, match="advanced past"):
                session.advance_to(200)
            session.close()

    def test_session_survives_rejected_observe(self):
        """A rejected event raises once, then the stream keeps working —
        mirroring the in-process OnlineMonitor's recovery contract."""
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F[0,300) p"), epsilon=1)
            session.advance_to(100)
            session.observe("P1", 5, "p")  # behind the frontier: rejected
            with pytest.raises(MonitorError, match="rejected"):
                session.advance_to(150)
            # the error does not repeat, and the session still accepts work
            session.observe("P1", 200, "p")
            result = session.finish()
            assert result.definitely_satisfied

    def test_rejected_event_does_not_drop_batched_tail(self):
        """One bad event inside a flushed batch must not swallow the
        valid events batched after it."""
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F[0,300) p"), epsilon=1)
            session.advance_to(100)
            # both events flush in ONE batch at the next sync point:
            session.observe("P1", 5, ())     # behind the frontier: rejected
            session.observe("P1", 200, "p")  # valid: must survive
            with pytest.raises(MonitorError, match="1/2 observed"):
                session.poll()
            result = session.finish()
            assert result.definitely_satisfied  # the valid event was kept

    def test_finish_after_close_raises(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F p"), epsilon=1)
            session.close()
            with pytest.raises(MonitorError, match="closed without"):
                session.finish()

    def test_finish_idempotent_and_seals_session(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F p"), epsilon=1)
            session.observe("P1", 1, "p")
            first = session.finish()
            assert session.finish() is first
            assert session.finished
            with pytest.raises(MonitorError, match="finished"):
                session.observe("P1", 2, "p")
            assert service.open_sessions == 0

    def test_close_discards_without_verdicts(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F p"), epsilon=1)
            session.observe("P1", 1, "p")
            session.close()
            assert service.open_sessions == 0
            # pool still serves new sessions afterwards
            replacement = service.open_session(parse("F p"), epsilon=1)
            replacement.observe("P1", 1, "p")
            assert replacement.finish().definitely_satisfied

    def test_sessions_and_batches_share_the_pool(self):
        from repro.distributed.computation import DistributedComputation

        spec = parse("a U[0,6) b")
        comp = DistributedComputation.from_event_lists(
            2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
        )
        with MonitorService(workers=2, formula=spec, saturate=False) as service:
            session = service.open_session(spec, epsilon=2)
            session.observe("P1", 1, "a")
            report = service.map([comp, comp])
            session.observe("P2", 2, "a")
            session.observe("P1", 4, ())
            session.observe("P2", 5, "b")
            result = session.finish()
        assert not report.errors
        assert result.verdicts == report.items[0].result.verdicts


class TestSessionLifecycleFixes:
    """Regression bar for the session-lifecycle bugfixes: the heat signal
    counts only events that actually reached a worker, and close()
    cancels queued observe batches instead of abandoning them."""

    def test_events_observed_counts_flushed_not_buffered(self):
        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F[0,50) p"), epsilon=1)
            for t in range(1, 6):
                session.observe("P1", t, "p")
            assert session.events_observed == 0  # buffered, not yet carried
            session.poll()  # flushes
            assert session.events_observed == 5
            session.finish()

    def test_failed_flush_does_not_inflate_the_count(self):
        import time

        from repro.errors import ServiceError

        with MonitorService(workers=2) as service:
            session = service.open_session(parse("F[0,50) p"), epsilon=1)
            session.observe("P1", 1, "p")
            service._connections[session.worker_index].kill()
            deadline = time.monotonic() + 15
            while not service.dead_endpoints()[session.worker_index]:
                assert time.monotonic() < deadline, "worker death never detected"
                time.sleep(0.05)
            with pytest.raises(ServiceError, match="buffered observe event"):
                session.poll()
            assert session.events_observed == 0  # the batch never landed

    def test_close_cancels_inflight_observe_batches(self):
        """A closed session's queued batches are dropped worker-side (the
        cancel's drop frame overtakes the backlog), not left to burn the
        pool — and their rejections can never surface afterwards."""
        from repro.service.session import OBSERVE_FLUSH_THRESHOLD

        with MonitorService(workers=1) as service:
            session = service.open_session(parse("F[0,100000) p"), epsilon=1)
            service._send(0, "sleep", 1.0)  # park the worker
            for t in range(1, OBSERVE_FLUSH_THRESHOLD + 1):
                session.observe("P1", t, "p")
            inflight = list(session._inflight)
            assert inflight  # the auto-flush queued behind the parked worker
            session.close()
            assert all(future.cancelled for future in inflight)
            assert service.outstanding() == [0]  # drop acks settled the books


class TestBufferedEventLoss:
    """Satellite bar: events buffered client-side (below the flush
    threshold) must never vanish silently when the worker dies — the
    next synchronising call raises ServiceError naming the count."""

    def _await_death(self, service, worker_index):
        import time

        deadline = time.monotonic() + 15
        while not service.dead_endpoints()[worker_index]:
            assert time.monotonic() < deadline, "worker death never detected"
            time.sleep(0.05)

    def test_unflushed_events_surface_with_count_on_worker_death(self):
        from repro.errors import ServiceError

        with MonitorService(workers=2) as service:
            session = service.open_session(parse("F[0,50) p"), epsilon=1)
            session.observe("P1", 1, "p")
            session.observe("P2", 2, "p")
            session.observe("P1", 3, "p")
            service._connections[session.worker_index].kill()
            self._await_death(service, session.worker_index)
            with pytest.raises(ServiceError, match="3 buffered observe event"):
                session.advance_to(10)

    def test_failed_flush_keeps_buffer_for_diagnosis(self):
        """The buffer survives the failed flush — repeated sync calls
        keep reporting the same count instead of silently dropping it."""
        from repro.errors import ServiceError

        with MonitorService(workers=2) as service:
            session = service.open_session(parse("F[0,50) p"), epsilon=1)
            session.observe("P1", 1, "p")
            service._connections[session.worker_index].kill()
            self._await_death(service, session.worker_index)
            for _ in range(2):
                with pytest.raises(ServiceError, match="1 buffered observe event"):
                    session.poll()

    def test_migration_drains_buffer_before_the_hop(self):
        """Migration flushes buffered events to the origin first, so the
        snapshot carries them — nothing is lost across the hop."""
        spec = parse("F[0,50) p")
        with MonitorService(workers=2) as service:
            session = service.open_session(spec, epsilon=1)
            session.observe("P1", 1, "p")  # buffered, below the threshold
            session.migrate(1 - session.worker_index)
            status = session.poll()
            assert status.pending == 1  # the event crossed with the snapshot
            assert session.finish().definitely_satisfied
