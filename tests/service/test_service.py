"""Tests for the MonitorService batch surface and pool lifecycle.

The acceptance bar: ``submit_many`` verdict multisets are bit-identical
to serial ``make_monitor(...).run(...)`` on the differential corpus, the
pool persists across calls, submission backpressure holds, and shutdown
is clean and idempotent.
"""

from __future__ import annotations

import pytest

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError, ServiceError
from repro.monitor import make_monitor
from repro.mtl import parse
from repro.service import BatchReport, MonitorFuture, MonitorService


def _corpus() -> list[tuple[DistributedComputation, object]]:
    """A small deterministic differential corpus (computation, formula)."""
    fig3 = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    skewed = DistributedComputation.from_event_lists(
        3,
        {
            "P1": [(0, "a"), (3, "a"), (6, ())],
            "P2": [(1, ()), (4, "b")],
            "P3": [(2, "a")],
        },
    )
    chainlike = DistributedComputation.from_event_lists(
        2, {"apr": [(0, "a"), (5, "a"), (9, "b")], "ban": [(2, "a"), (7, ())]}
    )
    specs = [
        parse("a U[0,6) b"),
        parse("F[0,8) b"),
        parse("G[0,4) (a | b)"),
        parse("(F[0,5) a) & (F[0,9) b)"),
    ]
    return [(comp, spec) for comp in (fig3, skewed, chainlike) for spec in specs]


class TestBatchSurface:
    def test_submit_many_bit_identical_to_serial(self):
        """Acceptance: service verdict multisets == serial make_monitor."""
        by_spec: dict[object, list[DistributedComputation]] = {}
        for comp, spec in _corpus():
            by_spec.setdefault(spec, []).append(comp)
        for spec, comps in by_spec.items():
            serial = [
                make_monitor(spec, "smt", saturate=False).run(comp).verdict_counts
                for comp in comps
            ]
            with MonitorService(
                workers=2, formula=spec, monitor="smt", saturate=False
            ) as service:
                futures = service.submit_many(comps)
                items = [future.result() for future in futures]
            assert [item.error for item in items] == [None] * len(comps)
            assert [item.result.verdict_counts for item in items] == serial

    def test_map_orders_items_and_counts_totals(self):
        spec = parse("a U[0,6) b")
        comps = [comp for comp, _ in _corpus()[:6]]
        with MonitorService(workers=2, formula=spec, saturate=False) as service:
            report = service.map(comps)
        assert isinstance(report, BatchReport)
        assert [item.index for item in report.items] == list(range(len(comps)))
        assert not report.errors
        serial = [
            make_monitor(spec, "smt", saturate=False).run(c).verdict_counts
            for c in comps
        ]
        assert [item.result.verdict_counts for item in report.items] == serial
        totals = report.verdict_totals
        for verdict in (True, False):
            assert totals.get(verdict, 0) == sum(c.get(verdict, 0) for c in serial)
        assert report.wall_seconds > 0
        assert 0.0 <= report.utilization <= 1.0

    def test_pool_persists_across_calls(self):
        """The whole point of the service: one spawn, many batches."""
        spec = parse("F[0,8) b")
        comps = [comp for comp, _ in _corpus()[:3]]
        with MonitorService(workers=2, formula=spec, saturate=False) as service:
            pids = service.worker_pids()
            assert len(pids) == 2 and len(set(pids)) == 2
            first = service.map(comps)
            second = service.map(comps)
            assert service.worker_pids() == pids
        assert first.verdict_totals == second.verdict_totals
        workers = {item.worker for item in first.items + second.items}
        assert workers <= set(pids)

    def test_poisoned_item_is_captured(self):
        """An item over the fast monitor's event cap must not kill the
        batch: its error is captured, every other item succeeds."""
        spec = parse("G[0,400) (a | !a)")
        good = DistributedComputation.from_event_lists(1, {"P1": [(0, "a"), (1, "a")]})
        poisoned = DistributedComputation(1)
        for i in range(301):
            poisoned.add_event("P1", i, "a")
        with MonitorService(workers=2, formula=spec, monitor="fast") as service:
            report = service.map([good, poisoned, good])
        assert len(report.items) == 3
        assert report.items[0].ok and report.items[2].ok
        assert not report.items[1].ok
        assert "MonitorError" in report.items[1].error
        assert report.errors == [(1, report.items[1].error)]

    def test_backpressure_bound_still_completes(self):
        """max_in_flight=1 serialises submission without deadlock."""
        spec = parse("F[0,8) b")
        comps = [comp for comp, _ in _corpus()[:5]]
        with MonitorService(
            workers=2, formula=spec, max_in_flight=1, saturate=False
        ) as service:
            report = service.map(comps)
        assert not report.errors
        assert [item.index for item in report.items] == list(range(len(comps)))

    def test_submit_returns_future_immediately(self):
        spec = parse("F[0,8) b")
        comp, _ = _corpus()[0]
        with MonitorService(workers=1, formula=spec, saturate=False) as service:
            future = service.submit(comp)
            assert isinstance(future, MonitorFuture)
            item = future.result(timeout=30)
            assert future.done()
            assert item.ok
            assert item.result.verdicts

    def test_per_call_overrides(self):
        """Engine kind and knobs override the service defaults per call."""
        spec = parse("a U[0,6) b")
        comp, _ = _corpus()[0]
        with MonitorService(workers=1, formula=spec, monitor="smt") as service:
            item = service.submit(comp, monitor="fast").result()
        assert item.ok

    def test_auto_kind(self):
        comps = [comp for comp, _ in _corpus()[:2]]
        with MonitorService(workers=2, formula=parse("a U[0,6) b")) as service:
            report = service.map(comps)
        assert not report.errors


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_after(self):
        spec = parse("F[0,5) a")
        service = MonitorService(workers=1, formula=spec)
        service.close()
        service.close()  # no-op
        assert service.closed
        with pytest.raises(ServiceError):
            service.submit(DistributedComputation(2))
        with pytest.raises(ServiceError):
            service.open_session(spec, epsilon=2)

    def test_context_manager_closes(self):
        with MonitorService(workers=1, formula=parse("F[0,5) a")) as service:
            assert not service.closed
        assert service.closed

    def test_invalid_construction(self):
        with pytest.raises(MonitorError):
            MonitorService(workers=0)
        with pytest.raises(MonitorError):
            MonitorService(workers=1, max_in_flight=0)

    def test_submit_requires_formula(self):
        with MonitorService(workers=1) as service:
            with pytest.raises(MonitorError, match="formula"):
                service.submit(DistributedComputation(2))

    def test_close_resolves_queued_work_first(self):
        """Work already queued completes before shutdown (FIFO drain)."""
        spec = parse("F[0,8) b")
        comps = [comp for comp, _ in _corpus()[:4]]
        service = MonitorService(workers=2, formula=spec, saturate=False)
        futures = service.submit_many(comps)
        service.close()
        items = [future.result(timeout=30) for future in futures]
        assert all(item.ok for item in items)

    def test_unpicklable_response_fails_only_its_request(self):
        """A custom engine returning an unpicklable result must fail that
        one request, not the worker (and every session on it)."""
        from repro.monitor import register_monitor
        from repro.monitor.factory import _REGISTRY

        class UnpicklableResult:
            def __init__(self):
                import threading

                self.lock = threading.Lock()  # locks do not pickle

        class BadEngine:
            def __init__(self, formula):
                self._formula = formula

            @property
            def formula(self):
                return self._formula

            def run(self, computation):
                return UnpicklableResult()

        spec = parse("F[0,8) b")
        comp, _ = _corpus()[0]
        register_monitor("unpicklable", lambda formula, *, epsilon=None, **kw: BadEngine(formula))
        try:
            with MonitorService(workers=1, formula=spec) as service:
                bad = service.submit(comp, monitor="unpicklable")
                with pytest.raises(ServiceError, match="not picklable"):
                    bad.result(timeout=30)
                # the worker survived: the next request succeeds
                good = service.submit(comp, monitor="smt", saturate=False).result(timeout=30)
                assert good.ok
        finally:
            _REGISTRY.pop("unpicklable", None)

    def test_unserializable_request_unwinds_bookkeeping(self):
        """A submit whose payload the codec refuses must raise *and*
        leave no leaked future or outstanding count (a leak would bias
        least-loaded placement against a healthy worker forever)."""
        spec = parse("F[0,8) b")
        comp, _ = _corpus()[0]
        with MonitorService(workers=1, formula=spec, saturate=False) as service:
            with pytest.raises(Exception):
                # a lambda in the engine kwargs cannot pickle
                service.submit(comp, poison=lambda: None)
            assert service.outstanding() == [0]
            assert not service._futures
            # backpressure slot was released and the pool still serves
            assert service.submit(comp).result(timeout=30).ok

    def test_dead_worker_fails_futures_instead_of_hanging(self):
        """A killed worker's outstanding requests fail with ServiceError
        (no infinite block) and the pool keeps serving from survivors."""
        import time

        spec = parse("F[0,8) b")
        comp, _ = _corpus()[0]
        with MonitorService(workers=2, formula=spec, saturate=False) as service:
            session = service.open_session(spec, epsilon=2)  # pinned: id 0 -> worker 0
            service._connections[session.worker_index].kill()
            deadline = time.monotonic() + 10
            with pytest.raises(ServiceError, match="died|closed"):
                while time.monotonic() < deadline:
                    session.poll()  # eventually routed/reaped as dead
                    time.sleep(0.05)
                raise AssertionError("dead worker never detected")
            # the surviving worker still serves batch work
            report = service.map([comp, comp])
            assert not report.errors
