"""Tests for formula progression — including the paper's worked examples
and the fundamental splitting property of Definition 3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MonitorError, TraceError
from repro.mtl import ast
from repro.mtl.interval import Interval
from repro.mtl.semantics import satisfies
from repro.mtl.trace import State, TimedTrace
from repro.progression.progressor import anchor_shift, close, progress

from tests.conftest import formulas, timed_traces


def trace_of(*entries: tuple[str, int]) -> TimedTrace:
    states = [State(frozenset(p.split())) if p else State(frozenset()) for p, _ in entries]
    return TimedTrace(states, [t for _, t in entries])


class TestBaseCases:
    def test_atom_true(self):
        assert progress(trace_of(("p", 0)), ast.atom("p"), 1) == ast.TRUE

    def test_atom_false(self):
        assert progress(trace_of(("q", 0)), ast.atom("p"), 1) == ast.FALSE

    def test_constants(self):
        trace = trace_of(("", 0))
        assert progress(trace, ast.TRUE, 1) == ast.TRUE
        assert progress(trace, ast.FALSE, 1) == ast.FALSE

    def test_negation(self):
        assert progress(trace_of(("q", 0)), ast.lnot(ast.atom("p")), 1) == ast.TRUE

    def test_disjunction_partial(self):
        """false | <pending F> leaves the pending obligation."""
        phi = ast.lor(ast.atom("p"), ast.eventually(ast.atom("q"), Interval.bounded(0, 9)))
        result = progress(trace_of(("", 0)), phi, 1)
        assert result == ast.eventually(ast.atom("q"), Interval.bounded(0, 8))

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            progress(TimedTrace.empty(), ast.atom("p"), 1)

    def test_boundary_before_end_rejected(self):
        with pytest.raises(TraceError):
            progress(trace_of(("p", 5)), ast.atom("p"), 3)


class TestEventually:
    def test_witness_found(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        assert progress(trace_of(("", 0), ("p", 2)), phi, 3) == ast.TRUE

    def test_no_witness_window_still_open(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        result = progress(trace_of(("", 0), ("", 2)), phi, 3)
        assert result == ast.eventually(ast.atom("p"), Interval.bounded(0, 2))

    def test_no_witness_window_closed(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 3))
        assert progress(trace_of(("", 0), ("", 2)), phi, 5) == ast.FALSE

    def test_interval_entirely_in_future(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(10, 20))
        result = progress(trace_of(("p", 0)), phi, 4)
        assert result == ast.eventually(ast.atom("p"), Interval.bounded(6, 16))


class TestAlways:
    def test_violation_found(self):
        phi = ast.always(ast.atom("p"), Interval.bounded(0, 5))
        assert progress(trace_of(("p", 0), ("q", 2)), phi, 3) == ast.FALSE

    def test_no_violation_window_open(self):
        phi = ast.always(ast.atom("p"), Interval.bounded(0, 5))
        result = progress(trace_of(("p", 0), ("p", 2)), phi, 3)
        assert result == ast.always(ast.atom("p"), Interval.bounded(0, 2))

    def test_no_violation_window_closed(self):
        phi = ast.always(ast.atom("p"), Interval.bounded(0, 3))
        assert progress(trace_of(("p", 0), ("p", 2)), phi, 5) == ast.TRUE


class TestUntil:
    def test_witness_in_segment(self):
        phi = ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 6))
        assert progress(trace_of(("a", 0), ("b", 2)), phi, 3) == ast.TRUE

    def test_pending_with_left_holding(self):
        phi = ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 8))
        result = progress(trace_of(("a", 1), ("a", 3)), phi, 4)
        assert result == ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5))

    def test_left_broken_and_window_closed_in_segment(self):
        phi = ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 3))
        assert progress(trace_of(("a", 0), ("c", 1), ("c", 4)), phi, 6) == ast.FALSE

    def test_left_broken_kills_future_witness(self):
        phi = ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 20))
        assert progress(trace_of(("a", 0), ("c", 1)), phi, 3) == ast.FALSE


class TestPaperFig2:
    """The Fig 2 motivating example: different timestamp choices rewrite
    the specification's window differently."""

    SPEC = ast.until(
        ast.lnot(ast.atom("apr.redeem(bob)")),
        ast.atom("ban.redeem(alice)"),
        Interval.bounded(0, 8),
    )

    def _segment(self, t_start: int, t_first: int, t_second: int) -> TimedTrace:
        return trace_of(
            ("setup", t_start),
            ("setup2", t_start),
            ("deposit_pb", t_first),
            ("deposit_papb", t_second),
        )

    def test_different_times_give_different_residual_windows(self):
        """Reassigned timestamps (the skew window) change how much of the
        U window has elapsed at the segment boundary, so the rewritten
        formulas differ — the paper's phi_spec1 vs phi_spec2."""
        boundary = 5
        residual_a = progress(self._segment(1, 3, 4), self.SPEC, boundary)
        residual_b = progress(self._segment(2, 3, 4), self.SPEC, boundary)
        assert residual_a != residual_b
        assert isinstance(residual_a, ast.Until)
        assert isinstance(residual_b, ast.Until)
        # Scenario a starts one tick earlier, so more of its window has
        # elapsed at the boundary: [0,4) versus [0,5).
        assert residual_a.interval.end == 4
        assert residual_b.interval.end == 5


class TestPaperFig4:
    """The worked progression example of Fig 4:
    ``F[0,6) r -> (!p U[2,9) q)`` over three segments."""

    @property
    def spec(self) -> ast.Formula:
        return ast.implies(
            ast.eventually(ast.atom("r"), Interval.bounded(0, 6)),
            ast.until(ast.lnot(ast.atom("p")), ast.atom("q"), Interval.bounded(2, 9)),
        )

    def test_three_segment_progression_reaches_true(self):
        seg1 = trace_of(("", 1), ("", 2), ("", 3))
        seg2 = trace_of(("r", 3), ("", 4), ("", 5))
        seg3 = trace_of(("", 6), ("q", 7), ("p", 7))

        r1 = progress(seg1, self.spec, boundary=3)
        assert r1 not in (ast.TRUE, ast.FALSE)
        r2 = progress(seg2, r1, boundary=6)
        assert r2 not in (ast.TRUE, ast.FALSE)
        r3 = progress(seg3, r2, boundary=8)
        assert r3 == ast.TRUE

    def test_whole_trace_agrees_with_direct_semantics(self):
        whole = trace_of(
            ("", 1), ("", 2), ("", 3), ("r", 3), ("", 4), ("", 5), ("", 6), ("q", 7), ("p", 7)
        )
        assert satisfies(whole, self.spec)


class TestSplittingProperty:
    """Definition 3: (alpha.alpha', tau.tau') |= phi  iff
    (alpha', tau') |= Pr(alpha, tau, phi)."""

    @settings(max_examples=200, deadline=None)
    @given(timed_traces(min_length=2, max_length=6), formulas(max_depth=2), st.data())
    def test_progress_then_evaluate_matches_direct(self, trace, phi, data):
        split = data.draw(st.integers(min_value=1, max_value=len(trace) - 1))
        prefix, suffix = trace.prefix(split), trace.suffix(split)
        residual = progress(prefix, phi, boundary=suffix.start_time)
        assert satisfies(suffix, residual) == satisfies(trace, phi)

    @settings(max_examples=200, deadline=None)
    @given(timed_traces(min_length=1, max_length=6), formulas(max_depth=2))
    def test_progress_whole_then_close_matches_direct(self, trace, phi):
        residual = progress(trace, phi, boundary=trace.end_time)
        assert close(residual) == satisfies(trace, phi)


class TestAnchorShift:
    def test_shift_zero_is_identity(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        assert anchor_shift(phi, 0) is phi

    def test_shifts_outer_interval(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        assert anchor_shift(phi, 2) == ast.eventually(ast.atom("p"), Interval.bounded(0, 3))

    def test_elapsed_eventually_becomes_false(self):
        phi = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        assert anchor_shift(phi, 9) == ast.FALSE

    def test_elapsed_always_becomes_true(self):
        phi = ast.always(ast.atom("p"), Interval.bounded(0, 5))
        assert anchor_shift(phi, 9) == ast.TRUE

    def test_does_not_descend_into_operands(self):
        inner = ast.eventually(ast.atom("p"), Interval.bounded(0, 5))
        phi = ast.always(inner, Interval.bounded(0, 9))
        shifted = anchor_shift(phi, 3)
        assert shifted == ast.always(inner, Interval.bounded(0, 6))

    def test_negative_shift_rejected(self):
        with pytest.raises(MonitorError):
            anchor_shift(ast.TRUE, -1)

    def test_bare_atom_rejected(self):
        with pytest.raises(MonitorError):
            anchor_shift(ast.atom("p"), 1)


class TestClose:
    def test_pending_obligations(self):
        assert close(ast.eventually(ast.atom("p"))) is False
        assert close(ast.always(ast.atom("p"))) is True
        assert close(ast.until(ast.atom("a"), ast.atom("b"))) is False

    def test_boolean_structure(self):
        phi = ast.lor(
            ast.eventually(ast.atom("p")),
            ast.lnot(ast.until(ast.atom("a"), ast.atom("b"))),
        )
        assert close(phi) is True

    def test_constants(self):
        assert close(ast.TRUE) is True
        assert close(ast.FALSE) is False

    def test_bare_atom_rejected(self):
        with pytest.raises(MonitorError):
            close(ast.atom("p"))
