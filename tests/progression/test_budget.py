"""Unit tests for the cooperative execution budget.

The contract (see :mod:`repro.progression.budget`): ``step`` is a
counter decrement until ``check_every`` units accumulate, then one full
checkpoint runs — poll hook first, then the cancel chain, then the
deadline.  Cancellation and deadlines *preempt* (raise
:class:`~repro.errors.PreemptedError`); the trace facet *truncates*
(never raises).  Budgets chain: a parent's cancellation preempts every
child.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import MonitorError, PreemptedError, ServiceError
from repro.progression.budget import DEFAULT_CHECK_EVERY, Budget


class TestStepAndCheckpoint:
    def test_steps_below_interval_never_checkpoint(self):
        calls = []
        budget = Budget(check_every=10, poll_hook=lambda: calls.append(1))
        for _ in range(9):
            budget.step()
        assert calls == []

    def test_checkpoint_fires_at_interval_and_rearms(self):
        calls = []
        budget = Budget(check_every=5, poll_hook=lambda: calls.append(1))
        for _ in range(5):
            budget.step()
        assert len(calls) == 1
        for _ in range(5):
            budget.step()
        assert len(calls) == 2

    def test_bulk_step_reaches_checkpoint(self):
        calls = []
        budget = Budget(check_every=100, poll_hook=lambda: calls.append(1))
        budget.step(250)
        assert len(calls) == 1

    def test_invalid_check_every_rejected(self):
        with pytest.raises(ValueError):
            Budget(check_every=0)


class TestCancelFacet:
    def test_cancel_preempts_at_next_checkpoint(self):
        budget = Budget(check_every=1)
        budget.step()  # fine before the cancel
        budget.cancel("stop right there")
        with pytest.raises(PreemptedError, match="stop right there"):
            budget.step()

    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        budget = Budget()
        budget.cancel("first")
        budget.cancel("second")
        assert budget.preempt_reason() == "first"

    def test_preempted_is_monitor_error_but_not_service_error(self):
        # Load-bearing for durable sessions: a preemption must NOT look
        # like a worker loss, or _durable_call would replay the very
        # call the client just interrupted.
        assert issubclass(PreemptedError, MonitorError)
        assert not issubclass(PreemptedError, ServiceError)

    def test_parent_cancellation_preempts_child(self):
        parent = Budget()
        child = Budget(max_traces=10, parent=parent)
        parent.cancel("parent gone")
        assert child.cancelled
        with pytest.raises(PreemptedError, match="parent gone"):
            child.checkpoint()

    def test_poll_hook_runs_before_cancel_is_read(self):
        # The single-threaded-worker shape: the hook is how the budget
        # *learns* about the cancel, so the same checkpoint must trip.
        budget = Budget(check_every=1)
        budget.poll_hook = lambda: budget.cancel("discovered in inbox")
        with pytest.raises(PreemptedError, match="discovered in inbox"):
            budget.step()


class TestDeadlineFacet:
    def test_expired_deadline_preempts(self):
        budget = Budget(deadline_seconds=0.0)
        time.sleep(0.01)
        with pytest.raises(PreemptedError, match="wall-clock"):
            budget.checkpoint()

    def test_future_deadline_does_not_preempt(self):
        budget = Budget(deadline_seconds=60.0)
        budget.checkpoint()


class TestTraceFacet:
    def test_trace_budget_truncates_without_raising(self):
        budget = Budget(max_traces=3)
        assert budget.trace_limit() == 3
        assert not budget.traces_exhausted(2)
        assert budget.traces_exhausted(3)
        budget.checkpoint()  # exhaustion is not preemption

    def test_unbounded_by_default(self):
        budget = Budget()
        assert budget.trace_limit() is None
        assert not budget.traces_exhausted(10**9)


class TestEnsure:
    def test_none_with_limit_builds_truncation_only_budget(self):
        budget = Budget.ensure(None, max_traces=7)
        assert budget.trace_limit() == 7
        assert not budget.cancelled

    def test_existing_budget_adopts_limit_as_child(self):
        outer = Budget()
        merged = Budget.ensure(outer, max_traces=7)
        assert merged is not outer
        assert merged.parent is outer
        assert merged.trace_limit() == 7
        outer.cancel("outer cancelled")
        assert merged.cancelled  # caller facets still apply

    def test_budget_with_own_limit_wins(self):
        outer = Budget(max_traces=5)
        assert Budget.ensure(outer, max_traces=7) is outer

    def test_default_interval_is_sane(self):
        assert DEFAULT_CHECK_EVERY >= 1
