"""The columnar kernel against the object-path progressor, node by node.

These are the narrow-differential companions to the end-to-end pipeline
tests in ``tests/monitor/test_differential.py``: one trace, one formula,
both engines — the results must be the *same canonical object* (not just
equal), because both paths intern into the same arena.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import MonitorError
from repro.mtl import ast
from repro.mtl.ast import formula_of, intern_formula
from repro.progression.columnar import ColumnarSegmentProgressor
from repro.progression.progressor import anchor_shift, close, close_id, progress

from tests.conftest import formulas, timed_traces

_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(formula=formulas(max_depth=3), trace=timed_traces(), pad=st.integers(0, 5))
@settings(max_examples=120, **_SETTINGS)
def test_columnar_matches_object_progression(formula, trace, pad):
    """One batch pass == one recursive walk, bit-identically."""
    interned = intern_formula(formula)
    boundary = trace.end_time + pad
    kernel = ColumnarSegmentProgressor([(interned._intern_id, 1)])
    ((rid, count),) = kernel.progress_trace(trace, 0, boundary)
    expected = progress(trace, interned, boundary)
    assert count == 1
    assert formula_of(rid) is expected


@given(
    formula=formulas(max_depth=3),
    trace=timed_traces(),
    pad=st.integers(0, 4),
    d=st.integers(0, 6),
)
@settings(max_examples=120, **_SETTINGS)
def test_shift_root_matches_anchor_shift(formula, trace, pad, d):
    """Id-level re-anchoring mirrors the object-level one exactly."""
    residual = progress(trace, intern_formula(formula), trace.end_time + pad)
    kernel = ColumnarSegmentProgressor([])
    shifted_id = kernel.shift_root(residual._intern_id, d)
    assert formula_of(shifted_id) is anchor_shift(residual, d)


@given(formula=formulas(max_depth=3), trace=timed_traces(), pad=st.integers(0, 4))
@settings(max_examples=120, **_SETTINGS)
def test_close_id_matches_structural_close(formula, trace, pad):
    """The arena-cached close verdict equals a fresh structural walk."""
    residual = progress(trace, intern_formula(formula), trace.end_time + pad)

    def reference(node: ast.Formula) -> bool:
        if isinstance(node, ast.TrueConst):
            return True
        if isinstance(node, ast.FalseConst):
            return False
        if isinstance(node, ast.Not):
            return not reference(node.operand)
        if isinstance(node, ast.And):
            return all(reference(op) for op in node.operands)
        if isinstance(node, ast.Or):
            return any(reference(op) for op in node.operands)
        if isinstance(node, (ast.Eventually, ast.Until)):
            return False
        assert isinstance(node, ast.Always)
        return True

    assert close_id(residual._intern_id) == reference(residual)
    assert close(residual) == reference(residual)


@given(
    left=formulas(max_depth=2),
    right=formulas(max_depth=2),
    trace=timed_traces(),
    pad=st.integers(0, 3),
)
@settings(max_examples=60, **_SETTINGS)
def test_multiple_roots_share_one_pass(left, right, trace, pad):
    """A two-root column progresses both, aligned, with counts intact —
    including when the roots collapse to the same residual."""
    a = intern_formula(left)
    b = intern_formula(right)
    boundary = trace.end_time + pad
    kernel = ColumnarSegmentProgressor([(a._intern_id, 3), (b._intern_id, 5)])
    (ra, ca), (rb, cb) = kernel.progress_trace(trace, 0, boundary)
    assert (ca, cb) == (3, 5)
    assert formula_of(ra) is progress(trace, a, boundary)
    assert formula_of(rb) is progress(trace, b, boundary)


def test_constant_roots_pass_through():
    """TRUE/FALSE roots progress to themselves."""
    from repro.mtl.trace import State, TimedTrace

    trace = TimedTrace((State(frozenset({"a"})),), (0,))
    kernel = ColumnarSegmentProgressor(
        [(ast.TRUE_ID, 2), (ast.FALSE_ID, 7)]
    )
    assert kernel.progress_trace(trace, 0, 1) == [
        (ast.TRUE_ID, 2),
        (ast.FALSE_ID, 7),
    ]


def test_plan_cache_hits_across_progressor_instances():
    """The plan cache is process-local, not per-progressor: a second
    progressor over the same root set must *hit* the plans the first one
    compiled instead of recompiling them."""
    from repro.mtl.parser import parse
    from repro.mtl.trace import State, TimedTrace
    from repro.progression.columnar import clear_plan_cache, plan_cache_stats

    interned = intern_formula(parse("G[0,9) (a -> F[0,3) b)"))
    trace = TimedTrace(
        (State(frozenset({"a"})), State(frozenset({"b"}))), (0, 1)
    )
    clear_plan_cache()
    try:
        first = ColumnarSegmentProgressor([(interned._intern_id, 1)])
        first.progress_trace(trace, 0, 2)
        after_first = plan_cache_stats()
        assert after_first["misses"] >= 1
        assert after_first["size"] >= 1

        second = ColumnarSegmentProgressor([(interned._intern_id, 1)])
        result = second.progress_trace(trace, 0, 2)
        after_second = plan_cache_stats()
        assert after_second["hits"] > after_first["hits"]
        assert after_second["misses"] == after_first["misses"]

        # And the cached plan computes the same residual, of course.
        assert result == first.progress_trace(trace, 0, 2)
    finally:
        clear_plan_cache()


def test_shift_root_rejects_negative_and_bare_atoms():
    kernel = ColumnarSegmentProgressor([])
    fid = intern_formula(ast.atom("a"))._intern_id
    try:
        kernel.shift_root(fid, -1)
    except MonitorError as exc:
        assert "backwards" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("negative shift must be rejected")
    try:
        kernel.shift_root(fid, 2)
    except MonitorError as exc:
        assert "bare atom" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("bare atoms must be rejected")
