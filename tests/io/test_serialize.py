"""Tests for the JSON wire format."""

import json

import pytest
from hypothesis import given, settings

from repro.io.serialize import (
    SerializationError,
    computation_from_dict,
    computation_to_dict,
    dump_computation,
    formula_from_text,
    formula_to_text,
    load_computation,
    result_to_dict,
)
from repro.monitor.fast import FastMonitor
from repro.mtl import parse

from tests.conftest import formulas, small_computations


class TestComputationRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(small_computations())
    def test_roundtrip_preserves_events(self, comp):
        clone = computation_from_dict(computation_to_dict(comp))
        assert clone.epsilon == comp.epsilon
        assert clone.events == comp.events

    def test_roundtrip_preserves_messages(self):
        from repro.distributed.computation import DistributedComputation

        comp = DistributedComputation(5)
        send = comp.add_event("P1", 1, "send")
        recv = comp.add_event("P2", 2, "recv")
        comp.add_message(send, recv)
        clone = computation_from_dict(computation_to_dict(comp))
        assert len(clone.messages) == 1

    def test_roundtrip_preserves_deltas(self):
        from repro.distributed.computation import DistributedComputation

        comp = DistributedComputation(2)
        comp.add_event("apr", 10, "t", {"to.alice": 7})
        clone = computation_from_dict(computation_to_dict(comp))
        assert clone.events[0].deltas == {"to.alice": 7.0}

    def test_file_roundtrip(self, tmp_path, fig3_computation):
        path = tmp_path / "comp.json"
        dump_computation(fig3_computation, str(path))
        loaded = load_computation(str(path))
        assert loaded.events == fig3_computation.events
        # The file is real JSON.
        json.loads(path.read_text())

    def test_monitoring_survives_roundtrip(self, fig3_computation, fig3_formula):
        clone = computation_from_dict(computation_to_dict(fig3_computation))
        original = FastMonitor(fig3_formula).run(fig3_computation)
        reloaded = FastMonitor(fig3_formula).run(clone)
        assert original.verdict_counts == reloaded.verdict_counts


class TestMalformedPayloads:
    def test_missing_epsilon(self):
        with pytest.raises(SerializationError):
            computation_from_dict({"events": []})

    def test_malformed_event(self):
        with pytest.raises(SerializationError):
            computation_from_dict({"epsilon": 1, "events": [{"process": "P1"}]})

    def test_malformed_message(self):
        with pytest.raises(SerializationError):
            computation_from_dict(
                {
                    "epsilon": 1,
                    "events": [{"process": "P1", "time": 0}],
                    "messages": [{"send": ["P9", 0], "recv": ["P1", 0]}],
                }
            )


class TestFormulaAndResult:
    @given(formulas())
    def test_formula_text_roundtrip(self, phi):
        assert formula_from_text(formula_to_text(phi)) == phi

    def test_result_summary(self, fig3_computation, fig3_formula):
        result = FastMonitor(fig3_formula).run(fig3_computation)
        summary = result_to_dict(result)
        assert summary["verdicts"] == [False, True]
        assert summary["deterministic"] is False
        assert summary["segments"][0]["events"] == 4
        json.dumps(summary)  # JSON-serializable

    def test_formula_parse_helper(self):
        assert formula_from_text("G[0,5) p") == parse("G[0,5) p")
