"""Cluster registry tests: leases, events, reaping, rejoin, auth.

The contract (see :mod:`repro.cluster.registry`): a registration lives
exactly as long as the TCP connection that made it; graceful leaves and
deaths are distinct events; re-registering an address *moves* the lease
so the old connection's loss cannot evict the fresh registration; the
watch snapshot and the event subscription flip atomically; silent
leaseholders are reaped, watchers never are; the shared-token handshake
gates every connection.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

import pytest

from repro.cluster import ClusterRegistry, RegistryClient
from repro.cluster.registry import EVENT_DEATH, EVENT_JOIN, EVENT_LEAVE
from repro.errors import ServiceError


class Events:
    """Thread-safe sink for pushed membership events."""

    def __init__(self):
        self.queue: "queue.Queue" = queue.Queue()

    def __call__(self, event: dict) -> None:
        self.queue.put(event)

    def next(self, timeout: float = 5.0) -> dict:
        return self.queue.get(timeout=timeout)

    def empty_for(self, seconds: float) -> bool:
        try:
            unexpected = self.queue.get(timeout=seconds)
        except queue.Empty:
            return True
        raise AssertionError(f"unexpected event: {unexpected}")


@pytest.fixture
def registry():
    # token="" pins auth off even if REPRO_AGENT_TOKEN leaks into the
    # environment; the short lease keeps the reaper tests fast.
    with ClusterRegistry(token="", lease_timeout=1.0) as reg:
        yield reg


def _connect(reg, token="", **kwargs) -> RegistryClient:
    kwargs.setdefault("heartbeat_interval", 0.2)
    return RegistryClient.connect(reg.describe(), token=token, **kwargs)


class TestRegisterLeave:
    def test_register_shows_in_members(self, registry):
        client = _connect(registry)
        try:
            client.register("tcp://worker:7701", kind="process")
            assert client.members() == [
                {"address": "tcp://worker:7701", "kind": "process"}
            ]
        finally:
            client.close()

    def test_leave_removes_and_notifies(self, registry):
        events = Events()
        watcher = _connect(registry, on_event=events)
        agent = _connect(registry)
        try:
            assert watcher.watch() == []
            agent.register("tcp://worker:7701")
            assert events.next()["event"] == EVENT_JOIN
            assert agent.leave() == ["tcp://worker:7701"]
            event = events.next()
            assert event["event"] == EVENT_LEAVE
            assert event["address"] == "tcp://worker:7701"
            assert watcher.members() == []
        finally:
            agent.close()
            watcher.close()

    def test_leave_of_one_address_keeps_the_rest(self, registry):
        agent = _connect(registry)
        try:
            agent.register("tcp://worker:1")
            agent.register("tcp://worker:2")
            assert agent.leave("tcp://worker:1") == ["tcp://worker:1"]
            assert [m["address"] for m in agent.members()] == ["tcp://worker:2"]
        finally:
            agent.close()

    def test_bad_register_payload_is_a_typed_error(self, registry):
        client = _connect(registry)
        try:
            with pytest.raises(ServiceError, match="address"):
                client.call("registry_register", {"no": "address"})
        finally:
            client.close()

    def test_unknown_op_is_a_typed_error(self, registry):
        client = _connect(registry)
        try:
            with pytest.raises(ServiceError, match="unknown registry op"):
                client.call("registry_frobnicate", None)
        finally:
            client.close()


class TestWatch:
    def test_snapshot_then_events(self, registry):
        pre = _connect(registry)
        events = Events()
        watcher = _connect(registry, on_event=events)
        late = _connect(registry)
        try:
            pre.register("tcp://worker:1")
            snapshot = watcher.watch()
            assert snapshot == [{"address": "tcp://worker:1", "kind": "thread"}]
            late.register("tcp://worker:2")
            event = events.next()
            assert event["event"] == EVENT_JOIN
            assert event["address"] == "tcp://worker:2"
        finally:
            late.close()
            watcher.close()
            pre.close()

    def test_non_watchers_get_no_events(self, registry):
        events = Events()
        silent = _connect(registry, on_event=events)  # never calls watch()
        agent = _connect(registry)
        try:
            agent.register("tcp://worker:1")
            assert events.empty_for(0.5)
        finally:
            agent.close()
            silent.close()


class TestConnectionIsTheLease:
    def test_abrupt_close_is_a_death(self, registry):
        events = Events()
        watcher = _connect(registry, on_event=events)
        agent = _connect(registry)
        watcher.watch()
        agent.register("tcp://worker:1")
        assert events.next()["event"] == EVENT_JOIN
        try:
            # Shutdown (not just close) so the FIN reaches the registry
            # even while the client's reader still holds the fd.
            agent._sock.shutdown(socket.SHUT_RDWR)
            event = events.next()
            assert event["event"] == EVENT_DEATH
            assert event["address"] == "tcp://worker:1"
            assert watcher.members() == []
        finally:
            agent.close()
            watcher.close()

    def test_rejoin_moves_the_lease(self, registry):
        """A replacement registering the same address must survive the
        old connection's loss (the rejoin-after-SIGKILL race)."""
        events = Events()
        watcher = _connect(registry, on_event=events)
        old = _connect(registry)
        replacement = _connect(registry)
        watcher.watch()
        old.register("tcp://worker:1")
        assert events.next()["event"] == EVENT_JOIN
        try:
            replacement.register("tcp://worker:1")
            event = events.next()
            assert event["event"] == EVENT_JOIN and event.get("rejoin") is True
            old._sock.shutdown(socket.SHUT_RDWR)
            # The old lease moved: its loss must produce no death event
            # and the fresh registration must stay.
            assert events.empty_for(1.0)
            assert [m["address"] for m in watcher.members()] == ["tcp://worker:1"]
        finally:
            replacement.close()
            old.close()
            watcher.close()

    def test_silent_leaseholder_is_reaped(self, registry):
        events = Events()
        watcher = _connect(registry, on_event=events)
        watcher.watch()
        # A leaseholder that never heartbeats within the 1 s lease.
        mute = _connect(registry, heartbeat_interval=60.0)
        try:
            mute.register("tcp://worker:1")
            assert events.next()["event"] == EVENT_JOIN
            event = events.next(timeout=5.0)
            assert event["event"] == EVENT_DEATH
            assert event["address"] == "tcp://worker:1"
        finally:
            mute.close()
            watcher.close()

    def test_watchers_are_exempt_from_the_reaper(self, registry):
        """A busy service that misses heartbeats holds no lease and must
        not be disconnected."""
        idle_watcher = _connect(registry, heartbeat_interval=60.0)
        try:
            idle_watcher.watch()
            time.sleep(2.5)  # well past the 1 s lease timeout
            assert idle_watcher.members() == []  # still served
        finally:
            idle_watcher.close()


class TestAuth:
    def test_token_gated_registry_rejects_unauthenticated(self):
        with ClusterRegistry(token="registry-secret") as reg:
            with pytest.raises(ServiceError) as excinfo:
                RegistryClient.connect(reg.describe(), token="")
            assert reg.describe() in str(excinfo.value)

    def test_wrong_token_rejected_with_typed_error(self):
        with ClusterRegistry(token="registry-secret") as reg:
            with pytest.raises(ServiceError, match="AuthError"):
                RegistryClient.connect(reg.describe(), token="wrong")

    def test_matching_token_serves(self):
        with ClusterRegistry(token="registry-secret") as reg:
            client = RegistryClient.connect(
                reg.describe(), token="registry-secret", heartbeat_interval=0.2
            )
            try:
                client.register("tcp://worker:1")
                assert [m["address"] for m in client.members()] == ["tcp://worker:1"]
            finally:
                client.close()


class TestClientLoss:
    def test_on_lost_fires_when_registry_dies(self, registry):
        lost = threading.Event()
        client = _connect(registry, on_lost=lost.set)
        try:
            client.members()  # proven live first
            registry.close()
            assert lost.wait(timeout=5.0), "registry loss never surfaced"
            with pytest.raises(ServiceError, match="unreachable|lost|closed"):
                client.members()
        finally:
            client.close()

    def test_calls_after_close_are_refused(self, registry):
        client = _connect(registry)
        client.close()
        with pytest.raises(ServiceError, match="closed"):
            client.members()
