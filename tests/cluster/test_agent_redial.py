"""Agent-side registry redial: agents rejoin a restarted registry.

The registrar mirrors the service's registry redial loop (PR 9) on the
*agent* side: when the registry connection dies — restart, partition,
crash — one background redial with capped backoff reconnects and
re-registers, so the agent rejoins pools live instead of silently
falling out of the directory.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.cluster import ClusterRegistry
from repro.errors import ServiceError
from repro.transport.agent import _AgentRegistrar, spawn_agent


def _free_port() -> int:
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _member_addresses(registry: ClusterRegistry) -> list[str]:
    return [member.address for member in registry.members()]


def _wait_for(predicate, deadline: float = 15.0, interval: float = 0.05) -> bool:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRegistrarUnit:
    def test_first_registration_fails_hard(self):
        # An unreachable registry at startup is a configuration error,
        # not something to mask behind a background retry.
        registrar = _AgentRegistrar(
            "127.0.0.1:1", "127.0.0.1:7001", "thread", "", threading.Event()
        )
        with pytest.raises((ServiceError, OSError)):
            registrar.start()

    def test_redial_is_single_flight(self):
        with ClusterRegistry(token="") as registry:
            stop = threading.Event()
            registrar = _AgentRegistrar(
                registry.address, "127.0.0.1:7002", "thread", "", stop
            )
            try:
                dials: list[str] = []
                gate = threading.Event()
                real_dial = registrar._dial

                def slow_dial():
                    dials.append(threading.current_thread().name)
                    if not gate.wait(10.0):
                        raise ServiceError("test gate never opened")
                    return real_dial()

                registrar._dial = slow_dial
                # Two loss notifications racing: only the one holding
                # the (non-blocking) redial lock may dial.
                registrar._on_lost()
                registrar._on_lost()
                assert _wait_for(lambda: len(dials) >= 1, 5.0)
                time.sleep(0.2)  # window for a second dial to sneak in
                gate.set()
                assert _wait_for(lambda: registrar._client is not None, 5.0)
                assert len(dials) == 1
                assert "127.0.0.1:7002" in _member_addresses(registry)
            finally:
                stop.set()
                gate.set()
                registrar.close()

    def test_stop_event_suppresses_redial(self):
        stop = threading.Event()
        stop.set()
        registrar = _AgentRegistrar(
            "127.0.0.1:1", "127.0.0.1:7003", "thread", "", stop
        )
        registrar._on_lost()  # must not spawn a dial at a dead address
        time.sleep(0.1)
        assert registrar._client is None

    def test_redial_reregisters_after_inprocess_registry_restart(self):
        port = _free_port()
        stop = threading.Event()
        registrar = None
        try:
            with ClusterRegistry(port=port, token="") as registry:
                registrar = _AgentRegistrar(
                    registry.address, "127.0.0.1:7004", "thread", "", stop
                )
                registrar.start()
                assert "127.0.0.1:7004" in _member_addresses(registry)
            # Context exit closed the registry: the registrar's on_lost
            # fires and the backoff loop starts knocking.
            with ClusterRegistry(port=port, token="") as reborn:
                assert _wait_for(
                    lambda: "127.0.0.1:7004" in _member_addresses(reborn)
                ), "agent never re-registered with the restarted registry"
        finally:
            stop.set()
            if registrar is not None:
                registrar.close()


class TestAgentRejoinsRestartedRegistry:
    def test_spawned_agent_reregisters_after_registry_restart(self):
        # End-to-end: the registrar lives inside a real agent process;
        # the registry it joined dies and is reborn on the same port.
        port = _free_port()
        popen = None
        try:
            with ClusterRegistry(port=port, token="") as registry:
                popen, host, agent_port = spawn_agent(
                    token="", registry=registry.address
                )
                agent_address = f"tcp://{host}:{agent_port}"
                assert _wait_for(
                    lambda: agent_address in _member_addresses(registry)
                ), "agent never registered at startup"
            with ClusterRegistry(port=port, token="") as reborn:
                assert _wait_for(
                    lambda: agent_address in _member_addresses(reborn)
                ), "agent never rejoined the restarted registry"
                assert [m.kind for m in reborn.members()] == ["thread"]
        finally:
            if popen is not None:
                popen.terminate()
                popen.wait(timeout=10)
