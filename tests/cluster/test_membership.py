"""Live pool membership: grow, drain, and churn without losing a verdict.

Two layers under test.  The direct API
(:meth:`~repro.service.MonitorService.add_endpoint` /
:meth:`~repro.service.MonitorService.retire_endpoint`) must grow and
drain a running pool with sessions live on it.  Wired through a
:class:`~repro.cluster.ClusterRegistry`, the same operations must happen
*by themselves* on membership events — join grows the pool, a graceful
leave drains, a death trips the recovery bookkeeping — and a workload
riding through the churn must finish with verdicts bit-identical to an
uninterrupted in-process replay, with every outstanding counter settled.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.errors import ServiceError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,60) b")
EPSILON = 2
TOKEN = "membership-secret"
TICKS = 24
SESSIONS = 4


def _stream(seed: int) -> list:
    """One deterministic multi-segment stream: (op, args) feed script."""
    rng = random.Random(seed)
    script = []
    for t in range(1, TICKS + 1):
        props = {"a"} if rng.random() < 0.8 else {"a", "b"}
        script.append(("observe", ("P1", t, props)))
        if (t + seed) % 5 == 0:
            script.append(
                ("observe", ("P2", t, {"b"} if (t + seed) % 10 == 0 else set()))
            )
        if t % 6 == 0:
            script.append(("advance", (t,)))
    return script


def _replay(target, script):
    for op, args in script:
        if op == "observe":
            target.observe(*args)
        else:
            target.advance_to(*args)
    return target.finish()


def _reference_counts() -> dict:
    return {
        seed: _replay(OnlineMonitor(SPEC, epsilon=EPSILON), _stream(seed)).verdict_counts
        for seed in range(SESSIONS)
    }


def _poll(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def _live_count(service) -> int:
    return sum(1 for dead in service.dead_endpoints() if not dead)


class TestDirectMembershipApi:
    def test_add_endpoint_joins_placement_immediately(self):
        with MonitorService(workers=2) as service:
            index = service.add_endpoint("local")
            assert index == 2
            assert len(service.endpoints()) == 3
            assert service.outstanding() == [0, 0, 0]
            assert service.dead_endpoints() == [False, False, False]
            sessions = [
                service.open_session(SPEC, epsilon=EPSILON) for _ in range(6)
            ]
            placed = {session.worker_index for session in sessions}
            assert placed == {0, 1, 2}, f"new endpoint skipped: {placed}"
            for session in sessions:
                session.close()

    def test_retire_endpoint_migrates_sessions_off(self):
        with MonitorService(workers=3) as service:
            handles = {
                seed: service.open_session(SPEC, epsilon=EPSILON)
                for seed in range(SESSIONS)
            }
            scripts = {seed: _stream(seed) for seed in handles}
            # Feed the first half, retire a loaded endpoint mid-stream,
            # feed the rest: verdicts must come out untouched.
            half = TICKS // 2
            for seed, handle in handles.items():
                for op, args in scripts[seed]:
                    when = args[1] if op == "observe" else args[0]
                    if when > half:
                        break  # the script is time-ordered
                    if op == "observe":
                        handle.observe(*args)
                    else:
                        handle.advance_to(*args)
            victim = handles[0].worker_index
            service.retire_endpoint(victim, timeout=20.0)
            assert service.dead_endpoints()[victim] is True
            service.retire_endpoint(victim)  # idempotent
            for seed, handle in handles.items():
                assert handle.worker_index != victim
            migrated = sum(handle.migrations for handle in handles.values())
            assert migrated >= 1
            results = {}
            for seed, handle in handles.items():
                for op, args in scripts[seed]:
                    when = args[1] if op == "observe" else args[0]
                    if when <= half:
                        continue
                    if op == "observe":
                        handle.observe(*args)
                    else:
                        handle.advance_to(*args)
                results[seed] = handle.finish()
            expected = _reference_counts()
            for seed in handles:
                assert results[seed].verdict_counts == expected[seed]
            assert sum(handle.recoveries for handle in handles.values()) == 0

    def test_retiring_the_last_live_endpoint_is_refused(self):
        with MonitorService(workers=1) as service:
            with pytest.raises(ServiceError, match="last"):
                service.retire_endpoint(0)

    def test_add_endpoint_after_close_refused(self):
        service = MonitorService(workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.add_endpoint("local")


@pytest.fixture
def registry_process():
    from repro.cluster import spawn_registry

    popen, host, port = spawn_registry(token=TOKEN)
    try:
        yield f"tcp://{host}:{port}"
    finally:
        popen.kill()
        popen.wait(timeout=10)
        popen.stdout.close()


def _close_agent(agent) -> None:
    popen, _, _ = agent
    popen.kill()
    popen.wait(timeout=10)
    popen.stdout.close()


class TestRegistryDrivenMembership:
    def test_churn_join_leave_rejoin_bit_identical(self, registry_process):
        """The tentpole scenario: an elastic-only pool discovers a
        pre-registered agent, grows on a late join, drains a graceful
        SIGTERM leave, and absorbs a rejoin on the *same address* — all
        mid-workload, with verdicts bit-identical to an in-process
        replay, zero recoveries, and settled counters."""
        expected = _reference_counts()
        agents = [spawn_agent(token=TOKEN, registry=registry_process)]
        first_port = agents[0][2]
        try:
            with MonitorService(registry=registry_process, token=TOKEN) as service:
                # The watch snapshot alone built the pool: no endpoint
                # list, no workers= count anywhere.
                assert len(service.endpoints()) == 1
                handles = {
                    seed: service.open_session(SPEC, epsilon=EPSILON)
                    for seed in range(SESSIONS)
                }
                scripts = {seed: _stream(seed) for seed in handles}
                cursors = {seed: 0 for seed in handles}

                def feed_through(tick: int) -> None:
                    for seed, handle in handles.items():
                        script = scripts[seed]
                        cursor = cursors[seed]
                        while cursor < len(script):
                            op, args = script[cursor]
                            when = args[1] if op == "observe" else args[0]
                            if when > tick:
                                break
                            if op == "observe":
                                handle.observe(*args)
                            else:
                                handle.advance_to(*args)
                            cursor += 1
                        cursors[seed] = cursor

                feed_through(6)
                # Join: a second agent announces itself mid-workload.
                agents.append(spawn_agent(token=TOKEN, registry=registry_process))
                _poll(
                    lambda: len(service.endpoints()) == 2,
                    10.0,
                    "the join to grow the pool",
                )
                feed_through(12)
                # Graceful leave: SIGTERM → registry leave → drain.  The
                # first agent hosted every session at open time, so the
                # drain must migrate them (never recover them).
                agents[0][0].terminate()
                first = f"tcp://{agents[0][1]}:{first_port}"
                _poll(
                    lambda: service.dead_endpoints()[
                        service.endpoints().index(first)
                    ],
                    20.0,
                    "the leave to drain the first agent",
                )
                agents[0][0].wait(timeout=10)
                feed_through(18)
                # Rejoin: a fresh agent on the *same* address (the host
                # came back).  The tombstoned slot stays dead; the rejoin
                # must land in a new live slot.
                agents.append(
                    spawn_agent(
                        port=first_port, token=TOKEN, registry=registry_process
                    )
                )
                _poll(
                    lambda: _live_count(service) == 2,
                    10.0,
                    "the rejoin to restore two live endpoints",
                )
                feed_through(TICKS)
                results = {
                    seed: handle.finish() for seed, handle in handles.items()
                }
                for seed in handles:
                    assert results[seed].verdict_counts == expected[seed], (
                        f"stream {seed} diverged through the churn"
                    )
                assert sum(h.recoveries for h in handles.values()) == 0
                assert sum(h.migrations for h in handles.values()) >= 1
                _poll(
                    lambda: not any(service.outstanding()),
                    15.0,
                    "outstanding counters to settle",
                )
        finally:
            for agent in agents:
                _close_agent(agent)

    def test_death_event_marks_the_endpoint_dead(self, registry_process):
        """A SIGKILLed agent's registry death event must trip the
        service's recovery bookkeeping promptly (no waiting out the full
        heartbeat silence), while work elsewhere rides on unharmed."""
        agents = [
            spawn_agent(token=TOKEN, registry=registry_process) for _ in range(2)
        ]
        try:
            with MonitorService(registry=registry_process, token=TOKEN) as service:
                assert len(service.endpoints()) == 2
                session = service.open_session(SPEC, epsilon=EPSILON)
                survivor_index = session.worker_index
                victim_index = 1 - survivor_index
                victim_address = service.endpoints()[victim_index]
                victim = next(
                    agent
                    for agent in agents
                    if f"tcp://{agent[1]}:{agent[2]}" == victim_address
                )
                victim[0].kill()
                _poll(
                    lambda: service.dead_endpoints()[victim_index],
                    10.0,
                    "the death event to mark the endpoint dead",
                )
                result = _replay(session, _stream(0))
                assert result.verdict_counts == _reference_counts()[0]
                assert session.recoveries == 0
        finally:
            for agent in agents:
                _close_agent(agent)


class TestRegistryRedial:
    def test_service_rearms_watch_after_registry_restart(self):
        """Losing the registry must not degrade the pool to a static
        one: the service re-dials the stored address with capped backoff
        and re-arms its watch, so an agent that joins the *restarted*
        registry still grows the pool."""
        from repro.cluster import spawn_registry

        popen, host, port = spawn_registry(token=TOKEN)
        address = f"tcp://{host}:{port}"
        agents = []
        restarted = None
        try:
            agents.append(spawn_agent(token=TOKEN, registry=address))
            with MonitorService(registry=address, token=TOKEN) as service:
                assert len(service.endpoints()) == 1

                popen.kill()
                popen.wait(timeout=10)
                popen.stdout.close()
                popen = None
                time.sleep(0.3)  # let on_lost fire and the redial start

                restarted = spawn_registry(host=host, port=port, token=TOKEN)
                # The first agent's own registry lease died with the old
                # process (agents do not re-dial) — only the new agent
                # registers with the restarted registry.
                agents.append(spawn_agent(token=TOKEN, registry=address))
                _poll(
                    lambda: len(service.endpoints()) == 2,
                    20.0,
                    "the re-armed watch to absorb the new agent",
                )

                # The grown pool serves work end to end.
                session = service.open_session(SPEC, epsilon=EPSILON)
                result = _replay(session, _stream(0))
                assert result.verdict_counts == _reference_counts()[0]
        finally:
            if popen is not None:
                popen.kill()
                popen.wait(timeout=10)
                popen.stdout.close()
            if restarted is not None:
                restarted[0].kill()
                restarted[0].wait(timeout=10)
                restarted[0].stdout.close()
            for agent in agents:
                _close_agent(agent)
