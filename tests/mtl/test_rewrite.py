"""Unit tests for formula simplification and negation normal form."""

from hypothesis import given

from repro.mtl import ast
from repro.mtl.interval import Interval
from repro.mtl.rewrite import simplify, to_nnf
from repro.mtl.semantics import satisfies

from tests.conftest import formulas, timed_traces


class TestSimplify:
    def test_constant_folding(self):
        phi = ast.And((ast.TRUE, ast.atom("p")))
        assert simplify(phi) == ast.atom("p")

    def test_until_with_false_right(self):
        phi = ast.Until(ast.atom("a"), ast.FALSE, Interval.bounded(0, 5))
        assert simplify(phi) == ast.FALSE

    def test_until_with_true_right_zero_start(self):
        phi = ast.Until(ast.atom("a"), ast.TRUE, Interval.bounded(0, 5))
        assert simplify(phi) == ast.TRUE

    def test_until_with_true_left_becomes_eventually(self):
        phi = ast.Until(ast.TRUE, ast.atom("b"), Interval.bounded(0, 5))
        assert simplify(phi) == ast.eventually(ast.atom("b"), Interval.bounded(0, 5))

    def test_until_with_false_left_zero_start(self):
        phi = ast.Until(ast.FALSE, ast.atom("b"), Interval.bounded(0, 5))
        assert simplify(phi) == ast.atom("b")

    def test_until_with_false_left_positive_start(self):
        phi = ast.Until(ast.FALSE, ast.atom("b"), Interval.bounded(2, 5))
        assert simplify(phi) == ast.FALSE

    def test_nested_negations(self):
        phi = ast.Not(ast.Not(ast.Not(ast.atom("p"))))
        assert simplify(phi) == ast.lnot(ast.atom("p"))

    @given(formulas())
    def test_idempotent(self, phi):
        once = simplify(phi)
        assert simplify(once) == once

    @given(timed_traces(), formulas(max_depth=2))
    def test_preserves_semantics(self, trace, phi):
        assert satisfies(trace, phi) == satisfies(trace, simplify(phi))


class TestNNF:
    def test_pushes_through_and(self):
        phi = ast.Not(ast.And((ast.atom("a"), ast.atom("b"))))
        result = to_nnf(phi)
        assert result == ast.lor(ast.lnot(ast.atom("a")), ast.lnot(ast.atom("b")))

    def test_pushes_through_or(self):
        phi = ast.Not(ast.Or((ast.atom("a"), ast.atom("b"))))
        result = to_nnf(phi)
        assert result == ast.land(ast.lnot(ast.atom("a")), ast.lnot(ast.atom("b")))

    def test_always_eventually_duality(self):
        interval = Interval.bounded(0, 5)
        phi = ast.Not(ast.always(ast.atom("p"), interval))
        assert to_nnf(phi) == ast.eventually(ast.lnot(ast.atom("p")), interval)

    def test_eventually_always_duality(self):
        interval = Interval.bounded(2, 7)
        phi = ast.Not(ast.eventually(ast.atom("p"), interval))
        assert to_nnf(phi) == ast.always(ast.lnot(ast.atom("p")), interval)

    def test_negated_until_stays(self):
        phi = ast.Not(ast.until(ast.atom("a"), ast.atom("b")))
        result = to_nnf(phi)
        assert isinstance(result, ast.Not)
        assert isinstance(result.operand, ast.Until)

    def test_double_negation_eliminated(self):
        phi = ast.Not(ast.Not(ast.atom("p")))
        assert to_nnf(phi) == ast.atom("p")

    @given(timed_traces(), formulas(max_depth=2))
    def test_preserves_semantics(self, trace, phi):
        assert satisfies(trace, phi) == satisfies(trace, to_nnf(phi))

    @given(formulas())
    def test_negations_only_on_atoms_or_until(self, phi):
        result = to_nnf(phi)
        for node in result.walk():
            if isinstance(node, ast.Not):
                assert isinstance(node.operand, (ast.Atom, ast.Until))
