"""Unit tests for the finite-trace MTL semantics."""

import pytest
from hypothesis import given

from repro.errors import TraceError
from repro.mtl import ast
from repro.mtl.interval import Interval
from repro.mtl.semantics import evaluate, satisfies
from repro.mtl.trace import State, TimedTrace

from tests.conftest import formulas, timed_traces


def trace_of(*entries: tuple[str, int]) -> TimedTrace:
    """Build a trace from ("a b", time) entries."""
    states = [State(frozenset(props.split())) if props else State(frozenset()) for props, _ in entries]
    times = [t for _, t in entries]
    return TimedTrace(states, times)


class TestAtoms:
    def test_atom_true_in_first_state(self):
        assert satisfies(trace_of(("p", 0)), ast.atom("p"))

    def test_atom_false(self):
        assert not satisfies(trace_of(("q", 0)), ast.atom("p"))

    def test_constants(self):
        trace = trace_of(("", 0))
        assert satisfies(trace, ast.TRUE)
        assert not satisfies(trace, ast.FALSE)

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            satisfies(TimedTrace.empty(), ast.atom("p"))

    def test_position_out_of_range(self):
        with pytest.raises(TraceError):
            evaluate(trace_of(("p", 0)), ast.atom("p"), 3)


class TestBoolean:
    def test_negation(self):
        assert satisfies(trace_of(("q", 0)), ast.lnot(ast.atom("p")))

    def test_conjunction(self):
        trace = trace_of(("p q", 0))
        assert satisfies(trace, ast.land(ast.atom("p"), ast.atom("q")))
        assert not satisfies(trace, ast.land(ast.atom("p"), ast.atom("r")))

    def test_disjunction(self):
        trace = trace_of(("p", 0))
        assert satisfies(trace, ast.lor(ast.atom("r"), ast.atom("p")))


class TestEventually:
    def test_witness_inside_window(self):
        trace = trace_of(("", 0), ("p", 3))
        assert satisfies(trace, ast.eventually(ast.atom("p"), Interval.bounded(0, 5)))

    def test_witness_outside_window(self):
        trace = trace_of(("", 0), ("p", 7))
        assert not satisfies(trace, ast.eventually(ast.atom("p"), Interval.bounded(0, 5)))

    def test_strong_semantics_no_witness_is_false(self):
        trace = trace_of(("", 0), ("", 1))
        assert not satisfies(trace, ast.eventually(ast.atom("p"), Interval.bounded(0, 100)))

    def test_window_start_excludes_early_witness(self):
        trace = trace_of(("p", 0), ("", 5))
        assert not satisfies(trace, ast.eventually(ast.atom("p"), Interval.bounded(2, 9)))

    def test_offsets_relative_to_evaluation_point(self):
        trace = trace_of(("", 10), ("p", 13))
        assert satisfies(trace, ast.eventually(ast.atom("p"), Interval.bounded(0, 5)))

    def test_at_later_position(self):
        trace = trace_of(("", 0), ("", 6), ("p", 8))
        assert evaluate(trace, ast.eventually(ast.atom("p"), Interval.bounded(0, 5)), 1)


class TestAlways:
    def test_weak_semantics_vacuous_is_true(self):
        trace = trace_of(("", 0))
        assert satisfies(trace, ast.always(ast.atom("p"), Interval.bounded(5, 9)))

    def test_all_inside_window(self):
        trace = trace_of(("p", 0), ("p", 2), ("q", 8))
        assert satisfies(trace, ast.always(ast.atom("p"), Interval.bounded(0, 5)))

    def test_violation_inside_window(self):
        trace = trace_of(("p", 0), ("q", 2))
        assert not satisfies(trace, ast.always(ast.atom("p"), Interval.bounded(0, 5)))

    def test_paper_example_strong_weak_contrast(self):
        """F_I p is False and G_I p is True on a trace with no p and no
        states in I beyond the end — the paper's Section II-B example."""
        trace = trace_of(("", 0), ("", 1))
        interval = Interval.bounded(5, 9)
        assert not satisfies(trace, ast.eventually(ast.atom("p"), interval))
        assert satisfies(trace, ast.always(ast.atom("p"), interval))


class TestUntil:
    def test_simple_until(self):
        trace = trace_of(("a", 0), ("a", 1), ("b", 2))
        assert satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5)))

    def test_witness_time_out_of_window(self):
        trace = trace_of(("a", 0), ("a", 1), ("b", 9))
        assert not satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5)))

    def test_left_fails_before_witness(self):
        trace = trace_of(("a", 0), ("c", 1), ("b", 2))
        assert not satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5)))

    def test_immediate_witness_ignores_left(self):
        trace = trace_of(("b", 0), ("c", 1))
        assert satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5)))

    def test_no_witness_is_false(self):
        trace = trace_of(("a", 0), ("a", 1))
        assert not satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5)))

    def test_same_timestamp_positions(self):
        trace = trace_of(("a", 0), ("a", 0), ("b", 0))
        assert satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 1)))

    def test_left_must_hold_at_same_time_earlier_positions(self):
        trace = trace_of(("a", 0), ("c", 2), ("b", 2))
        assert not satisfies(
            trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 5))
        )

    def test_fig3_satisfying_order(self):
        trace = trace_of(("a", 1), ("a", 2), ("b", 4), ("", 5))
        assert satisfies(trace, ast.until(ast.atom("a"), ast.atom("b"), Interval.bounded(0, 6)))


class TestDerivedEquivalences:
    @given(timed_traces(), formulas(max_depth=2))
    def test_eventually_equals_true_until(self, trace, phi):
        interval = Interval.bounded(0, 6)
        lhs = satisfies(trace, ast.eventually(phi, interval))
        rhs = satisfies(trace, ast.Until(ast.TRUE, phi, interval))
        assert lhs == rhs

    @given(timed_traces(), formulas(max_depth=2))
    def test_always_is_dual_of_eventually(self, trace, phi):
        interval = Interval.bounded(0, 6)
        lhs = satisfies(trace, ast.always(phi, interval))
        rhs = not satisfies(trace, ast.eventually(ast.lnot(phi), interval))
        assert lhs == rhs

    @given(timed_traces(), formulas(max_depth=2))
    def test_negation_involution(self, trace, phi):
        assert satisfies(trace, phi) != satisfies(trace, ast.Not(phi))
