"""Unit tests for the MTL text parser."""

import pytest
from hypothesis import given

from repro.errors import ParseError
from repro.mtl import ast
from repro.mtl.interval import INF, Interval
from repro.mtl.parser import parse

from tests.conftest import formulas


class TestAtoms:
    def test_plain_atom(self):
        assert parse("p") == ast.atom("p")

    def test_dotted_atom(self):
        assert parse("apr.redeem") == ast.atom("apr.redeem")

    def test_atom_with_arguments(self):
        assert parse("apr.redeem(bob)") == ast.atom("apr.redeem(bob)")

    def test_atom_with_two_arguments(self):
        assert parse("coin.declaration(alice, sb)") == ast.atom("coin.declaration(alice,sb)")

    def test_constants(self):
        assert parse("true") == ast.TRUE
        assert parse("false") == ast.FALSE


class TestOperators:
    def test_negation(self):
        assert parse("!p") == ast.lnot(ast.atom("p"))

    def test_conjunction(self):
        assert parse("a & b & c") == ast.land(ast.atom("a"), ast.atom("b"), ast.atom("c"))

    def test_disjunction(self):
        assert parse("a | b") == ast.lor(ast.atom("a"), ast.atom("b"))

    def test_double_symbols_accepted(self):
        assert parse("a && b") == parse("a & b")
        assert parse("a || b") == parse("a | b")

    def test_implication(self):
        assert parse("a -> b") == ast.implies(ast.atom("a"), ast.atom("b"))

    def test_implication_right_associative(self):
        assert parse("a -> b -> c") == ast.implies(
            ast.atom("a"), ast.implies(ast.atom("b"), ast.atom("c"))
        )

    def test_precedence_and_over_or(self):
        phi = parse("a & b | c")
        assert phi == ast.lor(ast.land(ast.atom("a"), ast.atom("b")), ast.atom("c"))

    def test_parentheses(self):
        phi = parse("a & (b | c)")
        assert phi == ast.land(ast.atom("a"), ast.lor(ast.atom("b"), ast.atom("c")))


class TestTemporal:
    def test_until_with_interval(self):
        phi = parse("p U[0,8) q")
        assert phi == ast.until(ast.atom("p"), ast.atom("q"), Interval.bounded(0, 8))

    def test_until_without_interval(self):
        phi = parse("p U q")
        assert phi == ast.until(ast.atom("p"), ast.atom("q"))

    def test_eventually(self):
        assert parse("F[0,3) p") == ast.eventually(ast.atom("p"), Interval.bounded(0, 3))

    def test_always(self):
        assert parse("G[2,9) p") == ast.always(ast.atom("p"), Interval.bounded(2, 9))

    def test_unbounded_interval(self):
        phi = parse("F[5,inf) p")
        assert isinstance(phi, ast.Eventually)
        assert phi.interval == Interval.unbounded(5)

    def test_untimed_temporal(self):
        phi = parse("G p")
        assert isinstance(phi, ast.Always)
        assert phi.interval == Interval.always()

    def test_nested_temporal_operators(self):
        phi = parse("G[0,9) F[0,3) p")
        assert phi == ast.always(
            ast.eventually(ast.atom("p"), Interval.bounded(0, 3)), Interval.bounded(0, 9)
        )

    def test_paper_example(self):
        phi = parse("!apr.redeem(bob) U[0,8) ban.redeem(alice)")
        assert phi == ast.until(
            ast.lnot(ast.atom("apr.redeem(bob)")),
            ast.atom("ban.redeem(alice)"),
            Interval.bounded(0, 8),
        )

    def test_fig4_formula(self):
        phi = parse("F[0,6) r -> (!p U[2,9) q)")
        expected = ast.implies(
            ast.eventually(ast.atom("r"), Interval.bounded(0, 6)),
            ast.until(ast.lnot(ast.atom("p")), ast.atom("q"), Interval.bounded(2, 9)),
        )
        assert phi == expected


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("p q")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("(a & b")

    def test_empty_interval_rejected(self):
        with pytest.raises(ParseError):
            parse("F[5,5) p")

    def test_reversed_interval_rejected(self):
        with pytest.raises(ParseError):
            parse("F[7,3) p")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse("a &")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse("a % b")

    def test_keyword_as_atom_rejected(self):
        with pytest.raises(ParseError):
            parse("inf")


class TestRoundTrip:
    @given(formulas())
    def test_print_parse_roundtrip(self, phi):
        """Printing then parsing reproduces the formula (up to smart-
        constructor normalisation, which printing already reflects)."""
        printed = str(phi)
        assert parse(printed) == phi
