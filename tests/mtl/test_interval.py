"""Unit tests for half-open integer intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormulaError
from repro.mtl.interval import INF, Interval

from tests.conftest import intervals


class TestConstruction:
    def test_bounded(self):
        interval = Interval.bounded(2, 9)
        assert interval.start == 2
        assert interval.end == 9

    def test_unbounded(self):
        interval = Interval.unbounded(5)
        assert interval.start == 5
        assert interval.is_unbounded()

    def test_always_covers_zero(self):
        assert 0 in Interval.always()

    def test_empty_interval_is_empty(self):
        assert Interval.empty().is_empty()

    def test_negative_start_rejected(self):
        with pytest.raises(FormulaError):
            Interval(-1, 5)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(FormulaError):
            Interval.bounded(5, 5)

    def test_non_integer_start_rejected(self):
        with pytest.raises(FormulaError):
            Interval("0", 5)  # type: ignore[arg-type]

    def test_bool_is_not_an_int(self):
        with pytest.raises(FormulaError):
            Interval(True, 5)  # type: ignore[arg-type]

    def test_negative_end_rejected(self):
        with pytest.raises(FormulaError):
            Interval(0, -3)


class TestMembership:
    def test_start_included(self):
        assert 2 in Interval.bounded(2, 9)

    def test_end_excluded(self):
        assert 9 not in Interval.bounded(2, 9)

    def test_interior(self):
        assert 5 in Interval.bounded(2, 9)

    def test_below_start(self):
        assert 1 not in Interval.bounded(2, 9)

    def test_unbounded_large_values(self):
        assert 10**9 in Interval.unbounded(3)

    def test_contains_method_matches_operator(self):
        interval = Interval.bounded(1, 4)
        for value in range(6):
            assert interval.contains(value) == (value in interval)


class TestShifting:
    def test_shift_down_basic(self):
        assert Interval.bounded(2, 9).shift_down(3) == Interval.bounded(0, 6)

    def test_shift_down_clamps_start(self):
        assert Interval.bounded(2, 9).shift_down(5) == Interval.bounded(0, 4)

    def test_shift_down_to_empty(self):
        assert Interval.bounded(2, 9).shift_down(20).is_empty()

    def test_shift_down_exactly_to_end(self):
        assert Interval.bounded(0, 6).shift_down(6).is_empty()

    def test_shift_down_unbounded_stays_unbounded(self):
        shifted = Interval.unbounded(5).shift_down(100)
        assert shifted.is_unbounded()
        assert shifted.start == 0

    def test_shift_down_zero_is_identity(self):
        interval = Interval.bounded(2, 9)
        assert interval.shift_down(0) == interval

    def test_shift_down_negative_rejected(self):
        with pytest.raises(FormulaError):
            Interval.bounded(0, 5).shift_down(-1)

    def test_shift_up_basic(self):
        assert Interval.bounded(2, 9).shift_up(3) == Interval.bounded(5, 12)

    def test_shift_up_unbounded(self):
        assert Interval.unbounded(2).shift_up(3) == Interval.unbounded(5)

    def test_shift_up_negative_rejected(self):
        with pytest.raises(FormulaError):
            Interval.bounded(0, 5).shift_up(-2)

    @given(intervals(), st.integers(min_value=0, max_value=20))
    def test_shift_down_membership(self, interval, tau):
        """x in (I - tau) iff (x + tau) in I, for x beyond the clamp point."""
        shifted = interval.shift_down(tau)
        for x in range(0, 30):
            if x + tau >= interval.start or x > 0:
                # Above the clamp, membership must correspond exactly.
                if x >= shifted.start and x > 0:
                    assert (x in shifted) == (x + tau in interval)

    @given(intervals(), st.integers(min_value=0, max_value=10))
    def test_shift_roundtrip_preserves_width_when_unclamped(self, interval, tau):
        if interval.is_unbounded() or interval.start < tau:
            return
        assert interval.shift_down(tau).shift_up(tau) == interval


class TestOverlap:
    def test_overlapping(self):
        assert Interval.bounded(0, 5).overlaps(Interval.bounded(3, 8))

    def test_touching_do_not_overlap(self):
        assert not Interval.bounded(0, 5).overlaps(Interval.bounded(5, 8))

    def test_nested(self):
        assert Interval.bounded(0, 10).overlaps(Interval.bounded(3, 4))

    def test_empty_never_overlaps(self):
        assert not Interval.empty().overlaps(Interval.always())

    @given(intervals(), intervals())
    def test_overlap_symmetric(self, left, right):
        assert left.overlaps(right) == right.overlaps(left)


class TestPresentation:
    def test_str_bounded(self):
        assert str(Interval.bounded(2, 9)) == "[2,9)"

    def test_str_unbounded(self):
        assert str(Interval.unbounded(3)) == "[3,inf)"

    def test_hashable(self):
        assert len({Interval.bounded(0, 5), Interval.bounded(0, 5)}) == 1
