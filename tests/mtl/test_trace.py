"""Unit tests for states and timed traces."""

import pytest
from hypothesis import given

from repro.errors import TraceError
from repro.mtl.trace import EMPTY_STATE, State, TimedTrace

from tests.conftest import timed_traces


class TestState:
    def test_of_constructor(self):
        state = State.of("a", "b", x=3)
        assert "a" in state and "b" in state
        assert state.valuation["x"] == 3

    def test_with_props(self):
        state = State.of("a").with_props("b")
        assert "a" in state and "b" in state

    def test_equality_includes_valuation(self):
        assert State.of("a", x=1) != State.of("a", x=2)
        assert State.of("a", x=1) == State.of("a", x=1)

    def test_hash_consistent_with_eq(self):
        assert len({State.of("a", x=1), State.of("a", x=1)}) == 1

    def test_empty_state(self):
        assert not EMPTY_STATE.props

    def test_str(self):
        assert str(State.of("b", "a")) == "{a,b}"


class TestTimedTraceConstruction:
    def test_from_pairs(self):
        trace = TimedTrace.from_pairs([(State.of("a"), 1), (State.of("b"), 3)])
        assert len(trace) == 2
        assert trace.time(1) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            TimedTrace([State.of("a")], [1, 2])

    def test_decreasing_times_rejected(self):
        with pytest.raises(TraceError):
            TimedTrace([State.of("a"), State.of("b")], [5, 3])

    def test_equal_times_allowed(self):
        trace = TimedTrace([State.of("a"), State.of("b")], [5, 5])
        assert trace.duration() == 0

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            TimedTrace([State.of("a")], [-1])

    def test_non_integer_time_rejected(self):
        with pytest.raises(TraceError):
            TimedTrace([State.of("a")], [1.5])  # type: ignore[list-item]

    def test_empty_trace(self):
        trace = TimedTrace.empty()
        assert len(trace) == 0
        assert not trace


class TestAccess:
    def test_start_and_end_time(self):
        trace = TimedTrace([State.of("a"), State.of("b")], [2, 7])
        assert trace.start_time == 2
        assert trace.end_time == 7
        assert trace.duration() == 5

    def test_empty_trace_has_no_start(self):
        with pytest.raises(TraceError):
            TimedTrace.empty().start_time

    def test_iteration(self):
        trace = TimedTrace([State.of("a"), State.of("b")], [1, 2])
        pairs = list(trace)
        assert pairs[0] == (State.of("a"), 1)

    def test_suffix(self):
        trace = TimedTrace([State.of("a"), State.of("b"), State.of("c")], [1, 2, 3])
        suffix = trace.suffix(1)
        assert len(suffix) == 2
        assert suffix.start_time == 2

    def test_suffix_out_of_range(self):
        with pytest.raises(TraceError):
            TimedTrace.single(State.of("a"), 1).suffix(5)

    def test_prefix(self):
        trace = TimedTrace([State.of("a"), State.of("b")], [1, 2])
        assert len(trace.prefix(1)) == 1

    def test_append(self):
        trace = TimedTrace.single(State.of("a"), 1).append(State.of("b"), 4)
        assert len(trace) == 2
        assert trace.end_time == 4

    def test_concat(self):
        left = TimedTrace.single(State.of("a"), 1)
        right = TimedTrace.single(State.of("b"), 5)
        whole = left.concat(right)
        assert len(whole) == 2
        assert whole.times == (1, 5)

    @given(timed_traces())
    def test_suffix_concat_identity(self, trace):
        for i in range(len(trace) + 1):
            assert trace.prefix(i).concat(trace.suffix(i)) == trace

    @given(timed_traces())
    def test_hash_equal_traces(self, trace):
        clone = TimedTrace(trace.states, trace.times)
        assert trace == clone
        assert hash(trace) == hash(clone)
