"""Unit tests for the MTL AST and smart constructors."""

import pytest
from hypothesis import given

from repro.errors import FormulaError
from repro.mtl.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    Not,
    Or,
    PredicateAtom,
    Until,
    always,
    atom,
    eventually,
    implies,
    land,
    lnot,
    lor,
    until,
)
from repro.mtl.interval import Interval

from tests.conftest import formulas


class TestAtoms:
    def test_atom_name(self):
        assert atom("p").name == "p"

    def test_empty_name_rejected(self):
        with pytest.raises(FormulaError):
            atom("")

    def test_atom_equality(self):
        assert atom("p") == atom("p")
        assert atom("p") != atom("q")

    def test_atom_holds_in(self):
        assert atom("p").holds_in(frozenset({"p"}), {})
        assert not atom("p").holds_in(frozenset({"q"}), {})

    def test_predicate_atom_uses_valuation(self):
        rich = PredicateAtom("rich", lambda v: v.get("balance", 0) > 100)
        assert rich.holds_in(frozenset(), {"balance": 150})
        assert not rich.holds_in(frozenset(), {"balance": 50})

    def test_predicate_atom_requires_predicate(self):
        with pytest.raises(FormulaError):
            PredicateAtom("x", None)  # type: ignore[arg-type]

    def test_predicate_atom_equality_by_name(self):
        a = PredicateAtom("x", lambda v: True)
        b = PredicateAtom("x", lambda v: False)
        assert a == b


class TestNegation:
    def test_double_negation(self):
        assert lnot(lnot(atom("p"))) == atom("p")

    def test_negate_true(self):
        assert lnot(TRUE) == FALSE

    def test_negate_false(self):
        assert lnot(FALSE) == TRUE

    def test_negation_node(self):
        assert isinstance(lnot(atom("p")), Not)


class TestConjunction:
    def test_flattening(self):
        result = land(land(atom("a"), atom("b")), atom("c"))
        assert isinstance(result, And)
        assert len(result.operands) == 3

    def test_true_identity(self):
        assert land(TRUE, atom("a")) == atom("a")

    def test_false_absorbs(self):
        assert land(atom("a"), FALSE, atom("b")) == FALSE

    def test_deduplication(self):
        assert land(atom("a"), atom("a")) == atom("a")

    def test_contradiction_detected(self):
        assert land(atom("a"), lnot(atom("a"))) == FALSE

    def test_empty_is_true(self):
        assert land() == TRUE

    def test_raw_and_requires_two_operands(self):
        with pytest.raises(FormulaError):
            And((atom("a"),))

    def test_order_preserved(self):
        result = land(atom("b"), atom("a"))
        assert result.operands == (atom("b"), atom("a"))


class TestDisjunction:
    def test_false_identity(self):
        assert lor(FALSE, atom("a")) == atom("a")

    def test_true_absorbs(self):
        assert lor(atom("a"), TRUE) == TRUE

    def test_tautology_detected(self):
        assert lor(atom("a"), lnot(atom("a"))) == TRUE

    def test_flattening(self):
        result = lor(lor(atom("a"), atom("b")), atom("c"))
        assert isinstance(result, Or)
        assert len(result.operands) == 3

    def test_empty_is_false(self):
        assert lor() == FALSE


class TestImplication:
    def test_desugars_to_or(self):
        result = implies(atom("a"), atom("b"))
        assert result == lor(lnot(atom("a")), atom("b"))

    def test_true_antecedent(self):
        assert implies(TRUE, atom("b")) == atom("b")

    def test_false_antecedent(self):
        assert implies(FALSE, atom("b")) == TRUE

    def test_method_form(self):
        assert atom("a").implies(atom("b")) == implies(atom("a"), atom("b"))


class TestTemporal:
    def test_until_default_interval(self):
        u = until(atom("a"), atom("b"))
        assert isinstance(u, Until)
        assert u.interval == Interval.always()

    def test_until_empty_interval_is_false(self):
        assert until(atom("a"), atom("b"), Interval.empty()) == FALSE

    def test_eventually_constant_folding(self):
        assert eventually(FALSE) == FALSE
        # F_I true is NOT folded: on an empty remainder it must be false.
        assert isinstance(eventually(TRUE), Eventually)

    def test_always_constant_folding(self):
        assert always(TRUE) == TRUE
        # G_I false is NOT folded: on an empty remainder it must be true.
        assert isinstance(always(FALSE), Always)

    def test_eventually_empty_interval(self):
        assert eventually(atom("p"), Interval.empty()) == FALSE

    def test_always_empty_interval(self):
        assert always(atom("p"), Interval.empty()) == TRUE

    def test_operator_sugar(self):
        assert (atom("a") & atom("b")) == land(atom("a"), atom("b"))
        assert (atom("a") | atom("b")) == lor(atom("a"), atom("b"))
        assert (~atom("a")) == lnot(atom("a"))


class TestStructure:
    def test_size_counts_nodes(self):
        phi = until(atom("a"), land(atom("b"), atom("c")), Interval.bounded(0, 5))
        assert phi.size() == 5  # U, a, And, b, c

    def test_temporal_depth_flat(self):
        assert eventually(atom("p")).temporal_depth() == 1

    def test_temporal_depth_nested(self):
        phi = always(eventually(atom("p"), Interval.bounded(0, 3)))
        assert phi.temporal_depth() == 2

    def test_temporal_depth_boolean_does_not_count(self):
        phi = land(atom("a"), lnot(atom("b")))
        assert phi.temporal_depth() == 0

    def test_atoms_collected(self):
        phi = until(atom("a"), lor(atom("b"), lnot(atom("c"))))
        assert {a.name for a in phi.atoms()} == {"a", "b", "c"}

    def test_walk_visits_all(self):
        phi = land(atom("a"), eventually(atom("b")))
        names = [type(node).__name__ for node in phi.walk()]
        assert "And" in names and "Eventually" in names and names.count("Atom") == 2

    @given(formulas())
    def test_formulas_hashable_and_self_equal(self, phi):
        assert phi == phi
        hash(phi)

    @given(formulas())
    def test_size_positive(self, phi):
        assert phi.size() >= 1


class TestPrinting:
    def test_until_printing(self):
        phi = until(atom("a"), atom("b"), Interval.bounded(0, 8))
        assert str(phi) == "a U[0,8) b"

    def test_always_printing(self):
        assert str(always(atom("p"), Interval.bounded(0, 5))) == "G[0,5) p"

    def test_nested_parenthesised(self):
        phi = eventually(land(atom("a"), atom("b")), Interval.bounded(0, 3))
        assert str(phi) == "F[0,3) (a & b)"
