"""Formula interning (hash-consing): identity, pickling, and semantics.

The hot monitoring loop keys residual dicts and progression memos on
interned formulas; these tests pin the interning contract — smart
constructors return canonical instances, direct construction still
compares structurally, pickling re-interns, and interning never changes
a verdict (the differential property lives in
``tests/monitor/test_differential.py::test_interned_equals_structural``).
"""

from __future__ import annotations

import gc
import pickle

from repro.mtl.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Eventually,
    Formula,
    Not,
    Or,
    PredicateAtom,
    Until,
    atom,
    eventually,
    intern_formula,
    intern_id,
    interned_count,
    land,
    lnot,
    lor,
    until,
)
from repro.mtl.interval import Interval
from repro.mtl.parser import parse


def _module_level_predicate(valuation) -> bool:
    return True


def structural_clone(formula: Formula) -> Formula:
    """Rebuild a formula through raw constructors, bypassing interning."""
    if isinstance(formula, (type(TRUE), type(FALSE))):
        return type(formula)()
    if isinstance(formula, PredicateAtom):
        return PredicateAtom(formula.name, formula.predicate)
    if isinstance(formula, Atom):
        return Atom(formula.name)
    if isinstance(formula, Not):
        return Not(structural_clone(formula.operand))
    if isinstance(formula, And):
        return And(tuple(structural_clone(op) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(structural_clone(op) for op in formula.operands))
    if isinstance(formula, Until):
        return Until(
            structural_clone(formula.left),
            structural_clone(formula.right),
            formula.interval,
        )
    if isinstance(formula, Eventually):
        return Eventually(structural_clone(formula.operand), formula.interval)
    return type(formula)(structural_clone(formula.operand), formula.interval)


class TestConstructorInterning:
    def test_atoms_are_shared(self):
        assert atom("p") is atom("p")
        assert atom("p") is not atom("q")

    def test_composites_are_shared(self):
        a = land(atom("p"), eventually(atom("q"), Interval.bounded(0, 5)))
        b = land(atom("p"), eventually(atom("q"), Interval.bounded(0, 5)))
        assert a is b

    def test_parser_output_is_interned(self):
        assert parse("G[0,4) (a | b)") is parse("G[0,4) (a | b)")

    def test_operator_sugar_is_interned(self):
        assert (atom("a") & atom("b")) is land(atom("a"), atom("b"))
        assert (~atom("a")) is lnot(atom("a"))

    def test_constants_are_singletons(self):
        assert lnot(TRUE) is FALSE
        assert land() is TRUE
        assert lor() is FALSE


class TestStructuralCompatibility:
    def test_direct_construction_compares_structurally(self):
        direct = Not(Atom("p"))
        assert direct == lnot(atom("p"))
        assert hash(direct) == hash(lnot(atom("p")))
        assert direct is not lnot(atom("p"))

    def test_intern_formula_canonicalizes_deep_trees(self):
        direct = And((Atom("p"), Until(Atom("a"), Atom("b"), Interval.bounded(0, 4))))
        canonical = intern_formula(direct)
        assert canonical == direct
        assert canonical is intern_formula(structural_clone(direct))
        assert canonical is land(atom("p"), until(atom("a"), atom("b"), Interval.bounded(0, 4)))

    def test_intern_formula_idempotent(self):
        f = parse("(F[0,5) a) & (F[0,9) b)")
        assert intern_formula(f) is f

    def test_atom_vs_predicate_atom_stay_distinct(self):
        plain = atom("p")
        predicate = intern_formula(PredicateAtom("p", lambda v: True))
        assert plain != predicate
        assert plain is not predicate

    def test_predicate_atoms_intern_by_name(self):
        first = intern_formula(PredicateAtom("payoff", lambda v: True))
        second = intern_formula(PredicateAtom("payoff", lambda v: False))
        assert first is second  # names identify the proposition (documented)


class TestInternIds:
    def test_ids_are_unique_and_stable(self):
        f = parse("a U[0,6) b")
        g = parse("F[0,8) b")
        assert intern_id(f) == intern_id(f)
        assert intern_id(f) != intern_id(g)
        assert intern_id(structural_clone(f)) == intern_id(f)

    def test_ids_give_a_deterministic_order(self):
        specs = [parse("a"), parse("F[0,3) b"), parse("G[0,4) (a | b)")]
        by_id = sorted(specs, key=intern_id)
        assert sorted(reversed(specs), key=intern_id) == by_id


class TestPickling:
    def test_unpickle_reinterns(self):
        f = parse("(F[0,5) a) & (G[0,9) (b | c))")
        assert pickle.loads(pickle.dumps(f)) is f

    def test_unpickled_direct_nodes_come_back_canonical(self):
        direct = Not(Atom("p"))
        restored = pickle.loads(pickle.dumps(direct))
        assert restored == direct
        assert restored is lnot(atom("p"))

    def test_predicate_atom_pickles_with_predicate(self):
        # Module-level predicates pickle (closures never did, pre- or
        # post-interning); the restored node re-interns by name.
        node = intern_formula(PredicateAtom("probe", _module_level_predicate))
        restored = pickle.loads(pickle.dumps(node))
        assert restored is node
        assert restored.predicate is _module_level_predicate

    def test_carried_dict_roundtrip_preserves_counts(self):
        carried = {parse("F[0,5) a"): 3, parse("G[0,2) b"): 1}
        restored = pickle.loads(pickle.dumps(carried))
        assert restored == carried
        assert all(key is pickle.loads(pickle.dumps(key)) for key in restored)


class TestLifecycle:
    def test_unreferenced_formulas_are_collected(self):
        before = interned_count()
        bulk = [atom(f"gc_probe_{i}") for i in range(200)]
        assert interned_count() >= before + 200
        del bulk
        gc.collect()
        assert interned_count() < before + 200
