"""Unit tests for the timed-automata core and network simulator."""

import pytest

from repro.errors import AutomatonError
from repro.timed_automata.automaton import (
    Channel,
    Edge,
    Location,
    Sync,
    TimedAutomaton,
)
from repro.timed_automata.network import Network


def toggler(name: str = "t") -> TimedAutomaton:
    return TimedAutomaton(
        name,
        [Location("Off"), Location("On")],
        [
            Edge("Off", "On", "on", guard=lambda c: c["x"] >= 2, resets=("x",)),
            Edge("On", "Off", "off", guard=lambda c: c["x"] >= 1, resets=("x",)),
        ],
        initial="Off",
        clocks=("x",),
    )


class TestAutomaton:
    def test_initial_state(self):
        auto = toggler()
        assert auto.location == "Off"
        assert auto.clocks == {"x": 0}

    def test_guard_blocks_until_time_passes(self):
        auto = toggler()
        assert not auto.outgoing({})
        auto.tick()
        auto.tick()
        assert len(auto.outgoing({})) == 1

    def test_fire_moves_and_resets(self):
        auto = toggler()
        auto.tick()
        auto.tick()
        edge = auto.outgoing({})[0]
        auto.fire(edge, {})
        assert auto.location == "On"
        assert auto.clocks["x"] == 0

    def test_fire_from_wrong_location_rejected(self):
        auto = toggler()
        bad_edge = auto.edges[1]  # On -> Off while still in Off
        with pytest.raises(AutomatonError):
            auto.fire(bad_edge, {})

    def test_reset_restores_initial(self):
        auto = toggler()
        auto.tick()
        auto.reset()
        assert auto.clocks["x"] == 0
        assert auto.location == "Off"

    def test_duplicate_location_rejected(self):
        with pytest.raises(AutomatonError):
            TimedAutomaton("z", [Location("A"), Location("A")], [], "A")

    def test_unknown_initial_rejected(self):
        with pytest.raises(AutomatonError):
            TimedAutomaton("z", [Location("A")], [], "B")

    def test_edge_to_unknown_location_rejected(self):
        with pytest.raises(AutomatonError):
            TimedAutomaton("z", [Location("A")], [Edge("A", "B", "go")], "A")

    def test_shared_guard(self):
        auto = TimedAutomaton(
            "s",
            [Location("A"), Location("B")],
            [Edge("A", "B", "go", shared_guard=lambda sh: sh.get("flag") == 1)],
            "A",
        )
        assert not auto.outgoing({"flag": 0})
        assert len(auto.outgoing({"flag": 1})) == 1

    def test_emitted_props_default_to_label(self):
        edge = Edge("A", "B", "go")
        assert edge.emitted_props({}) == ("go",)

    def test_emitted_props_static_and_dynamic(self):
        edge = Edge(
            "A", "B", "go",
            props=("p",),
            props_fn=lambda sh: ("q",) if sh.get("x") else (),
        )
        assert edge.emitted_props({"x": 1}) == ("p", "q")
        assert edge.emitted_props({}) == ("p",)


class TestSync:
    def test_matching_directions(self):
        channel = Channel("c")
        assert Sync(channel, "!").matches(Sync(channel, "?"))
        assert not Sync(channel, "!").matches(Sync(channel, "!"))

    def test_different_channels_do_not_match(self):
        assert not Sync(Channel("a"), "!").matches(Sync(Channel("b"), "?"))

    def test_bad_direction_rejected(self):
        with pytest.raises(AutomatonError):
            Sync(Channel("c"), ">")


class TestNetwork:
    def _sync_pair(self):
        channel = Channel("go")
        sender = TimedAutomaton(
            "s",
            [Location("A"), Location("B")],
            [Edge("A", "B", "send", sync=Sync(channel, "!"))],
            "A",
        )
        receiver = TimedAutomaton(
            "r",
            [Location("A"), Location("B")],
            [Edge("A", "B", "recv", sync=Sync(channel, "?"))],
            "A",
        )
        return Network([sender, receiver], seed=1)

    def test_sync_fires_both(self):
        network = self._sync_pair()
        fired = network.step()
        assert len(fired) == 2
        assert {f.automaton for f in fired} == {"s", "r"}
        assert network.sync_pairs == [(0, 1)]

    def test_sender_alone_cannot_fire(self):
        channel = Channel("go")
        sender = TimedAutomaton(
            "s",
            [Location("A"), Location("B")],
            [Edge("A", "B", "send", sync=Sync(channel, "!"))],
            "A",
        )
        network = Network([sender])
        assert network.step() == []

    def test_run_advances_time(self):
        network = self._sync_pair()
        network.run(5)
        assert network.time == 5

    def test_props_prefixed_with_automaton(self):
        network = self._sync_pair()
        fired = network.step()
        assert fired[0].props == frozenset({"s.send"})

    def test_duplicate_names_rejected(self):
        with pytest.raises(AutomatonError):
            Network([toggler("x"), toggler("x")])

    def test_seeded_determinism(self):
        a = self._sync_pair()
        b = self._sync_pair()
        a.run(3)
        b.run(3)
        assert [(f.automaton, f.label, f.global_time) for f in a.history] == [
            (f.automaton, f.label, f.global_time) for f in b.history
        ]
