"""Tests for the three UPPAAL benchmark models and trace generation."""

from repro.distributed.computation import DistributedComputation
from repro.timed_automata import fischer, gossip, train_gate
from repro.timed_automata.trace_gen import computation_from_network, generate


class TestTrainGate:
    def test_network_shape(self):
        network = train_gate.build_network(3)
        names = {a.name for a in network.automata}
        assert names == {"train1", "train2", "train3", "gate"}

    def test_simulation_produces_events(self):
        network = train_gate.build_network(2, seed=3)
        network.run(60)
        assert network.history

    def test_mutual_exclusion_of_bridge(self):
        """At most one train holds the bridge at any time."""
        network = train_gate.build_network(3, seed=5)
        holder = 0
        for _ in range(200):
            fired = network.step()
            for action in fired:
                if action.label == "cross":
                    assert network.shared["bridge"] != 0
            network.delay()
        assert network.shared["bridge"] in range(0, 4)

    def test_trains_eventually_cross(self):
        network = train_gate.build_network(2, seed=7)
        network.run(100)
        labels = {f.label for f in network.history}
        assert "cross" in labels and "leave" in labels


class TestFischer:
    def test_mutual_exclusion_invariant(self):
        """No two processes are simultaneously in the critical section."""
        network = fischer.build_network(3, seed=2)
        in_cs: set[str] = set()
        for _ in range(300):
            fired = network.step()
            for action in fired:
                if action.label == "cs":
                    in_cs.add(action.automaton)
                    assert len(in_cs) <= 1
                elif action.label == "exit":
                    in_cs.discard(action.automaton)
            network.delay()

    def test_processes_make_progress(self):
        network = fischer.build_network(2, seed=4)
        network.run(200)
        labels = [f.label for f in network.history]
        assert labels.count("cs") >= 1

    def test_cs_prop_emitted(self):
        network = fischer.build_network(1, seed=1)
        network.run(100)
        props = set().union(*(f.props for f in network.history))
        assert "p1.cs" in props


class TestGossip:
    def test_secrets_spread(self):
        network = gossip.build_network(3, seed=6)
        network.run(150)
        # After enough calls everyone should know several secrets.
        masks = [network.shared[f"know{i}"] for i in (1, 2, 3)]
        assert any(bin(m).count("1") >= 2 for m in masks)

    def test_secret_props_emitted(self):
        network = gossip.build_network(2, seed=8)
        network.run(100)
        props = set().union(*(f.props for f in network.history))
        assert any(".secret" in p for p in props)

    def test_fresh_secret_events(self):
        network = gossip.build_network(2, seed=9)
        network.run(100)
        labels = [f.label for f in network.history]
        assert "new_secret" in labels


class TestTraceGeneration:
    def test_generate_returns_computation(self):
        comp = generate(fischer.build_network, 2, 30, epsilon_ms=15, seed=1)
        assert isinstance(comp, DistributedComputation)
        assert comp.epsilon == 15
        assert len(comp) > 0

    def test_event_rate_scales_timestamps(self):
        slow = generate(fischer.build_network, 2, 30, epsilon_ms=15, events_per_second=5, seed=1)
        fast = generate(fischer.build_network, 2, 30, epsilon_ms=15, events_per_second=20, seed=1)
        assert slow.local_span()[1] > fast.local_span()[1]

    def test_per_process_monotone_local_times(self):
        comp = generate(gossip.build_network, 3, 40, epsilon_ms=10, clock_model="drift", seed=2)
        per_process: dict[str, list[int]] = {}
        for event in comp.events:
            per_process.setdefault(event.process, []).append(event.local_time)
        for times in per_process.values():
            assert times == sorted(times)

    def test_sync_pairs_become_messages(self):
        network = gossip.build_network(2, seed=3)
        network.run(50)
        comp = computation_from_network(network, epsilon_ms=10, seed=3)
        if network.sync_pairs:
            assert comp.messages

    def test_perfect_clock_model(self):
        comp = generate(fischer.build_network, 1, 20, epsilon_ms=15, clock_model="perfect", seed=1)
        # With the perfect model, local time == global tick * 100ms.
        for event in comp.events:
            assert event.local_time % 100 == 0
