"""Slow-lane soak test: batch scaling on the Fig 5d workload.

The wall-clock *speedup* claim lives in
``benchmarks/bench_parallel_scaling.py`` (it needs real cores); this test
pins the part that must hold on any machine — a parallel batch over the
Fig 5d workload returns exactly the serial results, with the pool busy.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_batch_timed
from repro.bench.workload import WorkloadSpec, formula_for, generate_workload

pytestmark = pytest.mark.slow


def test_fig5d_batch_matches_serial():
    formula = formula_for("phi4", 2, 600)
    batch = [
        generate_workload(
            WorkloadSpec(
                model="fischer",
                processes=2,
                length_seconds=1.0,
                events_per_second=10.0,
                epsilon_ms=15,
                seed=seed,
            )
        )
        for seed in range(4)
    ]
    knobs = dict(segments=8, max_traces_per_segment=400, max_distinct_per_segment=4)
    serial = run_batch_timed(formula, batch, workers=1, **knobs)
    parallel = run_batch_timed(formula, batch, workers=4, **knobs)
    assert not serial.errors and not parallel.errors
    assert [item.result.verdict_counts for item in parallel.items] == [
        item.result.verdict_counts for item in serial.items
    ]
    assert parallel.verdict_totals == serial.verdict_totals
    assert parallel.workers == 4
    assert parallel.utilization > 0
