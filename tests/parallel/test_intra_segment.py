"""Intra-segment parallel enumeration: partitioned vs serial.

The contract: partitioning a segment's root frontier into sub-tasks,
fanning them across the pool, and merging the per-part carried columns
is **bit-identical** to the serial enumeration — verdict multisets are
order-independent, so any partition of the root branches merged by
summing ``(id, count)`` pairs reproduces the serial outcome exactly.
That must hold at one segment (the case residual sharding cannot
parallelise at all) and at several, and preemption must propagate to
every in-flight sub-task.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.distributed.computation import DistributedComputation
from repro.encoding.verdict_enumerator import partition_branches
from repro.errors import MonitorError, PreemptedError
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse
from repro.parallel import ParallelMonitor
from repro.progression.budget import Budget
from repro.service import MonitorService

from tests.conftest import formulas, small_computations


def _corpus() -> list[tuple[DistributedComputation, object]]:
    fig3 = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    skewed = DistributedComputation.from_event_lists(
        3,
        {
            "P1": [(0, "a"), (3, "a"), (6, ())],
            "P2": [(1, ()), (4, "b")],
            "P3": [(2, "a")],
        },
    )
    specs = [
        parse("a U[0,6) b"),
        parse("F[0,8) b"),
        parse("G[0,4) (a | b)"),
        parse("(F[0,5) a) & (F[0,9) b)"),
    ]
    return [(comp, spec) for comp in (fig3, skewed) for spec in specs]


class TestPartitionBranches:
    def test_round_robin_covers_every_branch_exactly_once(self):
        branches = [(i, 10 * i) for i in range(11)]
        groups = partition_branches(branches, 3)
        assert len(groups) == 3
        flat = [branch for group in groups for branch in group]
        assert sorted(flat) == sorted(branches)

    def test_parts_clamped_to_branch_count(self):
        branches = [(0, 0), (1, 5)]
        groups = partition_branches(branches, 8)
        assert len(groups) == 2
        assert all(group for group in groups)

    def test_single_part_is_identity(self):
        branches = [(i, i) for i in range(4)]
        assert partition_branches(branches, 1) == [branches]


class TestBitIdenticalToSerial:
    @pytest.mark.parametrize("segments", [1, 3])
    @pytest.mark.parametrize("parts", [2, 3])
    def test_partitioned_matches_serial(self, segments, parts):
        for computation, spec in _corpus():
            serial = SmtMonitor(spec, segments=segments, saturate=False).run(
                computation
            )
            partitioned = ParallelMonitor(
                spec,
                workers=2,
                segments=segments,
                saturate=False,
                intra_segment_parts=parts,
            ).run(computation)
            assert partitioned.verdict_counts == serial.verdict_counts, (
                f"{spec} at segments={segments} parts={parts}"
            )
            assert partitioned.verdicts == serial.verdicts
            assert partitioned.exhaustive == serial.exhaustive

    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(computation=small_computations(), formula=formulas(max_depth=2))
    def test_random_corpus_identical(self, computation, formula):
        serial = SmtMonitor(formula, segments=3, saturate=False).run(computation)
        partitioned = ParallelMonitor(
            formula, workers=2, segments=3, saturate=False, intra_segment_parts=2
        ).run(computation)
        assert partitioned.verdict_counts == serial.verdict_counts


class TestModeSelection:
    def test_too_few_parts_rejected(self):
        with pytest.raises(MonitorError, match="intra_segment_parts"):
            ParallelMonitor(parse("F[0,5) a"), workers=2, intra_segment_parts=1)

    def test_single_segment_still_uses_the_pool(self):
        """Residual sharding needs a segment boundary; intra-segment
        mode must parallelise even a single-segment run."""
        computation, spec = _corpus()[0]
        serial = SmtMonitor(spec, segments=1, saturate=False).run(computation)
        result = ParallelMonitor(
            spec, workers=2, segments=1, saturate=False, intra_segment_parts=2
        ).run(computation)
        assert result.verdict_counts == serial.verdict_counts


class TestPreemptionPropagates:
    def test_cancel_unwinds_partitioned_run(self):
        """A budget cancelled mid-run preempts the client-side pipeline
        *and* the in-flight sub-tasks: the run raises promptly instead
        of waiting out every part."""
        computation = DistributedComputation.from_event_lists(
            3,
            {
                "P1": [(i, "a" if i % 2 else ()) for i in range(10)],
                "P2": [(i, "b" if i % 3 else ()) for i in range(10)],
                "P3": [(i, ()) for i in range(10)],
            },
        )
        spec = parse("G[0,40) (a -> F[0,6) b)")
        engine = SmtMonitor(spec, saturate=False)
        budget = Budget(check_every=1)
        seen = [0]

        def hook() -> None:
            seen[0] += 1
            if seen[0] >= 3:
                budget.cancel("scripted mid-run cancel")

        budget.poll_hook = hook
        with MonitorService(workers=2) as service:
            engine.attach_partitioner(service.submit_segment_part, 2)
            try:
                with pytest.raises(PreemptedError):
                    engine.run(computation, budget=budget)
            finally:
                engine.detach_partitioner()
            # The pool must come back clean: a fresh small run completes.
            small, small_spec = _corpus()[0]
            engine2 = SmtMonitor(small_spec, saturate=False)
            engine2.attach_partitioner(service.submit_segment_part, 2)
            try:
                result = engine2.run(small)
            finally:
                engine2.detach_partitioner()
            reference = SmtMonitor(small_spec, saturate=False).run(small)
            assert result.verdict_counts == reference.verdict_counts
