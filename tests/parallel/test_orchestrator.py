"""Tests for the parallel monitoring orchestrator.

The acceptance bar: segment-parallel monitoring at 4 workers returns
bit-identical verdict multisets to the serial path, and batch mode
preserves input order while capturing per-item failures.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl import parse
from repro.parallel import BatchReport, ParallelMonitor, default_workers

from tests.conftest import formulas, small_computations


def _corpus() -> list[tuple[DistributedComputation, object]]:
    """A small deterministic differential corpus (formula, computation)."""
    fig3 = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    skewed = DistributedComputation.from_event_lists(
        3,
        {
            "P1": [(0, "a"), (3, "a"), (6, ())],
            "P2": [(1, ()), (4, "b")],
            "P3": [(2, "a")],
        },
    )
    chainlike = DistributedComputation.from_event_lists(
        2, {"apr": [(0, "a"), (5, "a"), (9, "b")], "ban": [(2, "a"), (7, ())]}
    )
    specs = [
        parse("a U[0,6) b"),
        parse("F[0,8) b"),
        parse("G[0,4) (a | b)"),
        parse("(F[0,5) a) & (F[0,9) b)"),
    ]
    return [(comp, spec) for comp in (fig3, skewed, chainlike) for spec in specs]


class TestSegmentParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("segments", [2, 3])
    def test_bit_identical_to_serial(self, workers, segments):
        for computation, spec in _corpus():
            serial = SmtMonitor(spec, segments=segments, saturate=False).run(computation)
            parallel = ParallelMonitor(
                spec, workers=workers, segments=segments, saturate=False
            ).run(computation)
            assert parallel.verdict_counts == serial.verdict_counts, (
                f"{spec} on\n{computation}"
            )
            assert parallel.verdicts == serial.verdicts

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(computation=small_computations(), formula=formulas(max_depth=2))
    def test_random_corpus_identical(self, computation, formula):
        serial = SmtMonitor(formula, segments=3, saturate=False).run(computation)
        parallel = ParallelMonitor(
            formula, workers=4, segments=3, saturate=False
        ).run(computation)
        assert parallel.verdict_counts == serial.verdict_counts

    def test_empty_computation(self):
        spec = parse("F[0,5) a")
        result = ParallelMonitor(spec, workers=4).run(DistributedComputation(2))
        assert result.verdict_counts == {False: 1}

    def test_oversharding_bounds(self):
        """Residual splitting produces at most 2x workers shards (so a
        worker sees consecutive shards and can reuse the trace cache) and
        preserves the carried multiset exactly."""
        spec = parse("F[0,5) a")
        orchestrator = ParallelMonitor(spec, workers=2)
        carried = {parse(f"F[0,{5 + i}) a"): i + 1 for i in range(7)}
        shards = orchestrator._shard_residuals(carried)
        assert len(shards) == 4  # min(2 * workers, len(carried))
        recombined: dict = {}
        for shard in shards:
            for residual, count in shard.items():
                recombined[residual] = recombined.get(residual, 0) + count
        assert recombined == carried

    def test_shard_split_deterministic_and_verdict_preserving(self):
        """The intern-id sort behind ``_shard_residuals``: the split of a
        carried set does not depend on dict insertion order, repeated
        splits agree, and the recombined multiset is exact."""
        spec = parse("F[0,5) a")
        orchestrator = ParallelMonitor(spec, workers=2)
        residuals = [(parse(f"F[0,{5 + i}) (a | b)"), i + 1) for i in range(9)]
        forward = dict(residuals)
        backward = dict(reversed(residuals))
        assert list(forward) != list(backward)  # genuinely different orders
        split_forward = orchestrator._shard_residuals(forward)
        split_backward = orchestrator._shard_residuals(backward)
        assert split_forward == split_backward
        assert split_forward == orchestrator._shard_residuals(forward)
        recombined: dict = {}
        for shard in split_forward:
            for residual, count in shard.items():
                recombined[residual] = recombined.get(residual, 0) + count
        assert recombined == forward

    def test_single_worker_never_forks(self, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("workers=1 must not create a pool")

        monkeypatch.setattr(multiprocessing, "Pool", boom)
        computation, spec = _corpus()[0]
        result = ParallelMonitor(spec, workers=1, segments=2, saturate=False).run(
            computation
        )
        assert result.verdicts


class TestBatchMode:
    def test_order_and_totals(self):
        spec = parse("a U[0,6) b")
        comps = [comp for comp, _ in _corpus()[:6]]
        report = ParallelMonitor(spec, workers=4, saturate=False).run_batch(comps)
        assert isinstance(report, BatchReport)
        assert [item.index for item in report.items] == list(range(len(comps)))
        assert not report.errors
        serial = [SmtMonitor(spec, saturate=False).run(c).verdict_counts for c in comps]
        assert [item.result.verdict_counts for item in report.items] == serial
        totals = report.verdict_totals
        for verdict in (True, False):
            assert totals.get(verdict, 0) == sum(c.get(verdict, 0) for c in serial)
        assert report.wall_seconds > 0
        assert 0.0 <= report.utilization <= 1.0

    def test_poisoned_item_is_captured(self):
        """One computation over the fast monitor's event cap must not kill
        the batch: its error is captured, every other item succeeds."""
        spec = parse("G[0,400) (a | !a)")
        good = DistributedComputation.from_event_lists(1, {"P1": [(0, "a"), (1, "a")]})
        poisoned = DistributedComputation(1)
        for i in range(301):
            poisoned.add_event("P1", i, "a")
        report = ParallelMonitor(spec, monitor="fast", workers=2).run_batch(
            [good, poisoned, good]
        )
        assert len(report.items) == 3
        assert report.items[0].ok and report.items[2].ok
        assert not report.items[1].ok
        assert "MonitorError" in report.items[1].error
        assert report.errors == [(1, report.items[1].error)]

    def test_merged_result(self):
        spec = parse("F[0,8) b")
        comps = [comp for comp, _ in _corpus()[:3]]
        report = ParallelMonitor(spec, workers=1, saturate=False).run_batch(comps)
        merged = report.merged(spec)
        assert merged.verdict_counts == report.verdict_totals

    def test_auto_kind_batch(self):
        spec = parse("a U[0,6) b")
        comps = [comp for comp, _ in _corpus()[:2]]
        report = ParallelMonitor(spec, monitor="auto", workers=2).run_batch(comps)
        assert not report.errors

    def test_empty_batch(self):
        report = ParallelMonitor(parse("F[0,5) a")).run_batch([])
        assert report.items == []
        assert report.verdict_totals == {}


class TestConstruction:
    def test_invalid_workers(self):
        with pytest.raises(MonitorError):
            ParallelMonitor(parse("F[0,5) a"), workers=0)

    def test_invalid_min_shard(self):
        with pytest.raises(MonitorError):
            ParallelMonitor(parse("F[0,5) a"), min_shard_residuals=1)

    def test_default_workers_bounded(self):
        assert 1 <= default_workers() <= 8

    def test_computation_pickles(self):
        """Events (with mappingproxy deltas) must survive the pool boundary."""
        computation = DistributedComputation(2)
        computation.add_event("P1", 0, "a", {"to.alice": 1.0})
        computation.add_event("P2", 1, "b")
        computation.happened_before()  # include the cached closure
        clone = pickle.loads(pickle.dumps(computation))
        assert clone.events == computation.events
        assert dict(clone.events[0].deltas) == {"to.alice": 1.0}
