"""Unit tests for individual constraint classes (consistency + pruning)."""

import pytest

from repro.errors import SolverError
from repro.solver.constraints import (
    AllDifferent,
    BinaryRelation,
    Blocking,
    ConditionalOrder,
    FunctionConstraint,
    Implication,
    UnaryPredicate,
)
from repro.solver.domain import Domain


class TestBinaryRelation:
    def test_satisfaction(self):
        lt = BinaryRelation("x", "y", "<")
        assert lt.is_satisfied({"x": 1, "y": 2})
        assert not lt.is_satisfied({"x": 2, "y": 2})

    def test_offset(self):
        le = BinaryRelation("x", "y", "<=", offset=3)
        assert le.is_satisfied({"x": 5, "y": 2})
        assert not le.is_satisfied({"x": 6, "y": 2})

    def test_partial_assignment_consistent(self):
        lt = BinaryRelation("x", "y", "<")
        assert lt.is_consistent({"x": 5})

    def test_unknown_op_rejected(self):
        with pytest.raises(SolverError):
            BinaryRelation("x", "y", "<>")

    def test_same_variable_rejected(self):
        with pytest.raises(SolverError):
            BinaryRelation("x", "x", "<")

    def test_prune_forward(self):
        lt = BinaryRelation("x", "y", "<")
        domains = {"y": Domain.range(0, 5)}
        assert lt.prune("x", 3, domains, {"x": 3})
        assert domains["y"].values == (4, 5)

    def test_prune_backward(self):
        lt = BinaryRelation("x", "y", "<")
        domains = {"x": Domain.range(0, 5)}
        assert lt.prune("y", 2, domains, {"y": 2})
        assert domains["x"].values == (0, 1)

    def test_prune_wipeout_reported(self):
        lt = BinaryRelation("x", "y", "<")
        domains = {"y": Domain.range(0, 3)}
        assert not lt.prune("x", 3, domains, {"x": 3})

    def test_prune_skips_assigned(self):
        lt = BinaryRelation("x", "y", "<")
        domains = {"y": Domain.range(0, 5)}
        assert lt.prune("x", 3, domains, {"x": 3, "y": 1})
        assert domains["y"].values == (0, 1, 2, 3, 4, 5)


class TestAllDifferent:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SolverError):
            AllDifferent(["a", "a"])

    def test_partial_conflict_detected(self):
        constraint = AllDifferent(["a", "b", "c"])
        assert not constraint.is_consistent({"a": 1, "b": 1})
        assert constraint.is_consistent({"a": 1, "b": 2})

    def test_prune_removes_value(self):
        constraint = AllDifferent(["a", "b"])
        domains = {"b": Domain.range(0, 2)}
        assert constraint.prune("a", 1, domains, {"a": 1})
        assert domains["b"].values == (0, 2)


class TestConditionalOrder:
    def test_order_implies_time_order(self):
        c = ConditionalOrder("pa", "pb", "ta", "tb")
        assert c.is_satisfied({"pa": 0, "pb": 1, "ta": 3, "tb": 5})
        assert not c.is_satisfied({"pa": 0, "pb": 1, "ta": 5, "tb": 3})

    def test_reverse_order(self):
        c = ConditionalOrder("pa", "pb", "ta", "tb")
        assert c.is_satisfied({"pa": 2, "pb": 1, "ta": 5, "tb": 3})

    def test_equal_positions_invalid(self):
        c = ConditionalOrder("pa", "pb", "ta", "tb")
        assert not c.is_satisfied({"pa": 1, "pb": 1, "ta": 3, "tb": 3})

    def test_partial_is_consistent(self):
        c = ConditionalOrder("pa", "pb", "ta", "tb")
        assert c.is_consistent({"pa": 0, "ta": 9})


class TestBlockingAndFriends:
    def test_blocking_rejects_exact_model(self):
        b = Blocking({"x": 1, "y": 2})
        assert not b.is_satisfied({"x": 1, "y": 2})
        assert b.is_satisfied({"x": 1, "y": 3})

    def test_blocking_partial_consistency(self):
        b = Blocking({"x": 1, "y": 2})
        assert b.is_consistent({"x": 1})       # could still differ on y
        assert b.is_consistent({"x": 0})       # already differs
        assert not b.is_consistent({"x": 1, "y": 2})

    def test_blocking_empty_rejected(self):
        with pytest.raises(SolverError):
            Blocking({})

    def test_unary_predicate(self):
        p = UnaryPredicate("x", lambda v: v > 2)
        assert p.is_satisfied({"x": 3})
        assert not p.is_satisfied({"x": 1})

    def test_implication_vacuous(self):
        imp = Implication(("x",), lambda m: m["x"] > 5, lambda m: False)
        assert imp.is_satisfied({"x": 3})

    def test_function_constraint_arity(self):
        f = FunctionConstraint(("x", "y", "z"), lambda x, y, z: x + y == z)
        assert f.is_satisfied({"x": 1, "y": 2, "z": 3})

    def test_constraint_requires_variables(self):
        with pytest.raises(SolverError):
            FunctionConstraint((), lambda: True)
