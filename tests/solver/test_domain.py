"""Unit tests for solver domains."""

import pytest

from repro.errors import SolverError
from repro.solver.domain import Domain


class TestConstruction:
    def test_sorted_and_deduplicated(self):
        domain = Domain([3, 1, 2, 1])
        assert domain.values == (1, 2, 3)

    def test_range(self):
        assert Domain.range(2, 5).values == (2, 3, 4, 5)

    def test_range_empty_when_reversed(self):
        assert not Domain.range(5, 2)

    def test_singleton(self):
        domain = Domain.singleton(7)
        assert domain.is_singleton()
        assert domain.min() == 7

    def test_boolean(self):
        assert Domain.boolean().values == (0, 1)

    def test_non_int_rejected(self):
        with pytest.raises(SolverError):
            Domain([1.5])  # type: ignore[list-item]


class TestQueries:
    def test_membership(self):
        domain = Domain.range(0, 3)
        assert 2 in domain
        assert 5 not in domain

    def test_min_max(self):
        domain = Domain([4, 9, 1])
        assert domain.min() == 1
        assert domain.max() == 9

    def test_min_of_empty_rejected(self):
        with pytest.raises(SolverError):
            Domain(()).min()

    def test_len_and_bool(self):
        assert len(Domain.range(1, 3)) == 3
        assert not Domain(())


class TestDerivation:
    def test_remove(self):
        assert Domain.range(1, 3).remove(2).values == (1, 3)

    def test_remove_absent_is_identity(self):
        domain = Domain.range(1, 3)
        assert domain.remove(9) is domain

    def test_restrict(self):
        assert Domain.range(0, 9).restrict(lambda v: v % 3 == 0).values == (0, 3, 6, 9)

    def test_intersect(self):
        assert Domain.range(0, 5).intersect(Domain.range(3, 9)).values == (3, 4, 5)

    def test_at_least(self):
        assert Domain.range(0, 5).at_least(3).values == (3, 4, 5)

    def test_at_most(self):
        assert Domain.range(0, 5).at_most(2).values == (0, 1, 2)

    def test_equality_and_hash(self):
        assert Domain([1, 2]) == Domain([2, 1])
        assert len({Domain([1, 2]), Domain([2, 1])}) == 1
