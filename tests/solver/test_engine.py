"""Unit and integration tests for the constraint engine."""

import pytest

from repro.errors import SolverError
from repro.solver.constraints import (
    AllDifferent,
    BinaryRelation,
    Blocking,
    FunctionConstraint,
    Implication,
    UnaryPredicate,
    table_constraint,
)
from repro.solver.csp import Problem
from repro.solver.domain import Domain
from repro.solver.engine import Solver, all_solutions, solve_one


def simple_problem() -> Problem:
    problem = Problem()
    problem.add_variable("x", Domain.range(0, 3))
    problem.add_variable("y", Domain.range(0, 3))
    return problem


class TestBasics:
    def test_unconstrained_counts(self):
        problem = simple_problem()
        assert len(all_solutions(problem)) == 16

    def test_solve_one_returns_model(self):
        problem = simple_problem()
        problem.add_constraint(BinaryRelation("x", "y", "<"))
        model = solve_one(problem)
        assert model is not None
        assert model["x"] < model["y"]

    def test_unsatisfiable(self):
        problem = simple_problem()
        problem.add_constraint(BinaryRelation("x", "y", "<"))
        problem.add_constraint(BinaryRelation("y", "x", "<"))
        assert solve_one(problem) is None

    def test_limit_respected(self):
        problem = simple_problem()
        assert len(all_solutions(problem, limit=5)) == 5

    def test_duplicate_variable_rejected(self):
        problem = simple_problem()
        with pytest.raises(SolverError):
            problem.add_variable("x", Domain.range(0, 1))

    def test_empty_domain_rejected(self):
        problem = Problem()
        with pytest.raises(SolverError):
            problem.add_variable("x", Domain(()))

    def test_constraint_on_unknown_variable_rejected(self):
        problem = simple_problem()
        with pytest.raises(SolverError):
            problem.add_constraint(BinaryRelation("x", "z", "<"))


class TestConstraints:
    def test_offset_relation(self):
        problem = simple_problem()
        problem.add_constraint(BinaryRelation("x", "y", ">=", offset=2))
        for model in all_solutions(problem):
            assert model["x"] >= model["y"] + 2

    def test_unary_predicate(self):
        problem = simple_problem()
        problem.add_constraint(UnaryPredicate("x", lambda v: v % 2 == 0))
        assert {m["x"] for m in all_solutions(problem)} == {0, 2}

    def test_alldifferent(self):
        problem = Problem()
        for name in ("a", "b", "c"):
            problem.add_variable(name, Domain.range(0, 2))
        problem.add_constraint(AllDifferent(["a", "b", "c"]))
        solutions = all_solutions(problem)
        assert len(solutions) == 6  # 3! permutations

    def test_implication(self):
        problem = simple_problem()
        problem.add_constraint(
            Implication(("x", "y"), lambda m: m["x"] == 0, lambda m: m["y"] == 3)
        )
        for model in all_solutions(problem):
            assert model["x"] != 0 or model["y"] == 3

    def test_function_constraint(self):
        problem = simple_problem()
        problem.add_constraint(FunctionConstraint(("x", "y"), lambda x, y: x + y == 3))
        assert all(m["x"] + m["y"] == 3 for m in all_solutions(problem))

    def test_table_constraint(self):
        problem = simple_problem()
        problem.add_constraint(table_constraint(("x", "y"), [(0, 1), (2, 3)]))
        solutions = {(m["x"], m["y"]) for m in all_solutions(problem)}
        assert solutions == {(0, 1), (2, 3)}

    def test_blocking(self):
        problem = simple_problem()
        first = solve_one(problem)
        problem.add_constraint(Blocking(first))
        second = solve_one(problem)
        assert second != first


class TestBlockingEnumeration:
    def test_solve_blocking_enumerates_all(self):
        problem = Problem()
        problem.add_variable("x", Domain.range(0, 2))
        problem.add_variable("y", Domain.range(0, 2))
        problem.add_constraint(BinaryRelation("x", "y", "=="))
        solver = Solver(problem)
        models = solver.solve_blocking()
        assert len(models) == 3

    def test_solve_blocking_respects_cap(self):
        problem = simple_problem()
        solver = Solver(problem)
        assert len(solver.solve_blocking(max_models=4)) == 4

    def test_blocking_matches_direct_enumeration(self):
        def build():
            problem = Problem()
            for name in ("a", "b"):
                problem.add_variable(name, Domain.range(0, 3))
            problem.add_constraint(BinaryRelation("a", "b", "<="))
            return problem

        direct = {tuple(sorted(m.items())) for m in all_solutions(build())}
        blocked = {tuple(sorted(m.items())) for m in Solver(build()).solve_blocking()}
        assert direct == blocked


class TestNQueens:
    """A classic CSP sanity check exercising AllDifferent + functions."""

    def queens(self, n: int) -> int:
        problem = Problem()
        for i in range(n):
            problem.add_variable(f"q{i}", Domain.range(0, n - 1))
        problem.add_constraint(AllDifferent([f"q{i}" for i in range(n)]))
        for i in range(n):
            for j in range(i + 1, n):
                problem.add_constraint(
                    FunctionConstraint(
                        (f"q{i}", f"q{j}"),
                        lambda a, b, d=j - i: abs(a - b) != d,
                    )
                )
        return len(all_solutions(problem))

    def test_four_queens(self):
        assert self.queens(4) == 2

    def test_five_queens(self):
        assert self.queens(5) == 10

    def test_six_queens(self):
        assert self.queens(6) == 4

    def test_statistics_populated(self):
        problem = simple_problem()
        problem.add_constraint(BinaryRelation("x", "y", "<"))
        solver = Solver(problem)
        list(solver.solutions())
        assert solver.stats.nodes > 0
        assert solver.stats.solutions == 6
