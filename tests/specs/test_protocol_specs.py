"""Tests for the protocol policy builders and payoff predicates."""

from repro.mtl import ast
from repro.mtl.semantics import satisfies
from repro.mtl.trace import State, TimedTrace
from repro.specs import auction_specs, swap2_specs, swap3_specs
from repro.specs.payoff import compensated_payoff, non_negative_payoff, received, sent


class TestPayoff:
    def test_received_and_sent(self):
        valuation = {"to.alice": 100, "from.alice": 60}
        assert received(valuation, "alice") == 100
        assert sent(valuation, "alice") == 60

    def test_non_negative_payoff_atom(self):
        atom = non_negative_payoff("alice")
        assert atom.holds_in(frozenset(), {"to.alice": 5, "from.alice": 5})
        assert not atom.holds_in(frozenset(), {"to.alice": 4, "from.alice": 5})

    def test_missing_keys_default_to_zero(self):
        assert non_negative_payoff("alice").holds_in(frozenset(), {})

    def test_compensated_payoff_atom(self):
        atom = compensated_payoff("alice", 1)
        assert atom.holds_in(frozenset(), {"to.alice": 101, "from.alice": 100})
        assert not atom.holds_in(frozenset(), {"to.alice": 100, "from.alice": 100})

    def test_payoff_atom_in_trace_semantics(self):
        phi = ast.always(
            ast.implies(ast.atom("settled"), non_negative_payoff("alice"))
        )
        good = TimedTrace(
            [State.of("x"), State.of("settled", **{"to.alice": 10, "from.alice": 3})],
            [0, 5],
        )
        bad = TimedTrace(
            [State.of("x"), State.of("settled", **{"to.alice": 1, "from.alice": 3})],
            [0, 5],
        )
        assert satisfies(good, phi)
        assert not satisfies(bad, phi)


class TestSwap2Policies:
    def test_all_policies_present(self):
        policies = swap2_specs.all_policies(500)
        assert set(policies) == {
            "liveness",
            "alice_conforming",
            "bob_conforming",
            "alice_safety",
            "bob_safety",
            "alice_hedged",
        }

    def test_liveness_windows_scale_with_delta(self):
        small = swap2_specs.liveness(100)
        large = swap2_specs.liveness(1000)
        small_ends = sorted(
            n.interval.end for n in small.walk() if isinstance(n, ast.Eventually)
        )
        large_ends = sorted(
            n.interval.end for n in large.walk() if isinstance(n, ast.Eventually)
        )
        assert all(l == s * 10 for s, l in zip(small_ends, large_ends))

    def test_conformance_mentions_the_until_guard(self):
        phi = swap2_specs.alice_conforming(500)
        untils = [n for n in phi.walk() if isinstance(n, ast.Until)]
        assert untils

    def test_safety_is_implication(self):
        phi = swap2_specs.alice_safety(500)
        assert isinstance(phi, ast.Or)  # conform -> ... desugars to !c | ...


class TestSwap3Policies:
    def test_liveness_covers_twelve_timed_steps(self):
        phi = swap3_specs.liveness(500)
        timed = [
            n
            for n in phi.walk()
            if isinstance(n, ast.Eventually) and not n.interval.is_unbounded()
        ]
        assert len(timed) == 12

    def test_policy_registry(self):
        assert set(swap3_specs.all_policies(500)) == {
            "liveness",
            "alice_conforming",
            "alice_safety",
            "alice_hedged",
        }


class TestAuctionPolicies:
    def test_liveness_forbids_challenges(self):
        phi = auction_specs.liveness(500)
        names = {a.name for a in phi.atoms()}
        assert "coin.challenge(any)" in names
        assert "tckt.challenge(any)" in names

    def test_open_start_interval(self):
        """The paper's (4*delta, inf) becomes [4*delta + 1, inf)."""
        phi = auction_specs.liveness(500)
        unbounded = [
            n.interval.start
            for n in phi.walk()
            if isinstance(n, ast.Eventually) and n.interval.is_unbounded()
        ]
        assert 2001 in unbounded

    def test_conformance_symmetry_over_tags(self):
        phi = auction_specs.bob_conforming(500)
        names = {a.name for a in phi.atoms()}
        assert "coin.declaration(alice,sb)" in names
        assert "coin.declaration(alice,sc)" in names

    def test_policy_registry(self):
        assert set(auction_specs.all_policies(500)) == {
            "liveness",
            "bob_conforming",
            "bob_safety",
            "bob_hedged",
        }
