"""Tests for the phi1..phi6 specification builders."""

import pytest

from repro.errors import FormulaError
from repro.mtl import ast
from repro.specs import uppaal_specs


class TestShapes:
    def test_phi1_until_structure(self):
        phi = uppaal_specs.phi1(3)
        assert isinstance(phi, ast.Until)
        assert phi.right == ast.atom("train1.cross")
        assert phi.left.size() >= 3

    def test_phi2_per_train_conjunction(self):
        phi = uppaal_specs.phi2(3)
        assert isinstance(phi, ast.And)
        assert len(phi.operands) == 3

    def test_phi2_single_train_not_conjunction(self):
        phi = uppaal_specs.phi2(1)
        assert isinstance(phi, ast.Always)

    def test_phi3_pairwise_exclusion(self):
        phi = uppaal_specs.phi3(3)
        assert isinstance(phi, ast.Always)
        # C(3,2) = 3 pairwise clauses.
        assert isinstance(phi.operand, ast.And)
        assert len(phi.operand.operands) == 3

    def test_phi3_single_process_trivial(self):
        assert uppaal_specs.phi3(1) == ast.TRUE

    def test_phi4_window(self):
        phi = uppaal_specs.phi4(2, window_ms=750)
        assert isinstance(phi, ast.Always)
        names = {a.name for a in phi.atoms()}
        assert names == {"p1.req", "p1.cs", "p2.req", "p2.cs"}

    def test_phi5_all_pairs(self):
        phi = uppaal_specs.phi5(3)
        assert isinstance(phi, ast.Eventually)
        assert len(phi.operand.operands) == 6  # 3*2 ordered pairs

    def test_phi6_nested_depth(self):
        phi = uppaal_specs.phi6(2)
        assert phi.temporal_depth() == 2

    def test_window_must_be_positive(self):
        with pytest.raises(FormulaError):
            uppaal_specs.phi4(2, window_ms=0)

    def test_all_specs_registry(self):
        assert set(uppaal_specs.ALL_SPECS) == {f"phi{i}" for i in range(1, 7)}
        for name, (builder, model) in uppaal_specs.ALL_SPECS.items():
            assert model in ("train_gate", "fischer", "gossip")


class TestDepthOrdering:
    def test_nested_specs_deeper_than_flat(self):
        """The paper's Fig 5a analysis: phi6 nests temporal operators,
        phi3 does not."""
        assert uppaal_specs.phi6(2).temporal_depth() > uppaal_specs.phi3(2).temporal_depth()

    def test_phi2_contains_untimed_until(self):
        phi = uppaal_specs.phi2(2)
        untils = [n for n in phi.walk() if isinstance(n, ast.Until)]
        assert untils and all(u.interval.is_unbounded() for u in untils)
