"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.FormulaError,
            errors.ParseError,
            errors.TraceError,
            errors.ComputationError,
            errors.SolverError,
            errors.EncodingError,
            errors.MonitorError,
            errors.ChainError,
            errors.ContractRevert,
            errors.ProtocolError,
            errors.AutomatonError,
        ],
    )
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_parse_error_position(self):
        err = errors.ParseError("bad token", position=7)
        assert err.position == 7
        assert "position 7" in str(err)

    def test_parse_error_without_position(self):
        err = errors.ParseError("bad token")
        assert err.position is None

    def test_contract_revert_reason(self):
        assert errors.ContractRevert("nope").reason == "nope"
        assert "reverted" in str(errors.ContractRevert())

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.ChainError("boom")
