"""Tests for the chain-log → distributed-computation glue."""

from __future__ import annotations

from repro.chain.events import ChainEvent
from repro.chain.log import computation_from_chains, computation_from_events
from repro.chain.network import ChainNetwork
from repro.io.serialize import computation_from_dict, computation_to_dict


def _event(chain: str, name: str, time: int, party: str = "alice", **kw) -> ChainEvent:
    return ChainEvent(chain=chain, name=name, party=party, local_time=time, **kw)


class TestComputationFromEvents:
    def test_one_process_per_chain(self):
        events = [
            _event("apr", "lock", 10),
            _event("ban", "lock", 12),
            _event("apr", "redeem", 20),
        ]
        comp = computation_from_events(events, epsilon_ms=5)
        assert comp.epsilon == 5
        assert comp.processes == ["apr", "ban"]
        assert len(comp) == 3

    def test_props_carry_party_and_any_forms(self):
        comp = computation_from_events([_event("apr", "lock", 10, "bob")], 5)
        assert comp.events[0].props == {"apr.lock(bob)", "apr.lock(any)"}

    def test_sorted_across_chains_stable_within(self):
        """Same-chain events sharing a block timestamp keep emission order;
        cross-chain events interleave by local time."""
        events = [
            _event("ban", "second", 10, "x"),
            _event("apr", "first", 5),
            _event("ban", "third", 10, "y"),
        ]
        comp = computation_from_events(events, epsilon_ms=3)
        ordered = [(e.process, sorted(e.props)[0]) for e in comp.events]
        assert ordered == [
            ("apr", "apr.first(alice)"),
            ("ban", "ban.second(any)"),
            ("ban", "ban.third(any)"),
        ]
        ban_events = [e for e in comp.events if e.process == "ban"]
        assert [e.seq for e in ban_events] == [0, 1]

    def test_deltas_forwarded(self):
        comp = computation_from_events(
            [_event("apr", "pay", 10, deltas={"to.alice": 3.0})], 5
        )
        assert dict(comp.events[0].deltas) == {"to.alice": 3.0}


class TestComputationFromChains:
    def _network(self) -> ChainNetwork:
        network = ChainNetwork(epsilon_ms=5)
        apr = network.add_chain("apr", skew_ms=2)
        ban = network.add_chain("ban", skew_ms=-2)
        apr.record_marker(10, "start")
        ban.record_marker(10, "start")
        apr.record_marker(20, "lock", "alice")
        ban.record_marker(30, "lock", "bob")
        return network

    def test_collects_every_chain(self):
        network = self._network()
        comp = computation_from_chains(network.chains, epsilon_ms=5)
        assert len(comp) == 4
        assert set(comp.processes) == {"apr", "ban"}
        # Chain-local (skewed) stamps survive into the computation.
        apr_times = [e.local_time for e in comp.events if e.process == "apr"]
        ban_times = [e.local_time for e in comp.events if e.process == "ban"]
        assert apr_times == [12, 22]
        assert ban_times == [8, 28]

    def test_round_trip_through_wire_format(self):
        """chains → computation → JSON dict → computation is lossless."""
        network = self._network()
        comp = computation_from_chains(network.chains, epsilon_ms=5)
        clone = computation_from_dict(computation_to_dict(comp))
        assert clone.epsilon == comp.epsilon
        assert clone.events == comp.events
        assert computation_to_dict(clone) == computation_to_dict(comp)

    def test_monitorable(self):
        from repro.monitor import make_monitor
        from repro.mtl import parse

        comp = computation_from_chains(self._network().chains, epsilon_ms=5)
        spec = parse("F[0,40) ban.lock(any)")
        result = make_monitor(spec, computation=comp).run(comp)
        assert result.verdicts == {True}
