"""Tests for the chain network: clocks, skew bounds, delivery ordering."""

from __future__ import annotations

import pytest

from repro.chain.contract import Contract
from repro.chain.network import ChainNetwork
from repro.errors import ChainError


class Pinger(Contract):
    """Minimal contract that emits one event per call."""

    def __init__(self, name: str = "pinger") -> None:
        super().__init__(name)
        self.calls = 0

    def ping(self, party: str = "alice") -> None:
        self.calls += 1
        self.emit("ping", party)


class TestChainManagement:
    def test_add_and_lookup(self):
        network = ChainNetwork(epsilon_ms=5)
        chain = network.add_chain("apr")
        assert network.chain("apr") is chain
        assert network.chains == [chain]

    def test_duplicate_chain_rejected(self):
        network = ChainNetwork(epsilon_ms=5)
        network.add_chain("apr")
        with pytest.raises(ChainError, match="already exists"):
            network.add_chain("apr")

    def test_unknown_chain_rejected(self):
        with pytest.raises(ChainError, match="unknown chain"):
            ChainNetwork(epsilon_ms=5).chain("nope")

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ChainError):
            ChainNetwork(epsilon_ms=0)

    def test_skew_must_stay_below_epsilon(self):
        network = ChainNetwork(epsilon_ms=3)
        network.add_chain("ok", skew_ms=2)
        with pytest.raises(ChainError, match="violates the network bound"):
            network.add_chain("bad", skew_ms=3)
        with pytest.raises(ChainError, match="violates the network bound"):
            network.add_chain("bad2", skew_ms=-3)

    def test_skewed_clock_stamps_events(self):
        network = ChainNetwork(epsilon_ms=10)
        ahead = network.add_chain("ahead", skew_ms=4)
        behind = network.add_chain("behind", skew_ms=-4)
        ahead.record_marker(100, "start")
        behind.record_marker(100, "start")
        assert ahead.log[0].local_time == 104
        assert behind.log[0].local_time == 96


class TestScheduling:
    def test_calls_execute_in_global_time_order(self):
        network = ChainNetwork(epsilon_ms=2)
        chain = network.add_chain("apr")
        pinger = chain.deploy(Pinger())
        # Scheduled out of order on purpose.
        network.schedule(30, chain, lambda: pinger.ping("carol"), "third")
        network.schedule(10, "apr", lambda: pinger.ping("alice"), "first")
        network.schedule(20, chain, lambda: pinger.ping("bob"), "second")
        results = network.run()
        assert [description for description, _ in results] == ["first", "second", "third"]
        assert all(ok for _, ok in results)
        assert [event.party for event in chain.log] == ["alice", "bob", "carol"]
        assert [event.local_time for event in chain.log] == [10, 20, 30]

    def test_equal_times_keep_submission_order(self):
        network = ChainNetwork(epsilon_ms=2)
        chain = network.add_chain("apr")
        pinger = chain.deploy(Pinger())
        network.schedule(10, chain, lambda: pinger.ping("first"), "a")
        network.schedule(10, chain, lambda: pinger.ping("second"), "b")
        network.run()
        assert [event.party for event in chain.log] == ["first", "second"]

    def test_queue_drains_after_run(self):
        network = ChainNetwork(epsilon_ms=2)
        chain = network.add_chain("apr")
        pinger = chain.deploy(Pinger())
        network.schedule(10, chain, pinger.ping)
        assert len(network.run()) == 1
        assert network.run() == []
        assert pinger.calls == 1

    def test_failed_call_reported_not_raised(self):
        network = ChainNetwork(epsilon_ms=2)
        chain = network.add_chain("apr")
        pinger = chain.deploy(Pinger())

        def failing():
            pinger.require(False, "nope")

        network.schedule(5, chain, failing, "bad")
        network.schedule(6, chain, pinger.ping, "good")
        results = network.run()
        assert results == [("bad", False), ("good", True)]
        assert chain.failed == [(5, "nope")]
