"""Tests for the Contract base class: deployment, reverts, state transitions."""

from __future__ import annotations

import pytest

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.token import Token
from repro.errors import ChainError


class Escrow(Contract):
    """A two-phase escrow: open → funded → released."""

    def __init__(self) -> None:
        super().__init__("escrow")
        self.state = "open"

    def fund(self, token: Token, party: str, amount: int) -> None:
        self.require(self.state == "open", "not open")
        deltas = self.transfer(token, party, self.address, amount)
        self.state = "funded"
        self.emit("funded", party, amount, deltas)

    def release(self, token: Token, recipient: str, amount: int, deadline: int) -> None:
        self.require(self.state == "funded", "not funded")
        self.require(self.now <= deadline, "deadline passed")
        deltas = self.transfer(token, self.address, recipient, amount)
        self.state = "released"
        self.emit("released", recipient, amount, deltas)


@pytest.fixture
def chain():
    return SimulatedChain("apr")


@pytest.fixture
def token(chain):
    token = chain.register_token(Token("APR"))
    token.mint("alice", 100)
    return token


@pytest.fixture
def escrow(chain):
    return chain.deploy(Escrow())


class TestDeployment:
    def test_attach_binds_chain(self, chain, escrow):
        assert escrow.chain is chain
        assert escrow.address == "contract:escrow"

    def test_double_deploy_rejected(self, chain, escrow):
        with pytest.raises(ChainError, match="already deployed"):
            SimulatedChain("ban").deploy(escrow)

    def test_undeployed_chain_access_rejected(self):
        with pytest.raises(ChainError, match="not deployed"):
            Escrow().chain

    def test_now_outside_transaction_rejected(self, escrow):
        with pytest.raises(ChainError, match="current_time is undefined"):
            escrow.now


class TestStateTransitions:
    def test_happy_path(self, chain, token, escrow):
        assert chain.execute(10, lambda: escrow.fund(token, "alice", 40))
        assert escrow.state == "funded"
        assert token.balance_of("alice") == 60
        assert token.balance_of(escrow.address) == 40
        assert chain.execute(20, lambda: escrow.release(token, "bob", 40, deadline=25))
        assert escrow.state == "released"
        assert token.balance_of("bob") == 40
        assert [event.name for event in chain.log] == ["funded", "released"]

    def test_wrong_state_reverts(self, chain, token, escrow):
        ok = chain.execute(10, lambda: escrow.release(token, "bob", 1, deadline=99))
        assert not ok
        assert escrow.state == "open"
        assert chain.failed == [(10, "not funded")]
        assert chain.log == []

    def test_deadline_guard_uses_block_time(self, chain, token, escrow):
        chain.execute(10, lambda: escrow.fund(token, "alice", 40))
        ok = chain.execute(30, lambda: escrow.release(token, "bob", 40, deadline=25))
        assert not ok
        assert escrow.state == "funded"
        assert chain.failed[-1] == (30, "deadline passed")

    def test_revert_rolls_back_tokens_and_events(self, chain, token, escrow):
        def fund_then_fail():
            escrow.fund(token, "alice", 40)
            escrow.require(False, "late failure")

        assert not chain.execute(10, fund_then_fail)
        # Token movement rolled back, buffered event dropped.
        assert token.balance_of("alice") == 100
        assert token.balance_of(escrow.address) == 0
        assert chain.log == []

    def test_insufficient_funds_revert(self, chain, token, escrow):
        assert not chain.execute(10, lambda: escrow.fund(token, "alice", 500))
        assert escrow.state == "open"
        assert "insufficient APR balance" in chain.failed[0][1]


class TestEmittedEvents:
    def test_event_payload(self, chain, token, escrow):
        chain.execute(10, lambda: escrow.fund(token, "alice", 40))
        event = chain.log[0]
        assert event.chain == "apr"
        assert event.name == "funded"
        assert event.party == "alice"
        assert event.local_time == 10
        assert event.amount == 40
        assert event.deltas == {"from.alice": 40}
        assert event.props() == {"apr.funded(alice)", "apr.funded(any)"}

    def test_contract_accounts_untracked_in_deltas(self, chain, token, escrow):
        chain.execute(10, lambda: escrow.fund(token, "alice", 40))
        chain.execute(20, lambda: escrow.release(token, "bob", 40, deadline=25))
        assert chain.log[1].deltas == {"to.bob": 40}

    def test_emit_outside_transaction_rejected(self, escrow):
        with pytest.raises(ChainError, match="inside a transaction"):
            escrow.emit("stray", "alice")
