"""Tests for the simulated chain: transactions, reverts, event logs."""

import pytest

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.events import transfer_deltas
from repro.chain.log import computation_from_chains, computation_from_events
from repro.chain.network import ChainNetwork
from repro.chain.token import Token
from repro.distributed.clocks import FixedSkewClock
from repro.errors import ChainError


class Piggybank(Contract):
    """A toy contract used to exercise the execution machinery."""

    def __init__(self, token: Token) -> None:
        super().__init__("Piggybank")
        self.token = token
        self.locked = False

    def deposit(self, party: str, amount: int) -> None:
        self.require(not self.locked, "bank is locked")
        deltas = self.transfer(self.token, party, self.address, amount)
        self.emit("deposited", party, amount, deltas)

    def deposit_then_fail(self, party: str, amount: int) -> None:
        deltas = self.transfer(self.token, party, self.address, amount)
        self.emit("deposited", party, amount, deltas)
        self.require(False, "always fails after moving money")


@pytest.fixture
def bank():
    chain = SimulatedChain("apr")
    token = chain.register_token(Token("APR"))
    token.mint("alice", 100)
    contract = chain.deploy(Piggybank(token))
    return chain, token, contract


class TestExecution:
    def test_successful_transaction_logs_event(self, bank):
        chain, token, contract = bank
        ok = chain.execute(1000, lambda: contract.deposit("alice", 30))
        assert ok
        assert len(chain.log) == 1
        event = chain.log[0]
        assert event.name == "deposited"
        assert event.local_time == 1000
        assert token.balance_of(contract.address) == 30

    def test_revert_rolls_back_state_and_events(self, bank):
        chain, token, contract = bank
        ok = chain.execute(1000, lambda: contract.deposit_then_fail("alice", 30))
        assert not ok
        assert chain.log == []
        assert token.balance_of("alice") == 100
        assert chain.failed and chain.failed[0][1] == "always fails after moving money"

    def test_revert_reason_recorded(self, bank):
        chain, _, contract = bank
        contract.locked = True
        chain.execute(1000, lambda: contract.deposit("alice", 30))
        assert chain.failed[0] == (1000, "bank is locked")

    def test_current_time_outside_tx_rejected(self, bank):
        chain, _, _ = bank
        with pytest.raises(ChainError):
            chain.current_time

    def test_skewed_clock_stamps_events(self):
        chain = SimulatedChain("ban", FixedSkewClock(7, 10))
        token = chain.register_token(Token("BAN"))
        token.mint("bob", 10)
        contract = chain.deploy(Piggybank(token))
        chain.execute(1000, lambda: contract.deposit("bob", 1))
        assert chain.log[0].local_time == 1007

    def test_duplicate_contract_rejected(self, bank):
        chain, token, _ = bank
        with pytest.raises(ChainError):
            chain.deploy(Piggybank(token))

    def test_event_props_include_any_form(self, bank):
        chain, _, contract = bank
        chain.execute(5, lambda: contract.deposit("alice", 1))
        props = chain.log[0].props()
        assert "apr.deposited(alice)" in props
        assert "apr.deposited(any)" in props


class TestTransferDeltas:
    def test_party_to_party(self):
        deltas = transfer_deltas("alice", "bob", 10)
        assert deltas == {"from.alice": 10, "to.bob": 10}

    def test_contract_accounts_untracked(self):
        deltas = transfer_deltas("contract:Swap", "alice", 10)
        assert deltas == {"to.alice": 10}


class TestChainNetwork:
    def test_schedule_executes_in_time_order(self):
        network = ChainNetwork(epsilon_ms=5)
        chain = network.add_chain("apr")
        token = chain.register_token(Token("APR"))
        token.mint("alice", 100)
        contract = chain.deploy(Piggybank(token))
        network.schedule(300, chain, lambda: contract.deposit("alice", 3), "late")
        network.schedule(100, chain, lambda: contract.deposit("alice", 1), "early")
        results = network.run()
        assert [d for d, _ in results] == ["early", "late"]
        assert [e.local_time for e in chain.log] == [100, 300]

    def test_skew_must_respect_epsilon(self):
        network = ChainNetwork(epsilon_ms=5)
        with pytest.raises(ChainError):
            network.add_chain("apr", skew_ms=5)

    def test_duplicate_chain_rejected(self):
        network = ChainNetwork()
        network.add_chain("apr")
        with pytest.raises(ChainError):
            network.add_chain("apr")


class TestLogConversion:
    def test_chains_become_processes(self, bank):
        chain, _, contract = bank
        chain.execute(10, lambda: contract.deposit("alice", 1))
        chain.execute(20, lambda: contract.deposit("alice", 2))
        comp = computation_from_chains([chain], epsilon_ms=5)
        assert comp.processes == ["apr"]
        assert len(comp) == 2

    def test_deltas_carried_into_events(self, bank):
        chain, _, contract = bank
        chain.execute(10, lambda: contract.deposit("alice", 5))
        comp = computation_from_chains([chain], epsilon_ms=5)
        assert comp.events[0].deltas["from.alice"] == 5

    def test_events_sorted_by_local_time(self, bank):
        chain, _, contract = bank
        chain.execute(20, lambda: contract.deposit("alice", 1))
        chain.execute(10, lambda: contract.deposit("alice", 1))
        comp = computation_from_events(chain.log, epsilon_ms=5)
        times = [e.local_time for e in comp.events]
        assert times == sorted(times)
