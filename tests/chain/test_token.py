"""Unit tests for the token ledger."""

import pytest

from repro.chain.token import Token
from repro.errors import ChainError, ContractRevert


class TestToken:
    def test_mint_and_balance(self):
        token = Token("APR")
        token.mint("alice", 100)
        assert token.balance_of("alice") == 100

    def test_unknown_holder_zero(self):
        assert Token("APR").balance_of("nobody") == 0

    def test_transfer(self):
        token = Token("APR")
        token.mint("alice", 100)
        token.transfer("alice", "bob", 40)
        assert token.balance_of("alice") == 60
        assert token.balance_of("bob") == 40

    def test_insufficient_funds_reverts(self):
        token = Token("APR")
        token.mint("alice", 10)
        with pytest.raises(ContractRevert):
            token.transfer("alice", "bob", 11)

    def test_negative_transfer_reverts(self):
        token = Token("APR")
        with pytest.raises(ContractRevert):
            token.transfer("alice", "bob", -1)

    def test_negative_mint_rejected(self):
        with pytest.raises(ChainError):
            Token("APR").mint("alice", -5)

    def test_empty_symbol_rejected(self):
        with pytest.raises(ChainError):
            Token("")

    def test_total_supply_conserved_by_transfers(self):
        token = Token("APR")
        token.mint("alice", 100)
        token.mint("bob", 50)
        token.transfer("alice", "bob", 30)
        assert token.total_supply() == 150
