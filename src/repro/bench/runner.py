"""Parameter-sweep harness: run the monitor across settings and time it."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.workload import WorkloadSpec, formula_for, generate_workload, model_for_formula
from repro.distributed.computation import DistributedComputation
from repro.monitor.smt_monitor import SmtMonitor
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula


@dataclass
class SweepPoint:
    """One measured configuration of a sweep."""

    label: str
    runtime_seconds: float
    verdicts: frozenset[bool]
    traces_enumerated: int
    events: int
    extra: dict[str, object] = field(default_factory=dict)


def run_monitor_timed(
    formula: Formula,
    computation: DistributedComputation,
    segments: int = 1,
    max_traces_per_segment: int | None = None,
    max_distinct_per_segment: int | None = None,
    backend: str = "dfs",
) -> tuple[MonitorResult, float]:
    """Run the monitor once, returning (result, wall-clock seconds)."""
    monitor = SmtMonitor(
        formula,
        segments=segments,
        max_traces_per_segment=max_traces_per_segment,
        max_distinct_per_segment=max_distinct_per_segment,
        backend=backend,
    )
    started = time.perf_counter()
    result = monitor.run(computation)
    elapsed = time.perf_counter() - started
    return result, elapsed


def measure_point(
    label: str,
    formula_name: str,
    workload: WorkloadSpec,
    segments: int,
    max_traces_per_segment: int | None = 2000,
    max_distinct_per_segment: int | None = None,
    window_ms: int = 1000,
) -> SweepPoint:
    """Generate a workload for a formula and time the monitor on it."""
    formula = formula_for(formula_name, workload.processes, window_ms)
    computation = generate_workload(workload)
    result, elapsed = run_monitor_timed(
        formula,
        computation,
        segments=segments,
        max_traces_per_segment=max_traces_per_segment,
        max_distinct_per_segment=max_distinct_per_segment,
    )
    traces = sum(r.traces_enumerated for r in result.segment_reports)
    return SweepPoint(
        label=label,
        runtime_seconds=elapsed,
        verdicts=result.verdicts,
        traces_enumerated=traces,
        events=len(computation),
        extra={"exhaustive": result.exhaustive},
    )


def sweep(points: list[tuple[str, Callable[[], SweepPoint]]]) -> list[SweepPoint]:
    """Evaluate labelled thunks in order (simple, deterministic)."""
    return [thunk() for _, thunk in points]
