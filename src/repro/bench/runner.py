"""Parameter-sweep harness: run the monitor across settings and time it."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.workload import WorkloadSpec, formula_for, generate_workload, model_for_formula
from repro.distributed.computation import DistributedComputation
from repro.monitor.factory import make_monitor
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.service import BatchReport, MonitorService


@dataclass
class SweepPoint:
    """One measured configuration of a sweep."""

    label: str
    runtime_seconds: float
    verdicts: frozenset[bool]
    traces_enumerated: int
    events: int
    extra: dict[str, object] = field(default_factory=dict)


def run_monitor_timed(
    formula: Formula,
    computation: DistributedComputation,
    segments: int = 1,
    max_traces_per_segment: int | None = None,
    max_distinct_per_segment: int | None = None,
    backend: str = "dfs",
) -> tuple[MonitorResult, float]:
    """Run the monitor once, returning (result, wall-clock seconds)."""
    monitor = make_monitor(
        formula,
        "smt",
        segments=segments,
        max_traces_per_segment=max_traces_per_segment,
        max_distinct_per_segment=max_distinct_per_segment,
        backend=backend,
    )
    started = time.perf_counter()
    result = monitor.run(computation)
    elapsed = time.perf_counter() - started
    return result, elapsed


def measure_point(
    label: str,
    formula_name: str,
    workload: WorkloadSpec,
    segments: int,
    max_traces_per_segment: int | None = 2000,
    max_distinct_per_segment: int | None = None,
    window_ms: int = 1000,
) -> SweepPoint:
    """Generate a workload for a formula and time the monitor on it."""
    formula = formula_for(formula_name, workload.processes, window_ms)
    computation = generate_workload(workload)
    result, elapsed = run_monitor_timed(
        formula,
        computation,
        segments=segments,
        max_traces_per_segment=max_traces_per_segment,
        max_distinct_per_segment=max_distinct_per_segment,
    )
    traces = sum(r.traces_enumerated for r in result.segment_reports)
    return SweepPoint(
        label=label,
        runtime_seconds=elapsed,
        verdicts=result.verdicts,
        traces_enumerated=traces,
        events=len(computation),
        extra={"exhaustive": result.exhaustive},
    )


def sweep(points: list[tuple[str, Callable[[], SweepPoint]]]) -> list[SweepPoint]:
    """Evaluate labelled thunks in order (simple, deterministic)."""
    return [thunk() for _, thunk in points]


def run_batch_timed(
    formula: Formula,
    computations: Sequence[DistributedComputation],
    monitor: str = "smt",
    workers: int | None = None,
    chunksize: int | None = None,
    service: MonitorService | None = None,
    **monitor_kwargs,
) -> BatchReport:
    """Monitor a batch of computations over a worker pool.

    The orchestration counterpart of :func:`run_monitor_timed`: the
    returned :class:`~repro.service.BatchReport` carries wall-clock,
    per-verdict totals, and worker utilization — the numbers the
    parallel-scaling benchmark plots.

    Pass a persistent :class:`~repro.service.MonitorService` as
    ``service`` to amortise pool startup across repeated batches (the
    ``workers``/``chunksize`` arguments are then ignored in favour of the
    service's own pool); without one, a temporary pool is spawned and
    torn down around this batch — the legacy per-call behaviour.
    ``workers=1`` without a service runs inline (no pool, no IPC), so
    serial baselines measure the algorithm, not queue round-trips.
    """
    if service is not None:
        return service.map(computations, formula, monitor=monitor, **monitor_kwargs)
    from repro.parallel import ParallelMonitor

    return ParallelMonitor(
        formula, monitor=monitor, workers=workers, chunksize=chunksize, **monitor_kwargs
    ).run_batch(computations)


def batch_sweep_point(label: str, report: BatchReport) -> SweepPoint:
    """Summarise a batch report as one sweep point (for the reporting tables)."""
    totals = report.verdict_totals
    return SweepPoint(
        label=label,
        runtime_seconds=report.wall_seconds,
        verdicts=frozenset(v for v, c in totals.items() if c > 0),
        traces_enumerated=sum(
            r.traces_enumerated
            for item in report.ok_items
            for r in item.result.segment_reports
        ),
        events=len(report.items),
        extra={
            "workers": report.workers,
            "utilization": report.utilization,
            "errors": len(report.errors),
        },
    )
