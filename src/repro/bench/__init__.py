"""Benchmark harness support: workloads, sweeps, batches, reporting."""

from repro.bench.reporting import (
    assert_monotone_nondecreasing,
    format_batch_report,
    format_series,
    print_batch_report,
    print_series,
)
from repro.bench.runner import (
    SweepPoint,
    batch_sweep_point,
    measure_point,
    run_batch_timed,
    run_monitor_timed,
    sweep,
)
from repro.bench.workload import (
    WorkloadSpec,
    formula_for,
    generate_workload,
    model_for_formula,
)

__all__ = [
    "SweepPoint",
    "WorkloadSpec",
    "assert_monotone_nondecreasing",
    "batch_sweep_point",
    "format_batch_report",
    "format_series",
    "formula_for",
    "generate_workload",
    "measure_point",
    "model_for_formula",
    "print_batch_report",
    "print_series",
    "run_batch_timed",
    "run_monitor_timed",
    "sweep",
]
