"""Benchmark harness support: workloads, sweeps, reporting."""

from repro.bench.reporting import assert_monotone_nondecreasing, format_series, print_series
from repro.bench.runner import SweepPoint, measure_point, run_monitor_timed, sweep
from repro.bench.workload import (
    WorkloadSpec,
    formula_for,
    generate_workload,
    model_for_formula,
)

__all__ = [
    "SweepPoint",
    "WorkloadSpec",
    "assert_monotone_nondecreasing",
    "format_series",
    "formula_for",
    "generate_workload",
    "measure_point",
    "model_for_formula",
    "print_series",
    "run_monitor_timed",
    "sweep",
]
