"""Rendering sweep results the way the paper's figures present them."""

from __future__ import annotations

from repro.bench.runner import SweepPoint


def format_series(title: str, points: list[SweepPoint]) -> str:
    """A fixed-width table: one row per sweep point."""
    lines = [title, "-" * len(title)]
    header = f"{'point':<28} {'runtime(s)':>12} {'traces':>8} {'events':>8} verdicts"
    lines.append(header)
    for point in points:
        verdicts = "".join(
            symbol for flag, symbol in ((True, "T"), (False, "F")) if flag in point.verdicts
        ) or "-"
        lines.append(
            f"{point.label:<28} {point.runtime_seconds:>12.4f} "
            f"{point.traces_enumerated:>8} {point.events:>8} {{{verdicts}}}"
        )
    return "\n".join(lines)


def print_series(title: str, points: list[SweepPoint]) -> None:
    print(format_series(title, points))


def assert_monotone_nondecreasing(
    values: list[float],
    tolerance: float = 0.5,
) -> bool:
    """Loose shape check: later values should not drop below
    ``(1 - tolerance)`` of the running maximum.  Used by benchmarks to
    sanity-check growth trends without pinning absolute runtimes."""
    running_max = 0.0
    for value in values:
        if value < running_max * (1 - tolerance):
            return False
        running_max = max(running_max, value)
    return True
