"""Rendering sweep results the way the paper's figures present them."""

from __future__ import annotations

from repro.bench.runner import SweepPoint
from repro.service import BatchReport


def format_series(title: str, points: list[SweepPoint]) -> str:
    """A fixed-width table: one row per sweep point."""
    lines = [title, "-" * len(title)]
    header = f"{'point':<28} {'runtime(s)':>12} {'traces':>8} {'events':>8} verdicts"
    lines.append(header)
    for point in points:
        verdicts = "".join(
            symbol for flag, symbol in ((True, "T"), (False, "F")) if flag in point.verdicts
        ) or "-"
        lines.append(
            f"{point.label:<28} {point.runtime_seconds:>12.4f} "
            f"{point.traces_enumerated:>8} {point.events:>8} {{{verdicts}}}"
        )
    return "\n".join(lines)


def print_series(title: str, points: list[SweepPoint]) -> None:
    print(format_series(title, points))


def format_batch_report(title: str, report: BatchReport) -> str:
    """A fixed-width table over the batch items plus a summary footer."""
    lines = [title, "-" * len(title)]
    lines.append(f"{'item':>6} {'runtime(s)':>12} {'verdicts':<10} status")
    for item in report.items:
        if item.ok:
            verdicts = "".join(
                symbol
                for flag, symbol in ((True, "T"), (False, "F"))
                if flag in item.result.verdicts
            ) or "-"
            status = "ok"
        else:
            verdicts = "-"
            status = item.error
        lines.append(f"{item.index:>6} {item.seconds:>12.4f} {{{verdicts}}}".ljust(32) + f" {status}")
    totals = report.verdict_totals
    totals_text = ", ".join(
        f"{'T' if verdict else 'F'}×{totals[verdict]}"
        for verdict in sorted(totals, reverse=True)
    ) or "-"
    lines.append(
        f"total: {len(report.ok_items)}/{len(report.items)} ok | verdicts {totals_text} | "
        f"wall {report.wall_seconds:.3f}s | {report.workers} workers "
        f"@ {report.utilization:.0%} busy"
    )
    return "\n".join(lines)


def print_batch_report(title: str, report: BatchReport) -> None:
    print(format_batch_report(title, report))


def assert_monotone_nondecreasing(
    values: list[float],
    tolerance: float = 0.5,
) -> bool:
    """Loose shape check: later values should not drop below
    ``(1 - tolerance)`` of the running maximum.  Used by benchmarks to
    sanity-check growth trends without pinning absolute runtimes."""
    running_max = 0.0
    for value in values:
        if value < running_max * (1 - tolerance):
            return False
        running_max = max(running_max, value)
    return True
