"""Synthetic workload generation for the Fig 5 parameter sweeps.

Each workload produces a :class:`~repro.distributed.DistributedComputation`
from one of the three UPPAAL-style models, with the paper's knobs exposed:
number of processes, computation length, event rate, clock skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.computation import DistributedComputation
from repro.errors import ReproError
from repro.mtl.ast import Formula
from repro.specs import uppaal_specs
from repro.timed_automata import fischer, gossip, train_gate
from repro.timed_automata.trace_gen import computation_from_network

_MODELS = {
    "train_gate": train_gate.build_network,
    "fischer": fischer.build_network,
    "gossip": gossip.build_network,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic-workload configuration (the paper's defaults)."""

    model: str = "fischer"
    processes: int = 2
    length_seconds: float = 2.0
    events_per_second: float = 10.0
    epsilon_ms: int = 15
    clock_model: str = "fixed"
    seed: int = 0

    def length_ticks(self) -> int:
        """Simulation ticks so the computation spans ``length_seconds``."""
        return max(1, round(self.length_seconds * self.events_per_second))


def generate_workload(spec: WorkloadSpec) -> DistributedComputation:
    """Simulate the model and emit the partially synchronous computation."""
    try:
        build = _MODELS[spec.model]
    except KeyError:
        raise ReproError(f"unknown model {spec.model!r}; pick from {sorted(_MODELS)}") from None
    network = build(spec.processes, seed=spec.seed)
    network.run(spec.length_ticks())
    return computation_from_network(
        network,
        spec.epsilon_ms,
        events_per_second=spec.events_per_second,
        clock_model=spec.clock_model,
        seed=spec.seed,
    )


def formula_for(name: str, processes: int, window_ms: int = 1000) -> Formula:
    """Instantiate one of phi1..phi6 for a process count."""
    builders = {
        "phi1": lambda: uppaal_specs.phi1(processes),
        "phi2": lambda: uppaal_specs.phi2(processes),
        "phi3": lambda: uppaal_specs.phi3(processes),
        "phi4": lambda: uppaal_specs.phi4(processes, window_ms),
        "phi5": lambda: uppaal_specs.phi5(processes, window_ms),
        "phi6": lambda: uppaal_specs.phi6(processes, window_ms),
    }
    try:
        return builders[name]()
    except KeyError:
        raise ReproError(f"unknown formula {name!r}") from None


def model_for_formula(name: str) -> str:
    """The model whose traces a formula speaks about (Fig 5a pairing)."""
    try:
        return uppaal_specs.ALL_SPECS[name][1]
    except KeyError:
        raise ReproError(f"unknown formula {name!r}") from None
