"""Import/export of computations, formulas, and monitoring results."""

from repro.io.serialize import (
    SerializationError,
    computation_from_dict,
    computation_to_dict,
    dump_computation,
    formula_from_text,
    formula_to_text,
    load_computation,
    result_to_dict,
)

__all__ = [
    "SerializationError",
    "computation_from_dict",
    "computation_to_dict",
    "dump_computation",
    "formula_from_text",
    "formula_to_text",
    "load_computation",
    "result_to_dict",
]
