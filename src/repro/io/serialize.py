"""JSON (de)serialization of computations, formulas, and results.

A deployed monitor consumes event logs produced elsewhere (chain
indexers, UPPAAL exports); these helpers define a stable wire format:

Computation JSON::

    {
      "epsilon": 15,
      "events": [
        {"process": "apr", "time": 250,
         "props": ["apr.premium_deposited(bob)"],
         "deltas": {"from.bob": 1}},
        ...
      ],
      "messages": [{"send": ["P1", 0], "recv": ["P2", 1]}, ...]
    }

Formulas serialize to their concrete syntax (``repro.mtl.parse`` is the
inverse); monitor results serialize to a plain summary dictionary.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.distributed.computation import DistributedComputation
from repro.errors import ReproError
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.mtl.parser import parse


class SerializationError(ReproError):
    """The JSON payload does not match the wire format."""


# -- computations ------------------------------------------------------------------


def computation_to_dict(computation: DistributedComputation) -> dict[str, Any]:
    """The JSON-ready dictionary form of a computation."""
    events = [
        {
            "process": event.process,
            "time": event.local_time,
            "props": sorted(event.props),
            **({"deltas": dict(event.deltas)} if event.deltas else {}),
        }
        for event in computation.events
    ]
    messages = [
        {"send": list(send.key), "recv": list(recv.key)}
        for send, recv in computation.messages
    ]
    payload: dict[str, Any] = {"epsilon": computation.epsilon, "events": events}
    if messages:
        payload["messages"] = messages
    return payload


def computation_from_dict(payload: Mapping[str, Any]) -> DistributedComputation:
    """Rebuild a computation from its dictionary form."""
    try:
        epsilon = int(payload["epsilon"])
        raw_events = payload["events"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed computation payload: {exc}") from exc
    computation = DistributedComputation(epsilon)
    by_key = {}
    for raw in raw_events:
        try:
            event = computation.add_event(
                str(raw["process"]),
                int(raw["time"]),
                tuple(raw.get("props", ())),
                {str(k): float(v) for k, v in raw.get("deltas", {}).items()} or None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed event {raw!r}: {exc}") from exc
        by_key[event.key] = event
    for raw in payload.get("messages", ()):
        try:
            send = by_key[tuple(raw["send"])]
            recv = by_key[tuple(raw["recv"])]
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed message edge {raw!r}") from exc
        computation.add_message(send, recv)
    return computation


def dump_computation(computation: DistributedComputation, path: str) -> None:
    """Write a computation as JSON to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(computation_to_dict(computation), handle, indent=2)


def load_computation(path: str) -> DistributedComputation:
    """Read a computation from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return computation_from_dict(json.load(handle))


# -- formulas ----------------------------------------------------------------------


def formula_to_text(formula: Formula) -> str:
    """Concrete syntax; ``formula_from_text`` is the inverse."""
    return str(formula)


def formula_from_text(text: str) -> Formula:
    return parse(text)


# -- results -----------------------------------------------------------------------


def result_to_dict(result: MonitorResult) -> dict[str, Any]:
    """A plain summary of a monitoring result."""
    return {
        "formula": str(result.formula),
        "verdicts": sorted(result.verdicts),
        "verdict_counts": {str(k): v for k, v in result.verdict_counts.items()},
        "deterministic": result.is_deterministic,
        "exhaustive": result.exhaustive,
        "verdict_set_complete": result.verdict_set_complete,
        "segments": [
            {
                "index": report.index,
                "events": report.events,
                "traces": report.traces_enumerated,
                "distinct_residuals": report.distinct_residuals,
                "truncated": report.truncated,
                "saturated": report.saturated,
            }
            for report in result.segment_reports
        ],
    }
