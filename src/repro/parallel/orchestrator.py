"""The parallel monitoring orchestrator (compatibility wrapper).

.. deprecated::
    :class:`ParallelMonitor` is kept as a thin per-call wrapper over the
    persistent :class:`~repro.service.MonitorService`.  It spawns a fresh
    pool on every ``run``/``run_batch`` call — exactly the fork tax the
    service exists to amortise — so new code should hold a service
    instead::

        with MonitorService(workers=4) as svc:
            report = svc.map(computations, formula=spec)

    The wrapper remains supported for one-shot scripts and for the
    segment-parallel ``run`` entry point.

Two ways to spend cores:

* **Batch mode** (:meth:`ParallelMonitor.run_batch`) — fan a list of
  independent computations out over the pool; results come back in input
  order and a poisoned computation is captured per-item instead of
  killing the batch.

* **Segment-parallel mode** (:meth:`ParallelMonitor.run`) — one large
  computation.  The segmented monitor's pipeline carries a *set* of
  residual formulas between segments; once more than one residual is in
  flight, progression of each residual over the remaining segments is
  independent of the others.  The orchestrator runs the pipeline
  serially until the carried set is big enough to split, shards it
  round-robin across workers, resumes every shard from the same segment
  boundary, and merges the shard results with
  :meth:`~repro.monitor.verdicts.MonitorResult.merge`.  Verdict
  multisets are bit-identical to the serial path (enumeration budgets,
  when set, apply per shard — counts under ``max_distinct`` truncation
  may then differ).
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.smt_monitor import SmtMonitor
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.progression.progressor import close
from repro.mtl.ast import Formula, intern_id
from repro.service import MonitorService, default_workers
from repro.service.reports import BatchReport
from repro.service.tasks import (
    MonitorTask,
    SegmentShardTask,
    run_monitor_task,
)

__all__ = ["BatchReport", "ParallelMonitor", "default_workers"]


class ParallelMonitor:
    """Shard monitoring work over a worker pool (one pool per call).

    Parameters
    ----------
    formula:
        The MTL specification (shared by every computation).
    monitor:
        Engine kind for batch mode — any :func:`~repro.monitor.factory.make_monitor`
        kind, including ``"auto"``.  Segment-parallel mode always uses the
        segmented smt monitor (the only engine with a resumable pipeline).
    workers:
        Pool size; ``None`` picks :func:`default_workers`.  ``workers=1``
        runs everything inline — no pool, handy under debuggers.
    chunksize:
        Accepted for backward compatibility and ignored: the service pool
        load-balances per item instead of chunking.
    min_shard_residuals:
        Segment-parallel mode fans out only once at least this many
        residual formulas are carried (below it the split cannot win).
    intra_segment_parts:
        Enable **intra-segment** parallelism instead of residual
        sharding: every segment's root-frontier enumeration is split
        into up to this many independent sub-tasks fanned across the
        pool (see
        :func:`~repro.encoding.verdict_enumerator.partitioned_segment_outcomes`),
        merging to a verdict multiset bit-identical to the serial walk.
        Unlike residual sharding this parallelises from the *first*
        segment — including single-segment runs, where sharding has
        nothing to split.  Requires the default ``dfs`` backend; must be
        >= 2.
    **monitor_kwargs:
        Forwarded to the engine constructor (``segments=``, budgets, ...).
    """

    def __init__(
        self,
        formula: Formula,
        monitor: str = "smt",
        workers: int | None = None,
        chunksize: int | None = None,
        min_shard_residuals: int = 2,
        intra_segment_parts: int | None = None,
        endpoints: Sequence[object] | None = None,
        **monitor_kwargs,
    ) -> None:
        if workers is not None and workers < 1:
            raise MonitorError(f"workers must be >= 1, got {workers}")
        if min_shard_residuals < 2:
            raise MonitorError(
                f"min_shard_residuals must be >= 2, got {min_shard_residuals}"
            )
        if intra_segment_parts is not None and intra_segment_parts < 2:
            raise MonitorError(
                f"intra_segment_parts must be >= 2, got {intra_segment_parts}"
            )
        self._formula = formula
        self._kind = monitor
        self._endpoints = list(endpoints) if endpoints is not None else None
        if self._endpoints is not None:
            if workers is not None and workers != len(self._endpoints):
                raise MonitorError(
                    f"workers={workers} contradicts the {len(self._endpoints)} endpoints"
                )
            self._workers = len(self._endpoints)
        else:
            self._workers = workers if workers is not None else default_workers()
        self._chunksize = chunksize
        self._min_shard = min_shard_residuals
        self._intra_parts = intra_segment_parts
        self._monitor_kwargs = dict(monitor_kwargs)

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def workers(self) -> int:
        return self._workers

    # -- batch mode ---------------------------------------------------------------

    def run_batch(
        self, computations: Sequence[DistributedComputation]
    ) -> BatchReport:
        """Monitor every computation; results keep input order.

        Delegates to a temporary :class:`~repro.service.MonitorService`
        (each worker builds its own engine via ``make_monitor``, so
        ``monitor="auto"`` re-selects per item; failures are captured per
        item as :class:`~repro.service.tasks.BatchItem` errors).  With one
        worker — or one item — everything runs inline without a pool.
        """
        computations = list(computations)
        workers = min(self._workers, max(1, len(computations)))
        if self._endpoints is not None:
            # An explicit endpoint list is the pool: use it as given
            # (remote agents cost nothing extra to include for one item).
            with MonitorService(
                endpoints=self._endpoints,
                formula=self._formula,
                monitor=self._kind,
                **self._monitor_kwargs,
            ) as service:
                return service.map(computations)
        if workers <= 1 or len(computations) <= 1:
            started = time.perf_counter()
            items = [
                run_monitor_task(
                    MonitorTask(
                        index=index,
                        kind=self._kind,
                        formula=self._formula,
                        kwargs=self._monitor_kwargs,
                        computation=computation,
                    )
                )
                for index, computation in enumerate(computations)
            ]
            wall = time.perf_counter() - started
            return BatchReport(items=items, workers=workers, wall_seconds=wall)
        with MonitorService(
            workers=workers,
            formula=self._formula,
            monitor=self._kind,
            **self._monitor_kwargs,
        ) as service:
            return service.map(computations)

    # -- segment-parallel mode ------------------------------------------------------

    def run(self, computation: DistributedComputation) -> MonitorResult:
        """Monitor one computation, parallelising across its segments.

        The pipeline runs serially until the carried residual set reaches
        ``min_shard_residuals`` with segments still to go, then shards the
        residuals across service workers and merges the shard results.
        Falls back to the plain serial monitor when the computation is too
        small, the pool has one worker, or the carried set never grows.

        The worker pool spawns on a background thread *while* the serial
        prefix enumerates, so shards start executing as soon as the
        carried set crosses the threshold instead of serialising prefix
        enumeration behind pool startup.
        """
        engine = SmtMonitor(self._formula, **self._monitor_kwargs)
        if self._workers <= 1 or len(computation) == 0:
            return engine.run(computation)

        if self._intra_parts is not None:
            return self._run_intra_segment(engine, computation)

        segments = engine.segments_of(computation)
        if len(segments) <= 1:
            # One segment can never reach a shardable boundary: stay serial
            # and skip the pool entirely.
            return engine.run(computation)

        hb = computation.happened_before()
        result = MonitorResult(self._formula)
        state = engine.initial_state()
        warmup = _PoolWarmup(
            {"endpoints": self._endpoints}
            if self._endpoints is not None
            else {"workers": self._workers}
        )
        warmup.start()
        try:
            order = 0
            while order < len(segments):
                if len(state.carried) >= self._min_shard:
                    break  # enough independent work to split; segments[order:] go parallel
                if not state.carried:
                    break
                state = engine.step(
                    hb, segments, order, state, result, computation.epsilon
                )
                order += 1

            if order >= len(segments) or len(state.carried) < self._min_shard:
                for residual, count in state.carried.items():
                    result.record(close(residual), count)
                return result

            shards = self._shard_residuals(state.carried)
            tasks = [
                SegmentShardTask(
                    computation=computation,
                    formula=self._formula,
                    kwargs=self._monitor_kwargs,
                    carried=shard,
                    anchor=state.anchor,
                    base_valuation=state.base_valuation,
                    frontier=state.frontier,
                    start=order,
                )
                for shard in shards
            ]
            with warmup.service() as service:
                futures = [service.submit_shard(task) for task in tasks]
                shard_results = [future.result() for future in futures]
        finally:
            warmup.discard()
        for shard_result in shard_results:
            result.merge(shard_result)
        self._collapse_segment_reports(result)
        return result

    def _run_intra_segment(
        self, engine: SmtMonitor, computation: DistributedComputation
    ) -> MonitorResult:
        """Run the whole pipeline client-side, fanning each segment's
        enumeration across a pool.

        The pipeline (segmentation, residual carry, closing) stays on
        this thread; only the hot enumeration of each segment's root
        frontier is partitioned into ``segment_part`` sub-tasks.  Works
        for single-segment computations too — exactly the case residual
        sharding cannot touch.  The pool is spawned here and closed in
        the one ``finally`` below, whatever the run outcome.
        """
        service = MonitorService(
            **(
                {"endpoints": self._endpoints}
                if self._endpoints is not None
                else {"workers": self._workers}
            )
        )
        try:
            engine.attach_partitioner(
                service.submit_segment_part, self._intra_parts
            )
            return engine.run(computation)
        finally:
            engine.detach_partitioner()
            service.close()

    @staticmethod
    def _collapse_segment_reports(result: MonitorResult) -> None:
        """Fold the K per-shard reports of each parallel segment into one.

        Every shard re-enumerates its segments, so trace and residual
        counts *add* (they reflect work actually done) while the
        truncation flags OR — leaving one report per segment index, like
        the serial monitor produces.
        """
        by_index: dict[int, SegmentReport] = {}
        order: list[int] = []
        for report in result.segment_reports:
            existing = by_index.get(report.index)
            if existing is None:
                by_index[report.index] = SegmentReport(
                    index=report.index,
                    events=report.events,
                    traces_enumerated=report.traces_enumerated,
                    distinct_residuals=report.distinct_residuals,
                    truncated=report.truncated,
                    saturated=report.saturated,
                    preempted=report.preempted,
                )
                order.append(report.index)
            else:
                existing.traces_enumerated += report.traces_enumerated
                existing.distinct_residuals += report.distinct_residuals
                existing.truncated = existing.truncated or report.truncated
                existing.saturated = existing.saturated or report.saturated
                existing.preempted = existing.preempted or report.preempted
        result.segment_reports = [by_index[index] for index in order]

    def _shard_residuals(
        self, carried: dict[Formula, int]
    ) -> list[dict[Formula, int]]:
        """Deterministic round-robin split of the carried residuals.

        Oversharded to two shards per worker (when the carried set
        allows): a worker that processes consecutive shards of the same
        computation reuses the segment-trace cache instead of
        re-enumerating, and finer shards balance skewed residual costs.
        The split never changes the merged verdict multiset.

        Ordering is by :func:`~repro.mtl.ast.intern_id` — the residual's
        dense intern-arena row id, an O(1) attribute read instead of
        stringifying every formula tree, and just as deterministic:
        equal carried sets split identically within a process whatever
        insertion order produced them.  Shards carry materialized
        ``Formula`` objects (the pipeline's columnar id column never
        crosses a process boundary — arena ids are process-local).
        """
        shard_count = min(self._workers * 2, len(carried))
        ordered = sorted(carried.items(), key=lambda kv: intern_id(kv[0]))
        shards: list[dict[Formula, int]] = [{} for _ in range(shard_count)]
        for position, (residual, count) in enumerate(ordered):
            shards[position % shard_count][residual] = count
        return shards


class _PoolWarmup:
    """Spawns a :class:`MonitorService` pool concurrently with the serial
    prefix of a segment-parallel run.

    ``service()`` joins the spawn and hands the pool over (re-raising a
    spawn failure); ``discard()`` retires an unused pool — the prefix
    decided everything, or failed — *without blocking the caller*: the
    serial result is already computed at that point, so teardown happens
    on a background thread.  This is the overlap's cost model: a run
    that never shards pays one speculative pool spawn (in background
    CPU, not latency) in exchange for shards starting the moment the
    carried set crosses the threshold on runs that do.
    """

    def __init__(self, pool_kwargs: dict) -> None:
        self._pool_kwargs = pool_kwargs
        self._service: MonitorService | None = None
        self._error: BaseException | None = None
        self._taken = False
        self._thread = threading.Thread(
            target=self._spawn, name="parallel-monitor-pool-warmup", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _spawn(self) -> None:
        try:
            self._service = MonitorService(**self._pool_kwargs)
        except BaseException as exc:  # noqa: BLE001 — surfaced in service()
            self._error = exc

    def service(self) -> MonitorService:
        self._thread.join()
        if self._error is not None:
            raise self._error
        self._taken = True
        return self._service

    def discard(self) -> None:
        if self._taken:
            return  # the with-block already closed it

        def close_when_spawned() -> None:
            self._thread.join()
            if self._service is not None:
                self._service.close()

        threading.Thread(
            target=close_when_spawned,
            name="parallel-monitor-pool-discard",
            daemon=True,
        ).start()
