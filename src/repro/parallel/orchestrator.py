"""The parallel monitoring orchestrator.

Two ways to spend cores:

* **Batch mode** (:meth:`ParallelMonitor.run_batch`) — fan a list of
  independent computations out over a process pool.  This is the
  production-throughput path: a deployed monitor watches many protocol
  sessions at once, and each session is embarrassingly parallel.
  Results come back in input order, and a poisoned computation is
  captured per-item instead of killing the batch.

* **Segment-parallel mode** (:meth:`ParallelMonitor.run`) — one large
  computation.  The segmented monitor's pipeline carries a *set* of
  residual formulas between segments; once more than one residual is in
  flight, progression of each residual over the remaining segments is
  independent of the others.  The orchestrator runs the pipeline
  serially until the carried set is big enough to split, shards it
  round-robin across workers, resumes every shard from the same segment
  boundary, and merges the shard results with
  :meth:`~repro.monitor.verdicts.MonitorResult.merge`.  Verdict
  multisets are bit-identical to the serial path (enumeration budgets,
  when set, apply per shard — counts under ``max_distinct`` truncation
  may then differ).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.smt_monitor import SmtMonitor
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.progression.progressor import close
from repro.mtl.ast import Formula
from repro.parallel.worker import (
    BatchItem,
    MonitorTask,
    SegmentShardTask,
    run_monitor_task,
    run_segment_shard,
)


def default_workers() -> int:
    """Pool size when the caller does not pick one (bounded: oversubscribing
    a monitoring batch buys nothing)."""
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class BatchReport:
    """Aggregate outcome of one monitored batch.

    Per-verdict totals over the successful items, wall-clock time, and
    worker utilization (total busy seconds across items divided by
    ``workers * wall``; 1.0 means the pool never idled).
    """

    items: list[BatchItem] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def ok_items(self) -> list[BatchItem]:
        return [item for item in self.items if item.ok]

    @property
    def errors(self) -> list[tuple[int, str]]:
        return [(item.index, item.error) for item in self.items if not item.ok]

    @property
    def results(self) -> list[MonitorResult | None]:
        """Per-item results in input order (None where the item failed)."""
        return [item.result for item in self.items]

    @property
    def verdict_totals(self) -> dict[bool, int]:
        totals: dict[bool, int] = {}
        for item in self.ok_items:
            for verdict, count in item.result.verdict_counts.items():
                totals[verdict] = totals.get(verdict, 0) + count
        return totals

    @property
    def busy_seconds(self) -> float:
        return sum(item.seconds for item in self.items)

    @property
    def utilization(self) -> float:
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))

    def merged(self, formula: Formula) -> MonitorResult:
        """All successful items folded into one result."""
        merged = MonitorResult(formula)
        for item in self.ok_items:
            merged.merge(item.result)
        return merged

    def __str__(self) -> str:
        totals = self.verdict_totals
        parts = [f"{len(self.ok_items)}/{len(self.items)} ok"]
        if totals:
            parts.append(
                "verdicts " + " ".join(
                    f"{'T' if v else 'F'}×{totals[v]}" for v in sorted(totals, reverse=True)
                )
            )
        parts.append(f"wall {self.wall_seconds:.3f}s")
        parts.append(f"{self.workers} workers @ {self.utilization:.0%}")
        return "BatchReport(" + ", ".join(parts) + ")"


class ParallelMonitor:
    """Shard monitoring work over a ``multiprocessing`` pool.

    Parameters
    ----------
    formula:
        The MTL specification (shared by every computation).
    monitor:
        Engine kind for batch mode — any :func:`~repro.monitor.factory.make_monitor`
        kind, including ``"auto"``.  Segment-parallel mode always uses the
        segmented smt monitor (the only engine with a resumable pipeline).
    workers:
        Pool size; ``None`` picks :func:`default_workers`.  ``workers=1``
        runs everything inline — no pool, handy under debuggers.
    chunksize:
        Batch items handed to a worker per round-trip; ``None`` derives
        one from the batch size.
    min_shard_residuals:
        Segment-parallel mode fans out only once at least this many
        residual formulas are carried (below it the split cannot win).
    **monitor_kwargs:
        Forwarded to the engine constructor (``segments=``, budgets, ...).
    """

    def __init__(
        self,
        formula: Formula,
        monitor: str = "smt",
        workers: int | None = None,
        chunksize: int | None = None,
        min_shard_residuals: int = 2,
        **monitor_kwargs,
    ) -> None:
        if workers is not None and workers < 1:
            raise MonitorError(f"workers must be >= 1, got {workers}")
        if min_shard_residuals < 2:
            raise MonitorError(
                f"min_shard_residuals must be >= 2, got {min_shard_residuals}"
            )
        self._formula = formula
        self._kind = monitor
        self._workers = workers if workers is not None else default_workers()
        self._chunksize = chunksize
        self._min_shard = min_shard_residuals
        self._monitor_kwargs = dict(monitor_kwargs)

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def workers(self) -> int:
        return self._workers

    # -- batch mode ---------------------------------------------------------------

    def run_batch(
        self, computations: Sequence[DistributedComputation]
    ) -> BatchReport:
        """Monitor every computation; results keep input order.

        Each worker builds its own engine via ``make_monitor`` (passing
        the item's computation, so ``monitor="auto"`` re-selects per
        item).  Failures are captured per item as :class:`BatchItem`
        errors.
        """
        computations = list(computations)
        tasks = [
            MonitorTask(
                index=index,
                kind=self._kind,
                formula=self._formula,
                kwargs=self._monitor_kwargs,
                computation=computation,
            )
            for index, computation in enumerate(computations)
        ]
        workers = min(self._workers, max(1, len(tasks)))
        started = time.perf_counter()
        if workers <= 1 or len(tasks) <= 1:
            items = [run_monitor_task(task) for task in tasks]
        else:
            chunksize = self._chunksize or max(1, len(tasks) // (workers * 4))
            with multiprocessing.Pool(processes=workers) as pool:
                items = pool.map(run_monitor_task, tasks, chunksize=chunksize)
        wall = time.perf_counter() - started
        items.sort(key=lambda item: item.index)  # pool.map preserves order; be explicit
        return BatchReport(items=items, workers=workers, wall_seconds=wall)

    # -- segment-parallel mode ------------------------------------------------------

    def run(self, computation: DistributedComputation) -> MonitorResult:
        """Monitor one computation, parallelising across its segments.

        The pipeline runs serially until the carried residual set reaches
        ``min_shard_residuals`` with segments still to go, then shards the
        residuals across workers and merges the shard results.  Falls back
        to the plain serial monitor when the computation is too small, the
        pool has one worker, or the carried set never grows.
        """
        engine = SmtMonitor(self._formula, **self._monitor_kwargs)
        if self._workers <= 1 or len(computation) == 0:
            return engine.run(computation)

        hb = computation.happened_before()
        segments = engine.segments_of(computation)
        result = MonitorResult(self._formula)
        state = engine.initial_state()
        order = 0
        while order < len(segments):
            if len(state.carried) >= self._min_shard:
                break  # enough independent work to split; segments[order:] go parallel
            if not state.carried:
                break
            state = engine.step(hb, segments, order, state, result, computation.epsilon)
            order += 1

        if order >= len(segments) or len(state.carried) < self._min_shard:
            for residual, count in state.carried.items():
                result.record(close(residual), count)
            return result

        shards = self._shard_residuals(state.carried)
        tasks = [
            SegmentShardTask(
                computation=computation,
                formula=self._formula,
                kwargs=self._monitor_kwargs,
                carried=shard,
                anchor=state.anchor,
                base_valuation=state.base_valuation,
                frontier=state.frontier,
                start=order,
            )
            for shard in shards
        ]
        with multiprocessing.Pool(processes=len(tasks)) as pool:
            shard_results = pool.map(run_segment_shard, tasks)
        for shard_result in shard_results:
            result.merge(shard_result)
        self._collapse_segment_reports(result)
        return result

    @staticmethod
    def _collapse_segment_reports(result: MonitorResult) -> None:
        """Fold the K per-shard reports of each parallel segment into one.

        Every shard re-enumerates its segments, so trace and residual
        counts *add* (they reflect work actually done) while the
        truncation flags OR — leaving one report per segment index, like
        the serial monitor produces.
        """
        by_index: dict[int, SegmentReport] = {}
        order: list[int] = []
        for report in result.segment_reports:
            existing = by_index.get(report.index)
            if existing is None:
                by_index[report.index] = SegmentReport(
                    index=report.index,
                    events=report.events,
                    traces_enumerated=report.traces_enumerated,
                    distinct_residuals=report.distinct_residuals,
                    truncated=report.truncated,
                    saturated=report.saturated,
                )
                order.append(report.index)
            else:
                existing.traces_enumerated += report.traces_enumerated
                existing.distinct_residuals += report.distinct_residuals
                existing.truncated = existing.truncated or report.truncated
                existing.saturated = existing.saturated or report.saturated
        result.segment_reports = [by_index[index] for index in order]

    def _shard_residuals(
        self, carried: dict[Formula, int]
    ) -> list[dict[Formula, int]]:
        """Deterministic round-robin split of the carried residuals."""
        shard_count = min(self._workers, len(carried))
        ordered = sorted(carried.items(), key=lambda kv: str(kv[0]))
        shards: list[dict[Formula, int]] = [{} for _ in range(shard_count)]
        for position, (residual, count) in enumerate(ordered):
            shards[position % shard_count][residual] = count
        return shards
