"""Compatibility re-exports for the pool task payloads.

The task dataclasses and worker entry points moved to
:mod:`repro.service.tasks` when the persistent :class:`~repro.service.MonitorService`
became the primary pool owner; this module keeps the historical import
path (``repro.parallel.worker``) working.
"""

from repro.service.tasks import (
    BatchItem,
    FrozenTopology,
    MonitorTask,
    SegmentPartTask,
    SegmentShardTask,
    run_monitor_task,
    run_segment_part,
    run_segment_shard,
)

__all__ = [
    "BatchItem",
    "FrozenTopology",
    "MonitorTask",
    "SegmentPartTask",
    "SegmentShardTask",
    "run_monitor_task",
    "run_segment_part",
    "run_segment_shard",
]
