"""Parallel monitoring: fan computations (or segment shards) over cores.

``ParallelMonitor`` is now a per-call compatibility wrapper over the
persistent :class:`repro.service.MonitorService`; see ``repro.service``
for the long-lived pool with async submission and live sessions.
"""

from repro.parallel.orchestrator import BatchReport, ParallelMonitor, default_workers
from repro.parallel.worker import BatchItem

__all__ = [
    "BatchItem",
    "BatchReport",
    "ParallelMonitor",
    "default_workers",
]
