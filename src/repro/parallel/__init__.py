"""Parallel monitoring: fan computations (or segment shards) over cores."""

from repro.parallel.orchestrator import BatchReport, ParallelMonitor, default_workers
from repro.parallel.worker import BatchItem

__all__ = [
    "BatchItem",
    "BatchReport",
    "ParallelMonitor",
    "default_workers",
]
