"""Online monitoring: consume an event stream segment-by-segment.

The offline :class:`~repro.monitor.smt_monitor.SmtMonitor` needs the whole
computation up front.  Deployed against live blockchains (the paper's
motivating setting), events arrive continuously; this wrapper buffers
them and lets the caller *advance* the monitor past a time boundary,
progressing all carried residual formulas over the newly closed segment.

Usage::

    monitor = OnlineMonitor(spec, epsilon=2)
    monitor.observe("apricot", local_time=3, props={"apr.escrow(alice)"})
    monitor.advance_to(10)            # everything before t=10 is final
    ...
    result = monitor.finish()         # close residuals -> verdict set
"""

from __future__ import annotations

from typing import Mapping

from repro.distributed.computation import DistributedComputation
from repro.encoding.trace_extractor import segment_carry
from repro.encoding.verdict_enumerator import (
    DEFAULT_TRACE_BUDGET,
    enumerate_segment_outcomes,
)
from repro.errors import MonitorError, PreemptedError
from repro.mtl.ast import FALSE_ID, TRUE_ID, Formula, formula_of
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.progression.budget import Budget
from repro.progression.progressor import close

#: Version tag carried by :meth:`OnlineMonitor.snapshot` payloads, so a
#: state produced by one revision is rejected (not misread) by another.
#: v2 added ``events_consumed`` (the durable-session replay audit).
SNAPSHOT_VERSION = 2


class OnlineMonitor:
    """Incremental monitor over a live, partially synchronous event feed."""

    def __init__(
        self,
        formula: Formula,
        epsilon: int,
        max_traces_per_segment: int | None = DEFAULT_TRACE_BUDGET,
        backend: str = "dfs",
    ) -> None:
        self._formula = formula
        self._epsilon = epsilon
        self._max_traces = max_traces_per_segment
        self._backend = backend
        self._buffer: list[tuple[str, int, frozenset[str], Mapping[str, float] | None]] = []
        self._carried: dict[Formula, int] = {formula: 1}
        self._anchor: int | None = None
        self._frontier = 0  # everything strictly below is already consumed
        self._first_segment_done = False
        self._base_valuation: dict[str, float] = {}
        self._frontier_props: dict[str, frozenset[str]] = {}
        self._result = MonitorResult(formula)
        self._finished = False
        self._segment_counter = 0
        self._events_consumed = 0

    @property
    def formula(self) -> Formula:
        return self._formula

    # -- one-shot protocol adapter -------------------------------------------------

    def run(
        self, computation: DistributedComputation, budget: Budget | None = None
    ) -> MonitorResult:
        """Monitor a complete computation (the :class:`Monitor` protocol).

        Replays the computation's events through a *fresh* online monitor
        (this instance's buffered state is untouched, so ``run`` is
        repeatable like the offline monitors) and finishes it in one
        segment.  The computation's own epsilon wins over the
        constructor's.  Message edges are not representable in the online
        feed — dropping them would enlarge the admissible-trace set and
        return unsound verdicts, so such computations are rejected.
        """
        if computation.messages:
            raise MonitorError(
                "the online monitor cannot replay message edges; use the "
                "smt/fast/baseline engines for computations with messages"
            )
        replay = OnlineMonitor(
            self._formula,
            computation.epsilon,
            max_traces_per_segment=self._max_traces,
            backend=self._backend,
        )
        events = sorted(
            computation.events, key=lambda e: (e.local_time, e.process, e.seq)
        )
        for event in events:
            replay.observe(
                event.process, event.local_time, event.props, dict(event.deltas) or None
            )
        return replay.finish(budget=budget)

    # -- feeding -----------------------------------------------------------------

    def observe(
        self,
        process: str,
        local_time: int,
        props: object = (),
        deltas: Mapping[str, float] | None = None,
    ) -> None:
        """Buffer one event (local timestamp, propositions, numeric deltas)."""
        if self._finished:
            raise MonitorError("monitor already finished")
        if local_time < self._frontier:
            raise MonitorError(
                f"event at local time {local_time} arrived after the monitor "
                f"advanced past {self._frontier}"
            )
        if isinstance(props, str):
            props = (props,)
        self._buffer.append((process, local_time, frozenset(props), deltas))
        self._events_consumed += 1

    # -- advancing ----------------------------------------------------------------

    def advance_to(self, boundary: int, budget: Budget | None = None) -> frozenset[bool]:
        """Declare all times below ``boundary`` final and progress over them.

        Returns the set of verdicts already decided (may be empty while
        everything is still pending).

        Preemption has *abort* semantics: when ``budget`` trips mid-
        segment, the monitor's state — buffer included — is rolled back
        to exactly what it was before this call and
        :class:`PreemptedError` propagates.  Retrying the same
        ``advance_to`` (here, or on a restored snapshot) produces the
        verdicts the uninterrupted call would have.
        """
        if self._finished:
            raise MonitorError("monitor already finished")
        if boundary <= self._frontier:
            raise MonitorError(
                f"boundary must advance: frontier {self._frontier}, got {boundary}"
            )
        original_buffer = self._buffer
        ready = [e for e in original_buffer if e[1] < boundary]
        self._buffer = [e for e in original_buffer if e[1] >= boundary]
        if ready:
            try:
                self._process_segment(ready, boundary, budget)
            except PreemptedError:
                self._buffer = original_buffer
                raise
        self._frontier = boundary
        return self._result.verdicts

    def _process_segment(
        self,
        ready: list[tuple[str, int, frozenset[str], Mapping[str, float] | None]],
        boundary: int,
        budget: Budget | None = None,
    ) -> None:
        computation = DistributedComputation(self._epsilon)
        ready.sort(key=lambda e: (e[1], e[0]))
        for process, local_time, props, deltas in ready:
            computation.add_event(process, local_time, props, deltas)
        hb = computation.happened_before()
        outcome = enumerate_segment_outcomes(
            hb,
            self._epsilon,
            self._carried,
            self._anchor,
            boundary=boundary,
            clamp_lo=None if not self._first_segment_done else self._frontier,
            clamp_hi=boundary,
            max_traces=self._max_traces,
            backend=self._backend,
            base_valuation=self._base_valuation,
            frontier_props=self._frontier_props,
            budget=budget,
        )
        if outcome.preempted:
            # Raise before any state mutation: the caller rolls the buffer
            # back and the stream stays exactly where it was.
            raise PreemptedError(
                f"segment at boundary {boundary} preempted after "
                f"{outcome.traces_enumerated} traces"
            )
        if outcome.truncated:
            self._result.exhaustive = False
        self._result.segment_reports.append(
            SegmentReport(
                index=self._segment_counter,
                events=len(ready),
                traces_enumerated=outcome.traces_enumerated,
                distinct_residuals=outcome.distinct,
                truncated=outcome.truncated,
            )
        )
        self._segment_counter += 1
        self._first_segment_done = True
        # Classify on the id column (constants have fixed sentinel ids);
        # undecided residuals materialize into the carried dict, which is
        # the snapshot wire format — arena ids never cross processes.
        carried: dict[Formula, int] = {}
        for fid, count in outcome.id_counts().items():
            if fid == TRUE_ID:
                self._result.record(True, count)
            elif fid == FALSE_ID:
                self._result.record(False, count)
            else:
                carried[formula_of(fid)] = count
        self._carried = carried
        self._anchor = boundary
        self._base_valuation, self._frontier_props = segment_carry(
            computation.events, self._base_valuation, self._frontier_props
        )

    # -- migration -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the full monitor state for migration to another host.

        The snapshot captures everything :meth:`restore` needs to resume
        the stream exactly where this instance stands: the frontier and
        segment counters, buffered (not yet consumed) events, carried
        residual formulas with their trace-class counts, the valuation /
        proposition context carried across segment boundaries, and the
        verdicts decided so far.  The returned dict references this
        monitor's live objects — it is meant to cross a process boundary
        (where serialization copies it); a caller restoring *in the same
        process* must stop using the origin instance afterwards.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "formula": self._formula,
            "epsilon": self._epsilon,
            "max_traces": self._max_traces,
            "backend": self._backend,
            "buffer": list(self._buffer),
            "carried": dict(self._carried),
            "anchor": self._anchor,
            "frontier": self._frontier,
            "first_segment_done": self._first_segment_done,
            "base_valuation": dict(self._base_valuation),
            "frontier_props": dict(self._frontier_props),
            "result": self._result,
            "finished": self._finished,
            "segment_counter": self._segment_counter,
            "events_consumed": self._events_consumed,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "OnlineMonitor":
        """Rehydrate a monitor from a :meth:`snapshot` payload.

        The restored instance continues the stream bit-identically: the
        same events observed and boundaries advanced on it produce the
        same verdict multiset the origin instance would have produced.
        """
        try:
            version = snapshot["version"]
        except (TypeError, KeyError):
            raise MonitorError("malformed online-monitor snapshot") from None
        if version != SNAPSHOT_VERSION:
            raise MonitorError(
                f"online-monitor snapshot version {version} is not the "
                f"supported version {SNAPSHOT_VERSION}"
            )
        monitor = cls(
            snapshot["formula"],
            snapshot["epsilon"],
            max_traces_per_segment=snapshot["max_traces"],
            backend=snapshot["backend"],
        )
        monitor._buffer = list(snapshot["buffer"])
        monitor._carried = dict(snapshot["carried"])
        monitor._anchor = snapshot["anchor"]
        monitor._frontier = snapshot["frontier"]
        monitor._first_segment_done = snapshot["first_segment_done"]
        monitor._base_valuation = dict(snapshot["base_valuation"])
        monitor._frontier_props = dict(snapshot["frontier_props"])
        monitor._result = snapshot["result"]
        monitor._finished = snapshot["finished"]
        monitor._segment_counter = snapshot["segment_counter"]
        monitor._events_consumed = snapshot["events_consumed"]
        return monitor

    # -- finishing -----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of buffered, not yet consumed events."""
        return len(self._buffer)

    @property
    def undecided_residuals(self) -> int:
        """Distinct residual formulas still carried."""
        return len(self._carried)

    @property
    def events_consumed(self) -> int:
        """Total events accepted over the monitor's lifetime (survives
        snapshot/restore — the durable-session replay audit signal)."""
        return self._events_consumed

    @property
    def frontier(self) -> int:
        """Everything strictly below this time is already final."""
        return self._frontier

    @property
    def current_verdicts(self) -> frozenset[bool]:
        """Verdicts decided so far (grows as segments close; final after
        :meth:`finish`)."""
        return self._result.verdicts

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has sealed the stream."""
        return self._finished

    def finish(self, budget: Budget | None = None) -> MonitorResult:
        """Consume any remaining events, close residuals, return verdicts.

        Preemption mid-finish (``budget`` tripping during the final
        segment) leaves the stream open and unchanged, like
        :meth:`advance_to`.
        """
        if self._finished:
            return self._result
        if self._buffer:
            last_time = max(e[1] for e in self._buffer)
            epsilon_pad = self._epsilon  # allow skew-shifted timestamps
            self.advance_to(last_time + epsilon_pad, budget=budget)
        for residual, count in self._carried.items():
            self._result.record(close(residual), count)
        self._carried = {}
        self._finished = True
        return self._result
