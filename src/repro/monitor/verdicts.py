"""Verdict bookkeeping for distributed monitoring.

Because a partially synchronous computation corresponds to *many* possible
traces, the monitoring problem's answer is a **set of verdicts**
(Section III): ``{True}``, ``{False}``, or ``{True, False}`` when
different admissible orderings/timings disagree.  We additionally track
how many trace classes produced each verdict, which the blockchain
experiments use to gauge how fragile a protocol parameterisation is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mtl.ast import Formula


@dataclass
class SegmentReport:
    """Diagnostics for one monitored segment."""

    index: int
    events: int
    traces_enumerated: int
    distinct_residuals: int
    truncated: bool
    saturated: bool = False
    #: True when enumeration of this segment was preempted (budget cancel
    #: or deadline) before completing — distinct from ``truncated``, which
    #: is the graceful trace-budget stop.
    preempted: bool = False


@dataclass
class MonitorResult:
    """Outcome of monitoring one computation against one formula."""

    formula: Formula
    verdict_counts: dict[bool, int] = field(default_factory=dict)
    segment_reports: list[SegmentReport] = field(default_factory=list)
    #: True when every admissible trace class was enumerated (counts exact).
    exhaustive: bool = True
    #: True when the verdict *set* is provably complete even if counts are
    #: not (e.g. enumeration stopped after both verdicts were witnessed).
    verdict_set_complete: bool = True

    # -- verdict-set view -------------------------------------------------------

    @property
    def verdicts(self) -> frozenset[bool]:
        """The paper's verdict set ``[(E, ⇝) |=_F phi]``."""
        return frozenset(v for v, c in self.verdict_counts.items() if c > 0)

    @property
    def is_deterministic(self) -> bool:
        """True when every admissible trace agrees on the verdict."""
        return len(self.verdicts) == 1

    @property
    def truncated(self) -> bool:
        """True when any segment's enumeration hit a budget.

        Verdict counts (and possibly the verdict set) are partial; the
        monitor finished instead of hanging on a combinatorial blowup.
        """
        return any(report.truncated for report in self.segment_reports)

    @property
    def preempted(self) -> bool:
        """True when any segment's enumeration was preempted mid-flight."""
        return any(report.preempted for report in self.segment_reports)

    @property
    def may_be_satisfied(self) -> bool:
        return True in self.verdicts

    @property
    def may_be_violated(self) -> bool:
        return False in self.verdicts

    @property
    def definitely_satisfied(self) -> bool:
        return self.verdicts == frozenset({True})

    @property
    def definitely_violated(self) -> bool:
        return self.verdicts == frozenset({False})

    def count(self, verdict: bool) -> int:
        return self.verdict_counts.get(verdict, 0)

    def record(self, verdict: bool, count: int = 1) -> None:
        self.verdict_counts[verdict] = self.verdict_counts.get(verdict, 0) + count

    def merge(self, other: "MonitorResult", weight: int = 1) -> "MonitorResult":
        """Fold another result into this one (in place, returns self).

        Verdict counts add (scaled by ``weight`` trace classes), segment
        reports concatenate, and the exactness flags combine
        conservatively.  Used by the parallel orchestrator to combine the
        results of independently monitored shards of one computation (or
        of disjoint computations sharing a formula).
        """
        for verdict, count in other.verdict_counts.items():
            self.record(verdict, count * weight)
        self.segment_reports.extend(other.segment_reports)
        self.exhaustive = self.exhaustive and other.exhaustive
        self.verdict_set_complete = (
            self.verdict_set_complete and other.verdict_set_complete
        )
        return self

    def __str__(self) -> str:
        parts = []
        if self.may_be_satisfied:
            parts.append(f"T×{self.count(True)}")
        if self.may_be_violated:
            parts.append(f"F×{self.count(False)}")
        tag = "" if self.exhaustive else " (truncated)"
        return "{" + ", ".join(parts) + "}" + tag
