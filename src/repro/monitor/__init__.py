"""Monitors: solver-backed segmented monitor, baseline, online wrapper."""

from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.fast import FastMonitor
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor, monitor
from repro.monitor.verdicts import MonitorResult, SegmentReport

__all__ = [
    "EnumerationMonitor",
    "FastMonitor",
    "MonitorResult",
    "OnlineMonitor",
    "SegmentReport",
    "SmtMonitor",
    "monitor",
]
