"""Monitors: solver-backed segmented monitor, baseline, online wrapper.

All engines satisfy the :class:`~repro.monitor.protocol.Monitor`
protocol; build them through :func:`~repro.monitor.factory.make_monitor`
unless you need engine-specific API.
"""

from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.calibration import run_calibration
from repro.monitor.factory import (
    apply_calibration,
    available_monitors,
    calibration,
    formula_size,
    load_calibration,
    make_monitor,
    register_monitor,
    reset_calibration,
    select_kind,
)
from repro.monitor.fast import FastMonitor
from repro.monitor.online import OnlineMonitor
from repro.monitor.protocol import Monitor
from repro.monitor.smt_monitor import PipelineState, SmtMonitor, monitor
from repro.monitor.verdicts import MonitorResult, SegmentReport

__all__ = [
    "EnumerationMonitor",
    "FastMonitor",
    "Monitor",
    "MonitorResult",
    "OnlineMonitor",
    "PipelineState",
    "SegmentReport",
    "SmtMonitor",
    "apply_calibration",
    "available_monitors",
    "calibration",
    "formula_size",
    "load_calibration",
    "make_monitor",
    "monitor",
    "register_monitor",
    "reset_calibration",
    "run_calibration",
    "select_kind",
]
