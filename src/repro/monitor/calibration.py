"""Measured factory calibration: find the smt/fast crossover on this host.

The ``kind="auto"`` heuristics in :mod:`repro.monitor.factory` ship with
static thresholds (fast monitor below 120 events / epsilon 25).  The
real crossover depends on the host: the fast monitor's memoized cut
recursion explodes with events × skew window (on small containers it
can hang where the static thresholds still say "fast"), while the
segmented smt monitor's enumeration cost is budget-bounded.

:func:`run_calibration` times both engines along an event-count ladder
(and an epsilon ladder at fixed events), guards every point with a
wall-clock budget (an arm that blows the budget is recorded as a loss
instead of hanging the sweep — each probe runs in a subprocess so it can
be killed), finds where the segmented monitor starts winning, and
returns a JSON-serializable report whose ``"thresholds"`` object
:func:`~repro.monitor.factory.apply_calibration` /
:func:`~repro.monitor.factory.load_calibration` accept.

Entry points:

* ``scripts/calibrate_factory.py`` — the CLI (writes the report to a
  file for ``REPRO_FACTORY_CALIBRATION``);
* ``MonitorService(auto_calibrate=True)`` — runs the quick ladders at
  service startup, before local workers fork, so the whole pool inherits
  the measured thresholds.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable

from repro.bench.workload import (
    WorkloadSpec,
    formula_for,
    generate_workload,
    model_for_formula,
)
from repro.monitor.factory import _DEFAULT_THRESHOLDS, make_monitor

#: The workload the ladders sweep (Fig 5d's pairing, scaled by the ladder).
FORMULA_NAME = "phi4"
PROCESSES = 2
EVENT_RATE = 10.0
WINDOW_MS = 600

#: Enumeration budget for the smt arm — the same budget the benchmark
#: suite uses, so the calibrated thresholds match production settings.
TRACE_BUDGET = 400
VERDICT_CAP = 4

#: The full and quick ladder grids (quick: coarse but fast sanity pass).
EVENT_LADDER = [6, 10, 14, 20, 30, 40, 60, 90, 120]
EPSILON_LADDER = [3, 5, 7, 11, 15, 21, 25]
QUICK_EVENT_LADDER = [6, 12, 20]
QUICK_EPSILON_LADDER = [3, 7, 15]


def _workload(events: int, epsilon: int):
    return generate_workload(
        WorkloadSpec(
            model=model_for_formula(FORMULA_NAME),
            processes=PROCESSES,
            length_seconds=events / EVENT_RATE,
            events_per_second=EVENT_RATE,
            epsilon_ms=epsilon,
        )
    )


def _probe_target(kind: str, events: int, epsilon: int, repeats: int, out) -> None:
    """Child-process body: build the workload+engine, time it, report back."""
    computation = _workload(events, epsilon)
    formula = formula_for(FORMULA_NAME, PROCESSES, WINDOW_MS)
    best = float("inf")
    for _ in range(repeats):
        if kind == "fast":
            engine = make_monitor(formula, "fast")
        else:
            engine = make_monitor(
                formula,
                "smt",
                event_count=len(computation),
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
        started = time.perf_counter()
        engine.run(computation)
        best = min(best, time.perf_counter() - started)
    out.put((len(computation), best))


def probe(kind: str, events: int, epsilon: int, repeats: int, budget: float):
    """Time one (engine, point) in a subprocess; None when over budget.

    The budget guard is the whole point: the fast monitor's recursion can
    exceed any reasonable wall-clock right where the calibration matters,
    and a hung probe would otherwise hang the sweep.
    """
    ctx = multiprocessing.get_context()
    out = ctx.Queue()
    process = ctx.Process(
        target=_probe_target, args=(kind, events, epsilon, repeats, out), daemon=True
    )
    process.start()
    process.join(budget)
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        return None, None
    try:
        actual_events, seconds = out.get(timeout=1.0)
    except Exception:  # noqa: BLE001 - crashed probe == loss
        return None, None
    return actual_events, seconds


def sweep(
    axis: str,
    ladder: list[int],
    fixed: int,
    repeats: int,
    budget: float,
    log: Callable[[str], None] | None = None,
) -> list[dict]:
    """Time both arms along one ladder; stop the fast arm after it dies."""
    emit = log or (lambda message: None)
    points = []
    fast_dead = False
    for value in ladder:
        events, epsilon = (value, fixed) if axis == "events" else (fixed, value)
        actual, smt_seconds = probe("smt", events, epsilon, repeats, budget)
        if actual is None:
            emit(f"  {axis}={value}: smt over budget, skipping point")
            continue
        fast_seconds = None
        if not fast_dead:
            _, fast_seconds = probe("fast", events, epsilon, repeats, budget)
            fast_dead = fast_seconds is None
        # "events" holds the *measured* count (generate_workload may emit
        # more events than the requested ladder step, and select_kind
        # compares thresholds against real len(computation)); the
        # requested step rides along separately so nothing clobbers it.
        point = {
            "events": actual,
            "epsilon": epsilon,
            "requested": value,
            "fast_seconds": None if fast_seconds is None else round(fast_seconds, 6),
            "smt_seconds": round(smt_seconds, 6),
        }
        points.append(point)
        fast_text = "over budget" if fast_seconds is None else f"{fast_seconds:.4f}s"
        winner = "smt" if fast_seconds is None or fast_seconds > smt_seconds else "fast"
        emit(
            f"  {axis}={value:>4}  fast {fast_text}  smt {smt_seconds:.4f}s  {winner} wins"
        )
    return points


def crossover(points: list[dict], axis: str) -> int:
    """Largest axis value where the fast monitor still wins (with margin).

    The ladder is increasing; once the smt arm beats the fast arm (10%
    noise margin) the recursion has left its sweet spot.  When fast never
    wins, the limit collapses to just below the smallest measured point.
    """
    last_fast_win = None
    for point in points:
        fast = point["fast_seconds"]
        if fast is not None and fast <= point["smt_seconds"] * 1.1:
            last_fast_win = point[axis]
        else:
            break
    if last_fast_win is None:
        return max(1, points[0][axis] - 1) if points else 1
    return last_fast_win


def run_calibration(
    quick: bool = False,
    repeats: int = 2,
    budget: float = 5.0,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run both ladders and build the calibration report.

    ``budget`` bounds each probe's wall-clock (seconds); ``quick`` uses
    the coarse ladders.  The returned report carries the measured points
    and a ``"thresholds"`` dict ready for
    :func:`~repro.monitor.factory.apply_calibration`.
    """
    emit = log or (lambda message: None)
    event_ladder = QUICK_EVENT_LADDER if quick else EVENT_LADDER
    epsilon_ladder = QUICK_EPSILON_LADDER if quick else EPSILON_LADDER
    # Small fixed epsilon for the event ladder (and small fixed events for
    # the epsilon ladder) so each ladder isolates one axis of the AND'ed
    # auto-selection condition.
    emit("event ladder (epsilon=5):")
    event_points = sweep("events", event_ladder, 5, repeats, budget, log)
    emit("epsilon ladder (~12 events):")
    epsilon_points = sweep("epsilon", epsilon_ladder, 12, repeats, budget, log)
    thresholds = {
        "fast_event_limit": crossover(event_points, "events"),
        "fast_epsilon_limit": crossover(epsilon_points, "epsilon"),
    }
    return {
        "formula": FORMULA_NAME,
        "trace_budget": TRACE_BUDGET,
        "verdict_cap": VERDICT_CAP,
        "probe_budget_seconds": budget,
        "defaults": dict(_DEFAULT_THRESHOLDS),
        "event_ladder": event_points,
        "epsilon_ladder": epsilon_points,
        "thresholds": thresholds,
    }
