"""The unified ``Monitor`` protocol.

Every monitoring engine in this package — the paper's segmented
solver-backed monitor, the memoized fast monitor, the explicit
enumeration baseline, and the online wrapper — answers the same
question: *given a partially synchronous computation, what is the
verdict multiset of the specification?*  Callers (benchmarks, the
experiment script, the parallel orchestrator) should depend on this
protocol plus :func:`~repro.monitor.factory.make_monitor` instead of
hard-coding a concrete engine.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.distributed.computation import DistributedComputation
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula


@runtime_checkable
class Monitor(Protocol):
    """A monitoring engine for one MTL specification.

    Implementations must be repeatable: ``run`` may be called any number
    of times, on any number of computations, without cross-talk.
    """

    @property
    def formula(self) -> Formula:
        """The monitored specification."""
        ...

    def run(self, computation: DistributedComputation) -> MonitorResult:
        """Monitor a complete computation and return its verdict multiset."""
        ...
