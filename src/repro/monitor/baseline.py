"""Explicit-enumeration baseline monitor.

The comparator the paper argues against (Section I): enumerate *every*
admissible trace of the computation — every linear extension of ⇝ with
every admissible timestamp reassignment — and evaluate the finite-MTL
semantics on each.  Exponential, but trivially correct; the SMT-style
monitor is validated against it on small computations, and the ablation
benchmarks quantify the gap.
"""

from __future__ import annotations

from repro.distributed.computation import DistributedComputation
from repro.encoding.enumerator import enumerate_traces
from repro.errors import MonitorError
from repro.mtl.ast import Formula
from repro.mtl.semantics import satisfies
from repro.monitor.verdicts import MonitorResult
from repro.progression.progressor import close


class EnumerationMonitor:
    """Evaluate the formula on every admissible trace, no segmentation."""

    def __init__(
        self,
        formula: Formula,
        max_traces: int | None = None,
        timestamp_samples: int | None = None,
    ) -> None:
        self._formula = formula
        self._max_traces = max_traces
        self._timestamp_samples = timestamp_samples

    @property
    def formula(self) -> Formula:
        return self._formula

    def run(self, computation: DistributedComputation, budget=None) -> MonitorResult:
        result = MonitorResult(self._formula)
        if len(computation) == 0:
            result.record(close(self._formula))
            return result
        hb = computation.happened_before()
        enumerated = 0
        for trace in enumerate_traces(
            hb,
            computation.epsilon,
            limit=self._max_traces,
            timestamp_samples=self._timestamp_samples,
            budget=budget,
        ):
            enumerated += 1
            result.record(satisfies(trace, self._formula))
        if enumerated == 0:
            raise MonitorError("no admissible trace — inconsistent computation")
        if self._max_traces is not None and enumerated >= self._max_traces:
            result.exhaustive = False
        return result
