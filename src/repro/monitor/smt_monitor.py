"""The segmented, solver-backed central monitor (the paper's algorithm).

Pipeline per Section V: chop the computation into ``g`` segments; for each
segment enumerate the admissible traces (solver models of the cut
encoding), progress every carried residual formula over every trace, and
deduplicate the outcomes; after the last segment, close residuals to
final verdicts.

Exactness: with ``g = 1`` the monitor computes exactly the paper's verdict
set (validated against the explicit-enumeration baseline in tests).  With
``g > 1`` timestamps are clamped to segment windows so per-segment traces
concatenate monotonically — the trade-off Section V-C motivates
(documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Mapping

from repro.distributed.computation import DistributedComputation
from repro.distributed.segmentation import segment_computation
from repro.encoding.trace_extractor import segment_carry
from repro.encoding.verdict_enumerator import enumerate_segment_outcomes
from repro.errors import MonitorError
from repro.mtl.ast import FalseConst, Formula, TrueConst
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.progression.progressor import close


class SmtMonitor:
    """Central monitor for MTL over partially synchronous computations.

    Parameters
    ----------
    formula:
        The MTL specification.
    segments:
        The paper's ``g`` — how many windows to chop the computation into.
    max_traces_per_segment / max_distinct_per_segment:
        Enumeration budgets; when either triggers, the result is flagged
        non-exhaustive.  ``max_distinct_per_segment`` reproduces the
        paper's "number of truth values per segment" knob (Fig 5e).
    backend:
        ``"dfs"`` (default fast path) or ``"csp"`` (the paper-literal cut
        encoding solved by the constraint engine).
    saturate:
        When True (default), the last segment's enumeration stops as soon
        as both verdicts have been witnessed — the verdict *set* is then
        provably complete ({True, False} is maximal) but the per-verdict
        trace counts are partial.  Set False for count-exact runs (used
        by the baseline-equivalence tests).
    """

    def __init__(
        self,
        formula: Formula,
        segments: int = 1,
        max_traces_per_segment: int | None = None,
        max_distinct_per_segment: int | None = None,
        backend: str = "dfs",
        saturate: bool = True,
        timestamp_samples: int | None = None,
    ) -> None:
        if segments < 1:
            raise MonitorError(f"segments must be >= 1, got {segments}")
        self._formula = formula
        self._segments = segments
        self._max_traces = max_traces_per_segment
        self._max_distinct = max_distinct_per_segment
        self._backend = backend
        self._saturate = saturate
        self._timestamp_samples = timestamp_samples

    @property
    def formula(self) -> Formula:
        return self._formula

    def run(self, computation: DistributedComputation) -> MonitorResult:
        """Monitor a complete computation and return its verdict set."""
        result = MonitorResult(self._formula)
        if len(computation) == 0:
            # No observations at all: close the specification directly
            # (strong F/U obligations are violated, weak G satisfied).
            result.record(close(self._formula))
            return result

        hb = computation.happened_before()
        all_segments = [
            s for s in segment_computation(computation, self._segments) if not s.is_empty()
        ]
        carried: dict[Formula, int] = {self._formula: 1}
        anchor: int | None = None
        base_valuation: dict[str, float] = {}
        frontier: dict[str, frozenset[str]] = {}

        for order, segment in enumerate(all_segments):
            is_first = order == 0
            is_last = order == len(all_segments) - 1
            indices = [hb.index_of(e) for e in segment.events]
            view = hb.restricted_to(indices)
            outcome = enumerate_segment_outcomes(
                view,
                computation.epsilon,
                carried,
                anchor,
                boundary=segment.hi,
                clamp_lo=None if is_first else segment.lo,
                clamp_hi=None if is_last else segment.hi,
                max_traces=self._max_traces,
                max_distinct=self._max_distinct,
                backend=self._backend,
                base_valuation=base_valuation,
                frontier_props=frontier,
                saturate_final=self._saturate and is_last,
                timestamp_samples=self._timestamp_samples,
            )
            if outcome.truncated:
                result.exhaustive = False
                result.verdict_set_complete = False
            if self._timestamp_samples is not None:
                result.exhaustive = False
                result.verdict_set_complete = False
            if outcome.saturated:
                result.exhaustive = False  # counts partial, set complete
            result.segment_reports.append(
                SegmentReport(
                    index=segment.index,
                    events=len(segment.events),
                    traces_enumerated=outcome.traces_enumerated,
                    distinct_residuals=len(outcome.residuals),
                    truncated=outcome.truncated,
                    saturated=outcome.saturated,
                )
            )

            carried = {}
            for residual, count in outcome.residuals.items():
                if isinstance(residual, TrueConst):
                    result.record(True, count)
                elif isinstance(residual, FalseConst):
                    result.record(False, count)
                else:
                    carried[residual] = carried.get(residual, 0) + count
            anchor = segment.hi
            base_valuation, frontier = segment_carry(
                segment.events, base_valuation, frontier
            )
            if not carried:
                break

        for residual, count in carried.items():
            result.record(close(residual), count)
        return result


def monitor(
    formula: Formula,
    computation: DistributedComputation,
    segments: int = 1,
    **kwargs,
) -> MonitorResult:
    """One-shot convenience wrapper around :class:`SmtMonitor`."""
    return SmtMonitor(formula, segments=segments, **kwargs).run(computation)
