"""The segmented, solver-backed central monitor (the paper's algorithm).

Pipeline per Section V: chop the computation into ``g`` segments; for each
segment enumerate the admissible traces (solver models of the cut
encoding), progress every carried residual formula over every trace, and
deduplicate the outcomes; after the last segment, close residuals to
final verdicts.

Exactness: with ``g = 1`` the monitor computes exactly the paper's verdict
set (validated against the explicit-enumeration baseline in tests).  With
``g > 1`` timestamps are clamped to segment windows so per-segment traces
concatenate monotonically — the trade-off Section V-C motivates
(documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.distributed.computation import DistributedComputation
from repro.distributed.hb import HappenedBefore
from repro.distributed.segmentation import Segment, segment_computation
from repro.encoding.trace_extractor import segment_carry
from repro.encoding.verdict_enumerator import (
    DEFAULT_TRACE_BUDGET,
    enumerate_segment_outcomes,
    partitioned_segment_outcomes,
)
from repro.errors import MonitorError, PreemptedError
from repro.mtl.ast import FALSE_ID, TRUE_ID, Formula, formula_of
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.progression.budget import Budget
from repro.progression.progressor import close


@dataclass
class PipelineState:
    """Everything the segment pipeline carries from one segment to the next.

    The per-segment loop is a fold over this state: carried residual
    formulas (with trace-class counts), the time anchor the residuals are
    anchored at, and the accumulated valuation/frontier context of the
    already-consumed prefix.  Exposing it lets the parallel orchestrator
    pause the pipeline at a segment boundary, shard the carried residuals
    across workers, and resume each shard independently.
    """

    carried: dict[Formula, int]
    anchor: int | None = None
    base_valuation: dict[str, float] = field(default_factory=dict)
    frontier: dict[str, frozenset[str]] = field(default_factory=dict)


class SmtMonitor:
    """Central monitor for MTL over partially synchronous computations.

    Parameters
    ----------
    formula:
        The MTL specification.
    segments:
        The paper's ``g`` — how many windows to chop the computation into.
    max_traces_per_segment / max_distinct_per_segment:
        Enumeration budgets; when either triggers, the result is flagged
        non-exhaustive.  ``max_traces_per_segment`` defaults to
        :data:`~repro.encoding.verdict_enumerator.DEFAULT_TRACE_BUDGET`
        (admissible-trace counts explode combinatorially, so an
        unbounded default can hang forever); pass ``None`` explicitly
        for unbounded enumeration.  ``max_distinct_per_segment``
        reproduces the paper's "number of truth values per segment"
        knob (Fig 5e).
    backend:
        ``"dfs"`` (default fast path) or ``"csp"`` (the paper-literal cut
        encoding solved by the constraint engine).
    saturate:
        When True (default), the last segment's enumeration stops as soon
        as both verdicts have been witnessed — the verdict *set* is then
        provably complete ({True, False} is maximal) but the per-verdict
        trace counts are partial.  Set False for count-exact runs (used
        by the baseline-equivalence tests).
    cache_traces:
        Share segment-trace enumeration through the process-local
        :mod:`~repro.encoding.trace_cache`.  Enabled by segment-parallel
        shard workers (shards of one computation enumerate identical
        segment traces); semantics are unchanged, only repeated
        enumeration work is skipped.
    """

    def __init__(
        self,
        formula: Formula,
        segments: int = 1,
        max_traces_per_segment: int | None = DEFAULT_TRACE_BUDGET,
        max_distinct_per_segment: int | None = None,
        backend: str = "dfs",
        saturate: bool = True,
        timestamp_samples: int | None = None,
        cache_traces: bool = False,
    ) -> None:
        if segments < 1:
            raise MonitorError(f"segments must be >= 1, got {segments}")
        self._formula = formula
        self._segments = segments
        self._max_traces = max_traces_per_segment
        self._max_distinct = max_distinct_per_segment
        self._backend = backend
        self._saturate = saturate
        self._timestamp_samples = timestamp_samples
        self._cache_traces = cache_traces
        # Client-side intra-segment fan-out, set by attach_partitioner().
        # Never pickled: shard tasks rebuild SmtMonitor from kwargs.
        self._partition_submit = None
        self._partition_parts = 0

    @property
    def formula(self) -> Formula:
        return self._formula

    def attach_partitioner(self, submit, parts: int) -> None:
        """Fan each segment's root-frontier enumeration across a pool.

        ``submit`` takes a :class:`~repro.service.tasks.SegmentPartTask`
        and returns a future (``MonitorService.submit_segment_part``);
        ``parts`` caps the sub-tasks per segment.  Segments that need
        serial semantics (the saturating last segment, ``max_distinct``
        early-stop, non-DFS backends) fall back to the serial walk —
        verdict multisets stay bit-identical either way.
        """
        if parts < 2:
            raise MonitorError(f"parts must be >= 2, got {parts}")
        self._partition_submit = submit
        self._partition_parts = parts

    def detach_partitioner(self) -> None:
        """Return every segment to the serial enumeration path."""
        self._partition_submit = None
        self._partition_parts = 0

    def run(
        self, computation: DistributedComputation, budget: Budget | None = None
    ) -> MonitorResult:
        """Monitor a complete computation and return its verdict set."""
        if len(computation) == 0:
            # No observations at all: close the specification directly
            # (strong F/U obligations are violated, weak G satisfied).
            result = MonitorResult(self._formula)
            result.record(close(self._formula))
            return result
        return self.run_from(computation, self.initial_state(), start=0, budget=budget)

    # -- resumable pipeline ------------------------------------------------------

    def initial_state(self) -> PipelineState:
        """The pipeline state before any segment has been consumed."""
        return PipelineState(carried={self._formula: 1})

    def segments_of(self, computation: DistributedComputation) -> list[Segment]:
        """The non-empty segments the pipeline will process, in order."""
        return [
            s for s in segment_computation(computation, self._segments) if not s.is_empty()
        ]

    def step(
        self,
        hb: HappenedBefore,
        segments: list[Segment],
        order: int,
        state: PipelineState,
        result: MonitorResult,
        epsilon: int,
        budget: Budget | None = None,
    ) -> PipelineState:
        """Consume ``segments[order]``: enumerate its traces, progress every
        carried residual, record decided verdicts into ``result``, and
        return the state carried into the next segment.

        Preemption (``budget`` tripping) appends a ``preempted`` segment
        report and raises :class:`PreemptedError` *without* returning a
        new state — the fold aborts, nothing is committed."""
        segment = segments[order]
        is_first = order == 0
        is_last = order == len(segments) - 1
        index_map = hb.index_map()
        indices = [index_map[e.key] for e in segment.events]
        view = hb.restricted_to(indices)
        clamp_lo = None if is_first else segment.lo
        clamp_hi = None if is_last else segment.hi
        saturate_final = self._saturate and is_last
        # The saturation and max_distinct early-stops depend on the serial
        # enumeration order, so those segments keep the serial walk.
        partitioned = (
            self._partition_submit is not None
            and self._backend == "dfs"
            and not saturate_final
            and self._max_distinct is None
        )
        if partitioned:
            outcome = partitioned_segment_outcomes(
                self._partition_submit,
                self._partition_parts,
                view,
                epsilon,
                state.carried,
                state.anchor,
                boundary=segment.hi,
                clamp_lo=clamp_lo,
                clamp_hi=clamp_hi,
                max_traces=self._max_traces,
                backend=self._backend,
                base_valuation=state.base_valuation,
                frontier_props=state.frontier,
                timestamp_samples=self._timestamp_samples,
                budget=budget,
            )
        else:
            cache_key = None
            if self._cache_traces:
                cache_key = self._segment_cache_key(
                    view, segment, state, epsilon, clamp_lo, clamp_hi
                )
            outcome = enumerate_segment_outcomes(
                view,
                epsilon,
                state.carried,
                state.anchor,
                boundary=segment.hi,
                clamp_lo=clamp_lo,
                clamp_hi=clamp_hi,
                max_traces=self._max_traces,
                max_distinct=self._max_distinct,
                backend=self._backend,
                base_valuation=state.base_valuation,
                frontier_props=state.frontier,
                saturate_final=saturate_final,
                timestamp_samples=self._timestamp_samples,
                cache_key=cache_key,
                budget=budget,
            )
        if outcome.preempted:
            result.exhaustive = False
            result.verdict_set_complete = False
            result.segment_reports.append(
                SegmentReport(
                    index=segment.index,
                    events=len(segment.events),
                    traces_enumerated=outcome.traces_enumerated,
                    distinct_residuals=outcome.distinct,
                    truncated=outcome.truncated,
                    preempted=True,
                )
            )
            raise PreemptedError(
                f"segment {segment.index} preempted after "
                f"{outcome.traces_enumerated} traces"
            )
        if outcome.truncated:
            result.exhaustive = False
            result.verdict_set_complete = False
        if self._timestamp_samples is not None:
            result.exhaustive = False
            result.verdict_set_complete = False
        if outcome.saturated:
            result.exhaustive = False  # counts partial, set complete
        result.segment_reports.append(
            SegmentReport(
                index=segment.index,
                events=len(segment.events),
                traces_enumerated=outcome.traces_enumerated,
                distinct_residuals=outcome.distinct,
                truncated=outcome.truncated,
                saturated=outcome.saturated,
            )
        )

        # Classify on the outcome's id column: the constants' arena ids
        # are fixed sentinels, and ids are canonical per structure, so
        # undecided residuals materialize straight into the carried dict
        # (no merging needed) for the pickled/sharded boundary contract.
        carried: dict[Formula, int] = {}
        for fid, count in outcome.id_counts().items():
            if fid == TRUE_ID:
                result.record(True, count)
            elif fid == FALSE_ID:
                result.record(False, count)
            else:
                carried[formula_of(fid)] = count
        base_valuation, frontier = segment_carry(
            segment.events, state.base_valuation, state.frontier
        )
        return PipelineState(
            carried=carried,
            anchor=segment.hi,
            base_valuation=base_valuation,
            frontier=frontier,
        )

    def _segment_cache_key(
        self,
        view,
        segment: Segment,
        state: PipelineState,
        epsilon: int,
        clamp_lo: int | None,
        clamp_hi: int | None,
    ):
        """Everything that shapes the segment's trace enumeration.

        Value-based (not identity-based) so shards that unpickled their
        own copy of the computation still share entries.  The view's
        predecessor masks capture the happened-before topology exactly as
        enumeration consumes it (process, epsilon, *and message* edges) —
        two segments with identical event fields but different message
        edges must not share traces.  The carried *residuals* are
        deliberately absent: they differ per shard and do not affect
        which traces the segment admits.
        """
        events_key = tuple(
            (e.process, e.seq, e.local_time, e.props, tuple(sorted(e.deltas.items())))
            for e in segment.events
        )
        topology_key = tuple(
            view.predecessors_mask(i) for i in range(len(segment.events))
        )
        return (
            events_key,
            topology_key,
            epsilon,
            clamp_lo,
            clamp_hi,
            self._backend,
            self._timestamp_samples,
            self._max_traces,
            tuple(sorted(state.base_valuation.items())),
            tuple(sorted(state.frontier.items())),
        )

    def run_from(
        self,
        computation: DistributedComputation,
        state: PipelineState,
        start: int = 0,
        budget: Budget | None = None,
    ) -> MonitorResult:
        """Run segments ``start..`` from a given carried state and close the
        leftover residuals.  ``run()`` is ``run_from(c, initial_state(), 0)``;
        parallel shard workers call it with ``start > 0`` and a slice of the
        carried residual formulas."""
        result = MonitorResult(self._formula)
        hb = computation.happened_before()
        segments = self.segments_of(computation)
        for order in range(start, len(segments)):
            if not state.carried:
                break
            state = self.step(
                hb, segments, order, state, result, computation.epsilon, budget=budget
            )
        for residual, count in state.carried.items():
            result.record(close(residual), count)
        return result


def monitor(
    formula: Formula,
    computation: DistributedComputation,
    segments: int = 1,
    **kwargs,
) -> MonitorResult:
    """One-shot convenience wrapper around :class:`SmtMonitor`."""
    return SmtMonitor(formula, segments=segments, **kwargs).run(computation)
