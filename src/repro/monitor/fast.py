"""A memoized, progression-threaded monitor (performance extension).

The segmented monitor enumerates whole segment traces and progresses the
specification over each.  That enumeration revisits the same suffix
problem astronomically often: two traces that reach the same consistent
cut at the same reassigned time with the same residual formula have
*identical* futures.  This monitor exploits that:

* it walks the computation one event at a time (each event is its own
  one-observation segment, progressed with Algorithms 1-3 and re-anchored
  with :func:`~repro.progression.progressor.anchor_shift`);
* recursion is memoized on ``(cut bitmask, last timestamp, residual)``;
* once the residual collapses to a constant, the whole subtree's verdict
  count is the number of completions of the cut — computed by a second,
  formula-independent memoized count.

The result is *exact* (same verdict multiset as the brute-force baseline
and as ``SmtMonitor(segments=1, saturate=False)``, property-tested) while
handling computations whose trace count is far beyond enumeration — e.g.
the blockchain logs, whose timestamp windows alone induce ``(2eps-1)^n``
traces.

This is an extension beyond the paper (the paper bounds its solver
queries instead); DESIGN.md lists it in the optional-features inventory.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Sequence

from repro.distributed.computation import DistributedComputation
from repro.distributed.event import Event
from repro.encoding.cut_encoder import timestamp_domain
from repro.errors import MonitorError
from repro.monitor.verdicts import MonitorResult, SegmentReport
from repro.mtl.ast import FalseConst, Formula, PredicateAtom, TrueConst
from repro.mtl.trace import State, TimedTrace
from repro.progression.progressor import anchor_shift, close, progress


class FastMonitor:
    """Exact verdict-multiset monitoring via cut-level memoization.

    Parameters mirror :class:`~repro.monitor.smt_monitor.SmtMonitor` where
    meaningful; there is no segmentation knob (the algorithm is already
    per-event incremental) and no enumeration budget (sharing makes the
    exact computation feasible).  ``timestamp_samples`` is still available
    for gigantic skew windows.
    """

    def __init__(self, formula: Formula, timestamp_samples: int | None = None) -> None:
        self._formula = formula
        self._timestamp_samples = timestamp_samples

    @property
    def formula(self) -> Formula:
        return self._formula

    def run(self, computation: DistributedComputation, budget=None) -> MonitorResult:
        result = MonitorResult(self._formula)
        if self._timestamp_samples is not None:
            result.exhaustive = False
            result.verdict_set_complete = False
        if len(computation) == 0:
            result.record(close(self._formula))
            return result
        walker = _CutWalker(computation, self._formula, self._timestamp_samples, budget)
        outcomes = walker.outcomes()
        for verdict, count in outcomes.items():
            result.record(verdict, count)
        result.segment_reports.append(
            SegmentReport(
                index=0,
                events=len(computation),
                traces_enumerated=walker.total_traces,
                distinct_residuals=walker.distinct_residuals,
                truncated=False,
            )
        )
        return result


class _CutWalker:
    """The memoized recursion over consistent cuts."""

    def __init__(
        self,
        computation: DistributedComputation,
        formula: Formula,
        timestamp_samples: int | None,
        budget=None,
    ) -> None:
        self._budget = budget
        self._hb = computation.happened_before()
        self._events: Sequence[Event] = self._hb.events
        self._n = len(self._events)
        if self._n > 300:
            raise MonitorError(
                f"computation has {self._n} events; FastMonitor's bitmask "
                "recursion is tuned for a few hundred at most — segment "
                "the computation with SmtMonitor instead"
            )
        epsilon = computation.epsilon
        self._domains = [
            timestamp_domain(event, epsilon, samples=timestamp_samples).values
            for event in self._events
        ]
        self._max_time = [d[-1] for d in self._domains]
        self._formula = formula
        self._needs_valuation = any(
            isinstance(node, PredicateAtom) for node in formula.walk()
        )
        # Per-process event indices in sequence order (for frontiers).
        self._per_process: dict[str, list[int]] = {}
        for index, event in enumerate(self._events):
            self._per_process.setdefault(event.process, []).append(index)
        for indices in self._per_process.values():
            indices.sort(key=lambda i: self._events[i].seq)

        self._outcome_memo: dict[tuple[int, int, Formula], dict[bool, int]] = {}
        self._count_memo: dict[tuple[int, int], int] = {}
        self._state_memo: dict[int, tuple[frozenset[str], Mapping[str, float]]] = {}
        #: ``(residual intern id, d) -> shifted residual``: the walker
        #: re-anchors the same few residuals by the same few deltas over
        #: and over across branches of the cut recursion.
        self._shift_memo: dict[tuple[int, int], Formula] = {}
        self.total_traces = 0
        self.distinct_residuals = 0
        self._seen_residuals: set[Formula] = set()

    # -- public ------------------------------------------------------------------

    def outcomes(self) -> dict[bool, int]:
        outcome = self._first_steps()
        self.total_traces = self._completions(0, 0)
        return outcome

    def _first_steps(self) -> dict[bool, int]:
        combined: dict[bool, int] = {}
        for index, timestamp in self._available(0, 0):
            mask_after = 1 << index
            residual = self._progress_step(mask_after, timestamp, None, 0)
            sub = self._walk(mask_after, timestamp, residual)
            for verdict, count in sub.items():
                combined[verdict] = combined.get(verdict, 0) + count
        return combined

    # -- recursion ------------------------------------------------------------------

    def _available(self, mask: int, last_time: int):
        """Events whose predecessors are all in the cut, with admissible
        timestamps that keep the trace monotone."""
        for index in range(self._n):
            bit = 1 << index
            if mask & bit:
                continue
            if self._hb.predecessors_mask(index) & ~mask:
                continue
            for timestamp in self._domains[index]:
                if timestamp >= last_time:
                    yield index, timestamp

    def _dead(self, mask: int, last_time: int) -> bool:
        """True when some unchosen event can no longer take a timestamp
        >= last_time (the branch has no completions)."""
        for index in range(self._n):
            if not mask & (1 << index) and self._max_time[index] < last_time:
                return True
        return False

    def _walk(self, mask: int, last_time: int, residual: Formula) -> dict[bool, int]:
        if self._budget is not None:
            self._budget.step()
        if isinstance(residual, (TrueConst, FalseConst)):
            # The whole subtree is decided; its weight is the number of
            # completions of the cut (0 on a dead branch — drop those so
            # verdict counts match the enumeration baseline exactly).
            completions = self._completions(mask, last_time)
            if completions == 0:
                return {}
            return {isinstance(residual, TrueConst): completions}
        if residual not in self._seen_residuals:
            self._seen_residuals.add(residual)
            self.distinct_residuals += 1
        if mask == (1 << self._n) - 1:
            return {close(residual): 1}
        key = (mask, last_time, residual)
        cached = self._outcome_memo.get(key)
        if cached is not None:
            return cached
        combined: dict[bool, int] = {}
        for index, timestamp in self._available(mask, last_time):
            mask_after = mask | (1 << index)
            progressed = self._progress_step(mask_after, timestamp, residual, last_time)
            sub = self._walk(mask_after, timestamp, progressed)
            for verdict, count in sub.items():
                combined[verdict] = combined.get(verdict, 0) + count
        self._outcome_memo[key] = combined
        return combined

    def _completions(self, mask: int, last_time: int) -> int:
        """Number of (ordering, timestamp) completions of a partial cut."""
        if self._budget is not None:
            self._budget.step()
        if mask == (1 << self._n) - 1:
            return 1
        key = (mask, last_time)
        cached = self._count_memo.get(key)
        if cached is not None:
            return cached
        if self._dead(mask, last_time):
            self._count_memo[key] = 0
            return 0
        total = 0
        for index, timestamp in self._available(mask, last_time):
            total += self._completions(mask | (1 << index), timestamp)
        self._count_memo[key] = total
        return total

    # -- single-event progression -------------------------------------------------

    def _progress_step(
        self,
        mask_after: int,
        timestamp: int,
        residual: Formula | None,
        last_time: int,
    ) -> Formula:
        """Progress the residual over the one-observation segment
        ``[state(mask_after) @ timestamp]`` with boundary = timestamp."""
        props, valuation = self._state_for_mask(mask_after)
        trace = TimedTrace((State(props, valuation),), (timestamp,))
        if residual is None:
            return progress(trace, self._formula, timestamp)
        d = timestamp - last_time
        if d == 0:
            shifted = residual
        else:
            key = (residual._intern_id, d)
            shifted = self._shift_memo.get(key)
            if shifted is None:
                shifted = anchor_shift(residual, d)
                self._shift_memo[key] = shifted
        return progress(trace, shifted, timestamp)

    def _state_for_mask(self, mask: int) -> tuple[frozenset[str], Mapping[str, float]]:
        """The frontier-union state of a cut (memoized by bitmask).

        The frontier is determined by the cut alone: per-process order is
        total, so each process's contribution is its highest-seq chosen
        event.  The valuation is the (order-independent) delta sum of the
        chosen events.
        """
        cached = self._state_memo.get(mask)
        if cached is not None:
            return cached
        props: set[str] = set()
        accumulator: dict[str, float] = {}
        for indices in self._per_process.values():
            last: Event | None = None
            for i in indices:
                if mask & (1 << i):
                    last = self._events[i]
                    if self._needs_valuation and last.deltas:
                        for key, delta in last.deltas.items():
                            accumulator[key] = accumulator.get(key, 0) + delta
            if last is not None:
                props |= last.props
        valuation: Mapping[str, float] = (
            MappingProxyType(accumulator) if accumulator else MappingProxyType({})
        )
        state = (frozenset(props), valuation)
        self._state_memo[mask] = state
        return state
