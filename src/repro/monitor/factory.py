"""Monitor registry and the ``make_monitor`` factory.

One construction surface for every monitoring engine::

    make_monitor(spec, "smt", segments=8)          # explicit kind
    make_monitor(spec, computation=comp)           # kind="auto" heuristics

``kind="auto"`` picks an engine from cheap hints — event count, the
epsilon skew window, and formula size — preferring the exact memoized
:class:`~repro.monitor.fast.FastMonitor` when the computation is small
enough for its bitmask recursion and falling back to the paper's
segmented :class:`~repro.monitor.smt_monitor.SmtMonitor` otherwise.
The registry is open: downstream code can plug in engines with
:func:`register_monitor` and the parallel orchestrator will pick them up.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Mapping

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError
from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.fast import FastMonitor
from repro.monitor.online import OnlineMonitor
from repro.monitor.protocol import Monitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.mtl.ast import Formula

#: ``kind="auto"`` selects the fast monitor only below these thresholds
#: (the bitmask recursion is exponential in the worst case; the hard
#: event limit inside FastMonitor itself is 300).  These module constants
#: are the *static defaults*; the effective values live in the
#: calibration table below and can be overridden from measured crossover
#: points (``scripts/calibrate_factory.py``).
FAST_EVENT_LIMIT = 120
FAST_EPSILON_LIMIT = 25
FAST_FORMULA_LIMIT = 40

#: Auto-segmentation for the smt monitor: one segment per this many events.
EVENTS_PER_SEGMENT = 12

_DEFAULT_THRESHOLDS: dict[str, int] = {
    "fast_event_limit": FAST_EVENT_LIMIT,
    "fast_epsilon_limit": FAST_EPSILON_LIMIT,
    "fast_formula_limit": FAST_FORMULA_LIMIT,
    "events_per_segment": EVENTS_PER_SEGMENT,
}

#: The live auto-selection thresholds (mutated by calibration).
_thresholds: dict[str, int] = dict(_DEFAULT_THRESHOLDS)

#: Set this to a calibration JSON path to auto-load it on first import.
CALIBRATION_ENV_VAR = "REPRO_FACTORY_CALIBRATION"


def calibration() -> dict[str, int]:
    """The auto-selection thresholds currently in effect (a copy)."""
    return dict(_thresholds)


def apply_calibration(overrides: Mapping[str, int]) -> dict[str, int]:
    """Override auto-selection thresholds from a measured-crossover dict.

    Keys are a subset of ``{"fast_event_limit", "fast_epsilon_limit",
    "fast_formula_limit", "events_per_segment"}``; values must be
    positive integers.  Returns the thresholds now in effect.
    """
    for key, value in overrides.items():
        if key not in _DEFAULT_THRESHOLDS:
            raise MonitorError(
                f"unknown calibration key {key!r}; known: "
                + ", ".join(sorted(_DEFAULT_THRESHOLDS))
            )
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise MonitorError(
                f"calibration {key} must be a positive integer, got {value!r}"
            )
    _thresholds.update(overrides)
    return calibration()


def reset_calibration() -> dict[str, int]:
    """Restore the static default thresholds (returns them)."""
    _thresholds.clear()
    _thresholds.update(_DEFAULT_THRESHOLDS)
    return calibration()


def load_calibration(path: str) -> dict[str, int]:
    """Load and apply a calibration file written by
    ``scripts/calibrate_factory.py``.

    The file is JSON: either a flat overrides dict or a report object
    with the overrides under a ``"thresholds"`` key.
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and isinstance(data.get("thresholds"), dict):
        data = data["thresholds"]
    if not isinstance(data, dict):
        raise MonitorError(f"calibration file {path} must hold a JSON object")
    return apply_calibration(data)


if os.environ.get(CALIBRATION_ENV_VAR):  # pragma: no cover - environment hook
    load_calibration(os.environ[CALIBRATION_ENV_VAR])

#: The only engine kwargs the fast monitor understands; auto-selection
#: falls back to "smt" when the caller passed anything else (segment or
#: budget knobs express intent the fast monitor cannot honour).
_FAST_KWARGS = frozenset({"timestamp_samples"})

MonitorFactory = Callable[..., Monitor]


def _make_smt(formula: Formula, *, epsilon: int | None = None, **kwargs) -> Monitor:
    return SmtMonitor(formula, **kwargs)


def _make_fast(formula: Formula, *, epsilon: int | None = None, **kwargs) -> Monitor:
    return FastMonitor(formula, **kwargs)


def _make_baseline(formula: Formula, *, epsilon: int | None = None, **kwargs) -> Monitor:
    return EnumerationMonitor(formula, **kwargs)


def _make_online(formula: Formula, *, epsilon: int | None = None, **kwargs) -> Monitor:
    if epsilon is None:
        raise MonitorError(
            "the online monitor needs the clock-skew bound: pass epsilon=... "
            "or computation=... to make_monitor"
        )
    return OnlineMonitor(formula, epsilon, **kwargs)


_REGISTRY: dict[str, MonitorFactory] = {
    "smt": _make_smt,
    "fast": _make_fast,
    "baseline": _make_baseline,
    "enumeration": _make_baseline,  # alias
    "online": _make_online,
}


def register_monitor(kind: str, factory: MonitorFactory) -> None:
    """Register (or replace) a monitor kind.

    ``factory(formula, *, epsilon=None, **kwargs)`` must return an object
    satisfying the :class:`~repro.monitor.protocol.Monitor` protocol.
    """
    if not kind or kind == "auto":
        raise MonitorError(f"invalid monitor kind {kind!r}")
    _REGISTRY[kind] = factory


def available_monitors() -> tuple[str, ...]:
    """The registered kind names, sorted."""
    return tuple(sorted(_REGISTRY))


def formula_size(formula: Formula) -> int:
    """Number of AST nodes — the factory's formula-complexity hint."""
    return sum(1 for _ in formula.walk())


def select_kind(
    formula: Formula,
    event_count: int | None = None,
    epsilon: int | None = None,
) -> str:
    """The ``kind="auto"`` heuristic.

    The fast monitor is exact and usually fastest, but its cut recursion
    is only tractable for small event counts, small skew windows (the
    timestamp domain has ``2*epsilon - 1`` points per event), and
    moderate formulas.  Without an event-count hint we default to the
    segmented smt monitor, which degrades gracefully everywhere.
    """
    if event_count is None:
        return "smt"
    if (
        event_count <= _thresholds["fast_event_limit"]
        and (epsilon is None or epsilon <= _thresholds["fast_epsilon_limit"])
        and formula_size(formula) <= _thresholds["fast_formula_limit"]
    ):
        return "fast"
    return "smt"


def make_monitor(
    formula: Formula,
    kind: str = "auto",
    *,
    computation: DistributedComputation | None = None,
    event_count: int | None = None,
    epsilon: int | None = None,
    **kwargs,
) -> Monitor:
    """Build a monitor for ``formula``.

    ``kind`` is one of :func:`available_monitors` or ``"auto"``;
    ``computation`` (or the explicit ``event_count``/``epsilon`` hints)
    feeds the auto-selection heuristics and supplies the online monitor's
    epsilon.  Remaining keyword arguments go to the engine's constructor.
    """
    if computation is not None:
        if event_count is None:
            event_count = len(computation)
        if epsilon is None:
            epsilon = computation.epsilon
    if kind == "auto":
        kind = select_kind(formula, event_count=event_count, epsilon=epsilon)
        if kind == "fast" and set(kwargs) - _FAST_KWARGS:
            kind = "smt"
        if kind == "smt" and event_count and "segments" not in kwargs:
            kwargs["segments"] = max(1, event_count // _thresholds["events_per_segment"])
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        raise MonitorError(
            f"unknown monitor kind {kind!r}; available: {', '.join(available_monitors())}"
        ) from None
    return factory(formula, epsilon=epsilon, **kwargs)
