"""Network-of-timed-automata simulation with event capture.

The network advances in integer global-time ticks.  At each tick it fires
at most one action per step (internal edge or a matching ``!``/``?`` sync
pair), chosen uniformly at random by a seeded RNG — a discrete analogue
of UPPAAL's simulator.  Every fired edge is captured as a
:class:`FiredAction` carrying the *global* time of occurrence; trace
generation (:mod:`repro.timed_automata.trace_gen`) later converts these
to process-local timestamps through per-process clock models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import AutomatonError
from repro.timed_automata.automaton import Edge, SharedVars, TimedAutomaton


@dataclass(frozen=True)
class FiredAction:
    """One fired edge (or sync pair's half) during simulation."""

    automaton: str
    label: str
    global_time: int
    props: frozenset[str]


class Network:
    """A set of automata with shared variables and binary channel sync."""

    def __init__(
        self,
        automata: list[TimedAutomaton],
        shared: dict[str, int] | None = None,
        seed: int = 0,
    ) -> None:
        names = [a.name for a in automata]
        if len(set(names)) != len(names):
            raise AutomatonError("automaton names must be unique")
        self.automata = list(automata)
        self.shared: SharedVars = dict(shared or {})
        self._rng = random.Random(seed)
        self.time = 0
        self.history: list[FiredAction] = []
        #: Indices into history pairing sync senders with their receivers.
        self.sync_pairs: list[tuple[int, int]] = []

    # -- stepping --------------------------------------------------------------------

    def _enabled_moves(self) -> list[tuple[TimedAutomaton, Edge, TimedAutomaton | None, Edge | None]]:
        """All firable moves: (automaton, edge, partner, partner_edge).

        Internal edges have no partner; sync edges are paired sender and
        receiver across two distinct automata.
        """
        moves: list[tuple[TimedAutomaton, Edge, TimedAutomaton | None, Edge | None]] = []
        per_automaton = [(a, a.outgoing(self.shared)) for a in self.automata]
        for automaton, edges in per_automaton:
            for edge in edges:
                if edge.sync is None:
                    moves.append((automaton, edge, None, None))
                    continue
                if edge.sync.direction != "!":
                    continue  # receivers join through their sender
                for partner, partner_edges in per_automaton:
                    if partner is automaton:
                        continue
                    for partner_edge in partner_edges:
                        if partner_edge.sync is not None and edge.sync.matches(partner_edge.sync):
                            moves.append((automaton, edge, partner, partner_edge))
        return moves

    def step(self) -> list[FiredAction]:
        """Fire one randomly chosen enabled move, if any (no time passing)."""
        moves = self._enabled_moves()
        if not moves:
            return []
        automaton, edge, partner, partner_edge = self._rng.choice(moves)
        fired: list[FiredAction] = []
        automaton.fire(edge, self.shared)
        fired.append(self._capture(automaton, edge))
        if partner is not None and partner_edge is not None:
            partner.fire(partner_edge, self.shared)
            fired.append(self._capture(partner, partner_edge))
            # Record the synchronisation as a message: sender -> receiver.
            self.sync_pairs.append((len(self.history), len(self.history) + 1))
        self.history.extend(fired)
        return fired

    def _capture(self, automaton: TimedAutomaton, edge: Edge) -> FiredAction:
        props = frozenset(
            f"{automaton.name}.{p}" for p in edge.emitted_props(self.shared)
        )
        return FiredAction(automaton.name, edge.label, self.time, props)

    def delay(self) -> None:
        """Advance global time by one tick in every automaton."""
        for automaton in self.automata:
            if not automaton.can_delay():
                # An invariant forces an action; the caller should step()
                # until quiescent before delaying.  We proceed anyway —
                # the models used here are invariant-light — but flag it.
                pass
            automaton.tick()
        self.time += 1

    def run(self, ticks: int, actions_per_tick: int = 1) -> list[FiredAction]:
        """Simulate ``ticks`` time units, firing up to N actions per tick.

        Returns all actions fired during this run (also appended to
        :attr:`history`).
        """
        start = len(self.history)
        for _ in range(ticks):
            for _ in range(actions_per_tick):
                if not self.step():
                    break
            self.delay()
        return self.history[start:]
