"""Fischer's mutual-exclusion protocol (paper Appendix IX-A.b, Fig 9).

``n`` processes contend for a critical section guarded by a shared ``id``
variable.  A process requests (``req``) when ``id == 0``, writes its pid
within ``K`` ticks and waits; if after the wait ``id`` still equals its
pid it enters the critical section (``cs``), otherwise it retries.

Emitted propositions (per automaton ``p<i>``): ``p<i>.req``,
``p<i>.wait``, ``p<i>.cs``, ``p<i>.exit``, ``p<i>.retry``.
The ``cs`` proposition persists (frontier semantics) until the process's
``exit`` event — exactly what specs phi3/phi4 need.
"""

from __future__ import annotations

from repro.timed_automata.automaton import Edge, Location, TimedAutomaton
from repro.timed_automata.network import Network

#: Fischer's constant: max ticks between the request and the id write.
K = 2


def build_process(pid: int) -> TimedAutomaton:
    name = f"p{pid}"

    def id_free(shared) -> bool:
        return shared.get("id", 0) == 0

    def id_mine(shared) -> bool:
        return shared.get("id", 0) == pid

    def id_not_mine(shared) -> bool:
        return shared.get("id", 0) != pid

    def write_id(shared) -> None:
        shared["id"] = pid

    def clear_id(shared) -> None:
        shared["id"] = 0

    locations = [
        Location("A"),
        Location("Req", invariant=lambda c: c["x"] <= K),
        Location("Wait"),
        Location("CS"),
    ]
    edges = [
        Edge("A", "Req", "req", shared_guard=id_free, resets=("x",)),
        Edge(
            "Req",
            "Wait",
            "wait",
            guard=lambda c: c["x"] <= K,
            update=write_id,
            resets=("x",),
        ),
        Edge(
            "Wait",
            "CS",
            "cs",
            guard=lambda c: c["x"] > K,
            shared_guard=id_mine,
        ),
        Edge(
            "Wait",
            "A",
            "retry",
            guard=lambda c: c["x"] > K,
            shared_guard=id_not_mine,
        ),
        Edge("CS", "A", "exit", guard=lambda c: c["x"] > K + 1, update=clear_id),
    ]
    return TimedAutomaton(name, locations, edges, initial="A", clocks=("x",))


def build_network(processes: int, seed: int = 0) -> Network:
    automata = [build_process(i + 1) for i in range(processes)]
    return Network(automata, shared={"id": 0}, seed=seed)
