"""A discrete-time timed-automaton core (UPPAAL substitute).

The paper uses UPPAAL only to *generate traces* from three benchmark
models (Appendix IX-A).  This module provides the minimal-but-faithful
machinery those models need:

* locations with invariants;
* integer-valued clocks per automaton, reset on edges;
* edges with clock guards, data guards, channel synchronisation
  (``chan!`` / ``chan?``) and update actions;
* shared integer variables across a network (Fischer's ``id``).

Time advances in integer ticks; semantics are the standard
delay-or-action alternation of timed automata, discretised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.errors import AutomatonError

#: Guard/update callbacks receive the automaton's clock valuation and the
#: network's shared variable store.
ClockValuation = Mapping[str, int]
SharedVars = dict[str, int]


@dataclass(frozen=True)
class Channel:
    """A binary synchronisation channel (UPPAAL ``chan``).

    ``arg`` lets models pass a small integer (e.g. a train id) from the
    sender to the receiver, mirroring UPPAAL's channel arrays
    (``appr[id]!``).
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sync:
    """One side of a synchronisation: send (``!``) or receive (``?``)."""

    channel: Channel
    direction: str  # "!" or "?"

    def __post_init__(self) -> None:
        if self.direction not in ("!", "?"):
            raise AutomatonError(f"sync direction must be '!' or '?', got {self.direction!r}")

    def matches(self, other: "Sync") -> bool:
        return self.channel == other.channel and self.direction != other.direction

    def __str__(self) -> str:
        return f"{self.channel}{self.direction}"


@dataclass
class Edge:
    """A transition between two locations.

    ``guard`` and ``shared_guard`` must both pass for the edge to be
    enabled; ``resets`` lists clocks zeroed on firing; ``update`` mutates
    the shared store; ``label`` becomes the emitted event's proposition.
    """

    source: str
    target: str
    label: str
    guard: Callable[[ClockValuation], bool] | None = None
    shared_guard: Callable[[SharedVars], bool] | None = None
    sync: Sync | None = None
    resets: tuple[str, ...] = ()
    update: Callable[[SharedVars], None] | None = None
    #: Propositions emitted by the fired event; defaults to ``(label,)``.
    props: tuple[str, ...] | None = None
    #: Dynamic propositions computed from the shared store after ``update``.
    props_fn: Callable[[SharedVars], tuple[str, ...]] | None = None

    def emitted_props(self, shared: SharedVars) -> tuple[str, ...]:
        """The propositions this firing emits (static + dynamic)."""
        static = self.props if self.props is not None else ((self.label,) if self.label else ())
        dynamic = self.props_fn(shared) if self.props_fn is not None else ()
        return tuple(static) + tuple(dynamic)

    def enabled(self, clocks: ClockValuation, shared: SharedVars) -> bool:
        if self.guard is not None and not self.guard(clocks):
            return False
        if self.shared_guard is not None and not self.shared_guard(shared):
            return False
        return True


@dataclass
class Location:
    """A named location with an optional invariant over the clocks."""

    name: str
    invariant: Callable[[ClockValuation], bool] | None = None

    def admits(self, clocks: ClockValuation) -> bool:
        return self.invariant is None or self.invariant(clocks)


class TimedAutomaton:
    """One process of the network: locations, edges, private clocks."""

    def __init__(
        self,
        name: str,
        locations: list[Location],
        edges: list[Edge],
        initial: str,
        clocks: tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self._locations: dict[str, Location] = {}
        for location in locations:
            if location.name in self._locations:
                raise AutomatonError(f"duplicate location {location.name!r} in {name}")
            self._locations[location.name] = location
        for edge in edges:
            if edge.source not in self._locations or edge.target not in self._locations:
                raise AutomatonError(
                    f"edge {edge.label!r} references unknown locations "
                    f"{edge.source!r} -> {edge.target!r}"
                )
        if initial not in self._locations:
            raise AutomatonError(f"unknown initial location {initial!r} in {name}")
        self.edges = list(edges)
        self.initial = initial
        self.clock_names = tuple(clocks)

        # Mutable simulation state.
        self.location = initial
        self.clocks: dict[str, int] = {c: 0 for c in clocks}

    # -- simulation ---------------------------------------------------------------

    def reset(self) -> None:
        self.location = self.initial
        self.clocks = {c: 0 for c in self.clock_names}

    def tick(self) -> None:
        """Let one time unit pass (caller checks invariants)."""
        for clock in self.clocks:
            self.clocks[clock] += 1

    def can_delay(self) -> bool:
        """Would the current location's invariant still hold after a tick?"""
        future = {c: v + 1 for c, v in self.clocks.items()}
        return self._locations[self.location].admits(future)

    def outgoing(self, shared: SharedVars) -> list[Edge]:
        """Edges enabled from the current location under current state."""
        return [
            edge
            for edge in self.edges
            if edge.source == self.location and edge.enabled(self.clocks, shared)
        ]

    def fire(self, edge: Edge, shared: SharedVars) -> None:
        """Take an enabled edge: move, reset clocks, apply the update."""
        if edge.source != self.location:
            raise AutomatonError(
                f"{self.name}: cannot fire {edge.label!r} from {self.location!r}"
            )
        self.location = edge.target
        for clock in edge.resets:
            if clock not in self.clocks:
                raise AutomatonError(f"{self.name}: unknown clock {clock!r}")
            self.clocks[clock] = 0
        if edge.update is not None:
            edge.update(shared)

    def location_obj(self, name: str) -> Location:
        return self._locations[name]
