"""The Train-Gate benchmark model (paper Appendix IX-A.a, Figs 7-8).

Several trains share a bridge controlled by a gate.  A train approaches
(``appr``), either crosses directly (if the bridge is free) or is stopped
(``stop``) and later released (``go``), crosses (``cross``) and leaves
(``leave``).  The gate mirrors bridge occupancy with ``occ``/``free``
propositions, which specification phi2 observes.

Emitted propositions (per automaton ``train<i>`` / ``gate``):
``train<i>.appr``, ``train<i>.stop``, ``train<i>.go``, ``train<i>.cross``,
``train<i>.leave``, ``gate.occ``, ``gate.free``.
"""

from __future__ import annotations

from repro.timed_automata.automaton import Edge, Location, TimedAutomaton
from repro.timed_automata.network import Network

#: Minimum ticks between approach and crossing (the UPPAAL model's timing).
APPROACH_TIME = 2
#: Minimum ticks a crossing occupies the bridge.
CROSS_TIME = 2


def build_train(index: int) -> TimedAutomaton:
    """One train automaton; shared variable ``bridge`` is 0 when free,
    otherwise the index of the crossing train."""
    name = f"train{index}"

    def bridge_free(shared) -> bool:
        return shared.get("bridge", 0) == 0

    def bridge_busy(shared) -> bool:
        return shared.get("bridge", 0) != 0

    def claim(shared) -> None:
        shared["bridge"] = index

    def release(shared) -> None:
        shared["bridge"] = 0
        shared["leaves"] = shared.get("leaves", 0) + 1

    locations = [
        Location("Safe"),
        Location("Appr"),
        Location("Stop"),
        Location("Cross"),
    ]
    edges = [
        Edge("Safe", "Appr", "appr", resets=("x",)),
        Edge(
            "Appr",
            "Cross",
            "cross",
            guard=lambda c: c["x"] >= APPROACH_TIME,
            shared_guard=bridge_free,
            update=claim,
            resets=("x",),
        ),
        Edge("Appr", "Stop", "stop", shared_guard=bridge_busy),
        Edge(
            "Stop",
            "Cross",
            "cross",
            shared_guard=bridge_free,
            update=claim,
            resets=("x",),
            props=("go", "cross"),
        ),
        Edge(
            "Cross",
            "Safe",
            "leave",
            guard=lambda c: c["x"] >= CROSS_TIME,
            update=release,
        ),
    ]
    return TimedAutomaton(name, locations, edges, initial="Safe", clocks=("x",))


def build_gate() -> TimedAutomaton:
    """The gate mirrors the shared ``bridge`` variable as occ/free props."""

    def busy(shared) -> bool:
        return shared.get("bridge", 0) != 0

    def free(shared) -> bool:
        return shared.get("bridge", 0) == 0

    locations = [Location("Free"), Location("Occ")]
    edges = [
        Edge("Free", "Occ", "occ", shared_guard=busy),
        Edge("Occ", "Free", "free", shared_guard=free),
    ]
    return TimedAutomaton("gate", locations, edges, initial="Free")


def build_network(trains: int, seed: int = 0, include_gate: bool = True) -> Network:
    """A network of ``trains`` trains (and the gate observer)."""
    automata: list[TimedAutomaton] = [build_train(i + 1) for i in range(trains)]
    if include_gate:
        automata.append(build_gate())
    return Network(automata, shared={"bridge": 0, "leaves": 0}, seed=seed)
