"""From simulated networks to distributed computations.

The paper's synthetic pipeline (Section VI-A): run an UPPAAL model, log
each component's events with *its own, bounded-skew clock*, and hand the
result to the monitor.  ``events_per_second`` controls the event rate
(10/s in the paper's default setup): one simulation tick maps to
``1000 / events_per_second`` milliseconds, and local timestamps are the
per-process skewed readings of the hidden global clock.
"""

from __future__ import annotations

from repro.distributed.clocks import ClockModel, clocks_for_processes
from repro.distributed.computation import DistributedComputation
from repro.errors import AutomatonError
from repro.timed_automata.network import Network


def computation_from_network(
    network: Network,
    epsilon_ms: int,
    events_per_second: float = 10.0,
    clock_model: str = "fixed",
    seed: int = 0,
    clocks: dict[str, ClockModel] | None = None,
    include_messages: bool = True,
) -> DistributedComputation:
    """Convert a simulated network history into a distributed computation.

    ``epsilon_ms`` is the monitor's clock-skew bound; generated local
    timestamps respect it by construction (clock models never exceed it).
    """
    if events_per_second <= 0:
        raise AutomatonError(f"event rate must be positive, got {events_per_second}")
    tick_ms = max(1, round(1000.0 / events_per_second))
    processes = [a.name for a in network.automata]
    if clocks is None:
        clocks = clocks_for_processes(processes, epsilon_ms, model=clock_model, seed=seed)

    computation = DistributedComputation(epsilon_ms)
    made = []
    for action in network.history:
        clock = clocks[action.automaton]
        local_ms = clock.read(action.global_time * tick_ms)
        made.append(
            computation.add_event(action.automaton, local_ms, action.props)
        )
    if include_messages:
        for send_idx, recv_idx in network.sync_pairs:
            send, recv = made[send_idx], made[recv_idx]
            if send.process != recv.process:
                computation.add_message(send, recv)
    return computation


def generate(
    build_network,
    processes: int,
    length_ticks: int,
    epsilon_ms: int,
    events_per_second: float = 10.0,
    clock_model: str = "fixed",
    seed: int = 0,
) -> DistributedComputation:
    """One-call workload generation: build, simulate, convert.

    ``build_network`` is one of the model modules' ``build_network``
    functions (train_gate, fischer, gossip).
    """
    network = build_network(processes, seed=seed)
    network.run(length_ticks)
    return computation_from_network(
        network,
        epsilon_ms,
        events_per_second=events_per_second,
        clock_model=clock_model,
        seed=seed,
    )
