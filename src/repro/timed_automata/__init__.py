"""Timed-automata substrate (UPPAAL substitute) and the benchmark models."""

from repro.timed_automata import fischer, gossip, train_gate
from repro.timed_automata.automaton import (
    Channel,
    Edge,
    Location,
    Sync,
    TimedAutomaton,
)
from repro.timed_automata.network import FiredAction, Network
from repro.timed_automata.trace_gen import computation_from_network, generate

__all__ = [
    "Channel",
    "Edge",
    "FiredAction",
    "Location",
    "Network",
    "Sync",
    "TimedAutomaton",
    "computation_from_network",
    "fischer",
    "generate",
    "gossip",
    "train_gate",
]
