"""The Gossiping People benchmark (paper Appendix IX-A.c, Fig 10).

``n`` people each hold a private secret and share secrets by pairwise
calls; after a call, both parties know the union of each other's secrets.
Each person also mints fresh secrets from time to time (specification
phi6 checks this happens "infinitely often" — in the bounded reading,
within every window).

Emitted propositions (per automaton ``person<i>``):

* ``person<i>.secret<j>`` — i currently knows j's secret (emitted as the
  full knowledge set on every call, so frontier semantics keeps it
  accurate);
* ``person<i>.secrets``  — i has a fresh secret to share;
* ``person<i>.talk`` / ``person<i>.listen`` — call roles.
"""

from __future__ import annotations

from repro.timed_automata.automaton import Channel, Edge, Location, Sync, TimedAutomaton
from repro.timed_automata.network import Network


def _knowledge_props(shared, me: int) -> tuple[str, ...]:
    mask = shared.get(f"know{me}", 0)
    props = [f"secret{j}" for j in range(mask.bit_length()) if mask & (1 << j)]
    if shared.get(f"fresh{me}", 0):
        props.append("secrets")
    return tuple(props)


def build_person(index: int, total: int) -> TimedAutomaton:
    """Person ``index`` (1-based) among ``total`` people."""
    name = f"person{index}"

    def merge_with(other: int):
        def update(shared) -> None:
            mine = shared.get(f"know{index}", 0)
            theirs = shared.get(f"know{other}", 0)
            union = mine | theirs
            shared[f"know{index}"] = union
            shared[f"know{other}"] = union
            shared[f"fresh{index}"] = 0
            shared[f"fresh{other}"] = 0

        return update

    def mint(shared) -> None:
        shared[f"fresh{index}"] = 1
        shared[f"know{index}"] = shared.get(f"know{index}", 0) | (1 << index)

    edges: list[Edge] = [
        Edge(
            "Idle",
            "Idle",
            "new_secret",
            guard=lambda c: c["y"] >= 1,
            update=mint,
            resets=("y",),
            props=("secrets",),
            props_fn=lambda shared: _knowledge_props(shared, index),
        )
    ]
    for other in range(1, total + 1):
        if other == index:
            continue
        channel = Channel(f"meet_{min(index, other)}_{max(index, other)}")
        if index < other:
            edges.append(
                Edge(
                    "Idle",
                    "Idle",
                    "talk",
                    sync=Sync(channel, "!"),
                    update=merge_with(other),
                    props=("talk",),
                    props_fn=lambda shared, me=index: _knowledge_props(shared, me),
                )
            )
        else:
            edges.append(
                Edge(
                    "Idle",
                    "Idle",
                    "listen",
                    sync=Sync(channel, "?"),
                    props=("listen",),
                    props_fn=lambda shared, me=index: _knowledge_props(shared, me),
                )
            )
    return TimedAutomaton(
        name, [Location("Idle")], edges, initial="Idle", clocks=("y",)
    )


def build_network(people: int, seed: int = 0) -> Network:
    automata = [build_person(i + 1, people) for i in range(people)]
    shared: dict[str, int] = {}
    for i in range(1, people + 1):
        shared[f"know{i}"] = 1 << i  # everyone knows their own secret
        shared[f"fresh{i}"] = 1
    return Network(automata, shared=shared, seed=seed)
