"""Clock models for generating partially synchronous local timestamps.

The paper assumes each process ``P_i`` has a monotone local clock
``c_i : global -> local`` with ``|c_i(G) - c_j(G)| < epsilon`` for every
pair of processes.  When *generating* workloads we need the inverse
direction: given the (hidden, theoretical) global time of an event,
produce the local reading the process would log.  Three models:

* :class:`PerfectClock` — local == global (epsilon = 1);
* :class:`FixedSkewClock` — constant per-process offset within the bound;
* :class:`DriftingClock` — a bounded random walk re-centred as an NTP-like
  sync would, never exceeding the skew bound.
"""

from __future__ import annotations

import random

from repro.errors import ComputationError


class ClockModel:
    """Base class: maps global time to a process-local reading."""

    def read(self, global_time: int) -> int:
        raise NotImplementedError

    def bound(self) -> int:
        """An epsilon such that |local - global| < epsilon always holds."""
        raise NotImplementedError


class PerfectClock(ClockModel):
    """local == global; the bound is the minimal legal epsilon (1)."""

    def read(self, global_time: int) -> int:
        return global_time

    def bound(self) -> int:
        return 1


class FixedSkewClock(ClockModel):
    """A constant offset ``|offset| < epsilon`` from the global clock."""

    def __init__(self, offset: int, epsilon: int) -> None:
        if epsilon < 1:
            raise ComputationError(f"epsilon must be >= 1, got {epsilon}")
        if abs(offset) >= epsilon:
            raise ComputationError(
                f"offset {offset} violates the skew bound epsilon={epsilon}"
            )
        self._offset = offset
        self._epsilon = epsilon

    def read(self, global_time: int) -> int:
        return max(0, global_time + self._offset)

    def bound(self) -> int:
        return self._epsilon


class DriftingClock(ClockModel):
    """A random-walk clock kept within ``(-epsilon, epsilon)`` of global.

    Each read drifts by -1/0/+1 from the previous offset (seeded RNG),
    re-centring when the walk would touch the bound — the discrete
    analogue of periodic NTP correction.  Reads must be requested with
    non-decreasing global times, mirroring a real monotone clock.
    """

    def __init__(self, epsilon: int, seed: int = 0) -> None:
        if epsilon < 1:
            raise ComputationError(f"epsilon must be >= 1, got {epsilon}")
        self._epsilon = epsilon
        self._rng = random.Random(seed)
        self._offset = 0
        self._last_global: int | None = None
        self._last_local = 0

    def read(self, global_time: int) -> int:
        if self._last_global is not None and global_time < self._last_global:
            raise ComputationError(
                f"drifting clock read out of order: {self._last_global} then {global_time}"
            )
        step = self._rng.choice((-1, 0, 1))
        proposed = self._offset + step
        if abs(proposed) >= self._epsilon:
            proposed = 0  # NTP-style re-centre
        self._offset = proposed
        local = max(0, global_time + self._offset)
        # Local clocks are monotone even while the offset walks backwards.
        local = max(local, self._last_local)
        self._last_global = global_time
        self._last_local = local
        return local

    def bound(self) -> int:
        return self._epsilon


def clocks_for_processes(
    processes: list[str],
    epsilon: int,
    model: str = "fixed",
    seed: int = 0,
) -> dict[str, ClockModel]:
    """A clock per process, offsets spread across the admissible range.

    ``model`` is one of ``perfect``, ``fixed``, ``drift``.
    """
    if model == "perfect":
        return {p: PerfectClock() for p in processes}
    rng = random.Random(seed)
    clocks: dict[str, ClockModel] = {}
    for process in processes:
        if model == "fixed":
            offset = rng.randrange(-(epsilon - 1), epsilon) if epsilon > 1 else 0
            clocks[process] = FixedSkewClock(offset, epsilon)
        elif model == "drift":
            clocks[process] = DriftingClock(epsilon, seed=rng.randrange(1 << 30))
        else:
            raise ComputationError(f"unknown clock model {model!r}")
    return clocks
