"""Chopping a computation into segments (paper Section V-C).

A computation of local-time span ``l`` chopped into ``g`` segments yields
windows of length ``l/g``.  The paper notes each segment's *solver
instance* should also consider events within ``epsilon`` of the segment
start, because those may be concurrent with events inside the segment; we
expose that as the ``context`` event set of each segment.

Deviation from the paper (documented in DESIGN.md): when enumerating a
segment's traces, we clamp admissible timestamps to the segment's window
so that per-segment traces concatenate into a globally monotone trace.
With ``g = 1`` the behaviour is exact; for ``g > 1`` interleavings that
would straddle a boundary are approximated by the context mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.computation import DistributedComputation
from repro.distributed.event import Event
from repro.errors import ComputationError


@dataclass(frozen=True)
class Segment:
    """One segment of a computation.

    ``lo``/``hi`` bound the segment's local-time window ``[lo, hi)``;
    ``events`` are the events whose local time falls in the window, and
    ``context`` are the trailing events of the *previous* window within
    ``epsilon`` of ``lo`` (the paper's overlap).
    """

    index: int
    lo: int
    hi: int
    events: tuple[Event, ...]
    context: tuple[Event, ...]

    def __len__(self) -> int:
        return len(self.events)

    def is_empty(self) -> bool:
        return not self.events


def segment_computation(
    computation: DistributedComputation,
    segments: int,
) -> list[Segment]:
    """Chop ``computation`` into ``segments`` equal local-time windows.

    Every event lands in exactly one segment's ``events``; boundary events
    additionally appear in the next segment's ``context``.
    """
    if segments < 1:
        raise ComputationError(f"need at least one segment, got {segments}")
    events = sorted(computation.events, key=lambda e: (e.local_time, e.process, e.seq))
    if not events:
        return [Segment(0, 0, 0, (), ())]
    epsilon = computation.epsilon
    lo_time, hi_time = computation.local_span()
    span = hi_time - lo_time + 1
    width = max(1, -(-span // segments))  # ceil division

    result: list[Segment] = []
    for index in range(segments):
        seg_lo = lo_time + index * width
        seg_hi = seg_lo + width
        if index == segments - 1:
            seg_hi = max(seg_hi, hi_time + 1)
        own = tuple(e for e in events if seg_lo <= e.local_time < seg_hi)
        context = tuple(
            e for e in events if seg_lo - epsilon <= e.local_time < seg_lo
        )
        result.append(Segment(index, seg_lo, seg_hi, own, context))
    return result


def segments_for_frequency(
    computation: DistributedComputation,
    frequency_hz: float,
    time_unit_ms: int = 1,
) -> int:
    """Number of segments for a target segment *frequency* (Fig 5c's axis).

    ``frequency_hz`` is segments per second of computation; local times are
    integers in ``time_unit_ms`` milliseconds.
    """
    if frequency_hz <= 0:
        raise ComputationError(f"segment frequency must be positive, got {frequency_hz}")
    lo, hi = computation.local_span()
    span_seconds = (hi - lo + 1) * time_unit_ms / 1000.0
    return max(1, round(span_seconds * frequency_hz))
