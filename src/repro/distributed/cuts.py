"""Consistent cuts, frontiers, and linear extensions (paper Definitions 1-2).

These utilities are primarily used by the *baseline* enumeration monitor
and by tests that validate the solver-based pipeline; the production
monitor enumerates traces through :mod:`repro.encoding` instead.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.distributed.event import Event
from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.errors import ComputationError


def is_consistent_cut(hb: HappenedBefore, cut: Sequence[Event]) -> bool:
    """Definition 2: a cut is consistent iff it is downward closed under ⇝."""
    # Resolve every event once through the bulk index map instead of an
    # ``index_of`` round-trip per event per loop.
    index_map = hb.index_map()
    try:
        indices = [index_map[event.key] for event in cut]
    except KeyError as exc:
        raise ComputationError(f"unknown event key {exc.args[0]}") from None
    mask = 0
    for i in indices:
        mask |= 1 << i
    for i in indices:
        if hb.predecessors_mask(i) & ~mask:
            return False
    return True


def frontier(hb: HappenedBefore, cut: Sequence[Event]) -> list[Event]:
    """front(C): the last event of each process present in the cut."""
    last: dict[str, Event] = {}
    for event in cut:
        best = last.get(event.process)
        if best is None or best.seq < event.seq:
            last[event.process] = event
    return [last[p] for p in sorted(last)]


def linear_extensions(hb: HappenedBefore | HappenedBeforeView) -> Iterator[list[Event]]:
    """Enumerate every linear extension of ⇝ (every total event ordering).

    Each yielded list is one sequence-of-consistent-cuts C0 ⊂ C1 ⊂ ... in
    frontier order (Section III).  Exponential in the width of the partial
    order — only for small computations and tests.
    """
    events = hb.events
    n = len(events)
    order: list[int] = []
    chosen = 0

    def emit() -> list[Event]:
        return [events[i] for i in order]

    def recurse() -> Iterator[list[Event]]:
        nonlocal chosen
        if len(order) == n:
            yield emit()
            return
        for i in range(n):
            bit = 1 << i
            if chosen & bit:
                continue
            if hb.predecessors_mask(i) & ~chosen:
                continue  # some predecessor not yet in the cut
            order.append(i)
            chosen |= bit
            yield from recurse()
            order.pop()
            chosen &= ~bit

    return recurse()


def count_linear_extensions(hb: HappenedBefore | HappenedBeforeView) -> int:
    """Number of linear extensions (for tests and diagnostics)."""
    return sum(1 for _ in linear_extensions(hb))
