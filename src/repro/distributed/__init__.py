"""Distributed-computation substrate: events, happened-before, cuts, segments."""

from repro.distributed.clocks import (
    ClockModel,
    DriftingClock,
    FixedSkewClock,
    PerfectClock,
    clocks_for_processes,
)
from repro.distributed.computation import DistributedComputation
from repro.distributed.cuts import (
    count_linear_extensions,
    frontier,
    is_consistent_cut,
    linear_extensions,
)
from repro.distributed.event import Event, make_event
from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.distributed.segmentation import (
    Segment,
    segment_computation,
    segments_for_frequency,
)

__all__ = [
    "ClockModel",
    "DistributedComputation",
    "DriftingClock",
    "Event",
    "FixedSkewClock",
    "HappenedBefore",
    "HappenedBeforeView",
    "PerfectClock",
    "Segment",
    "clocks_for_processes",
    "count_linear_extensions",
    "frontier",
    "is_consistent_cut",
    "linear_extensions",
    "make_event",
    "segment_computation",
    "segments_for_frequency",
]
