"""Distributed computations ``(E, ⇝)`` (paper Definition 1).

A :class:`DistributedComputation` is built incrementally — add processes,
events, and message edges, then freeze it with :meth:`happened_before` to
obtain the closure used by the monitor.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Mapping

from repro.distributed.event import Event, make_event
from repro.distributed.hb import HappenedBefore
from repro.errors import ComputationError


class DistributedComputation:
    """A mutable builder for (and container of) a distributed computation.

    ``epsilon`` is the maximum clock skew guaranteed by the (NTP-like)
    synchronization algorithm; it is known to the monitor and drives both
    the epsilon edge rule of ``⇝`` and each event's admissible timestamp
    window.
    """

    def __init__(self, epsilon: int) -> None:
        if epsilon < 1:
            raise ComputationError(f"epsilon must be >= 1, got {epsilon}")
        self._epsilon = epsilon
        self._events: list[Event] = []
        self._keys: set[tuple[str, int]] = set()
        self._next_seq: dict[str, int] = {}
        self._messages: list[tuple[Event, Event]] = []
        self._hb: HappenedBefore | None = None

    # -- building ---------------------------------------------------------------

    def add_event(
        self,
        process: str,
        local_time: int,
        props: object = (),
        deltas: Mapping[str, float] | None = None,
    ) -> Event:
        """Append an event to ``process`` at the given local clock reading.

        Sequence numbers are assigned automatically in call order; local
        times on one process must be non-decreasing in that order.
        """
        self._invalidate()
        seq = self._next_seq.get(process, 0)
        event = make_event(process, seq, local_time, props, deltas)
        if self._events:
            last = self._last_on(process)
            if last is not None and last.local_time > local_time:
                raise ComputationError(
                    f"local clock on {process} must be monotone: "
                    f"{last.local_time} then {local_time}"
                )
        self._events.append(event)
        self._keys.add(event.key)
        self._next_seq[process] = seq + 1
        return event

    def add_message(self, send: Event, recv: Event) -> None:
        """Record a message edge ``send ⇝ recv`` between two known events."""
        self._invalidate()
        for event in (send, recv):
            if event.key not in self._keys:
                raise ComputationError(f"unknown event {event}")
        if send.process == recv.process:
            raise ComputationError("message edges must connect different processes")
        self._messages.append((send, recv))

    def _last_on(self, process: str) -> Event | None:
        for event in reversed(self._events):
            if event.process == process:
                return event
        return None

    def _invalidate(self) -> None:
        self._hb = None

    # -- access -------------------------------------------------------------------

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def events(self) -> list[Event]:
        """All events in insertion order."""
        return list(self._events)

    @property
    def processes(self) -> list[str]:
        """Process names in first-appearance order."""
        seen: list[str] = []
        for event in self._events:
            if event.process not in seen:
                seen.append(event.process)
        return seen

    @property
    def messages(self) -> list[tuple[Event, Event]]:
        return list(self._messages)

    def __len__(self) -> int:
        return len(self._events)

    def local_span(self) -> tuple[int, int]:
        """``(min, max)`` local timestamp over all events (0, 0 if empty)."""
        if not self._events:
            return (0, 0)
        times = [e.local_time for e in self._events]
        return (min(times), max(times))

    def happened_before(self) -> HappenedBefore:
        """The (cached) happened-before closure of this computation."""
        if self._hb is None:
            self._hb = HappenedBefore(self._events, self._messages, self._epsilon)
        return self._hb

    # -- convenience constructors ---------------------------------------------------

    @staticmethod
    def from_event_lists(
        epsilon: int,
        per_process: Mapping[str, Iterable[tuple[int, object]]],
    ) -> "DistributedComputation":
        """Build a computation from per-process ``(local_time, props)`` lists.

        >>> comp = DistributedComputation.from_event_lists(
        ...     2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]})
        """
        computation = DistributedComputation(epsilon)
        for process, entries in per_process.items():
            for local_time, props in entries:
                computation.add_event(process, local_time, props)
        return computation

    def __str__(self) -> str:
        lines = [f"DistributedComputation(epsilon={self._epsilon})"]
        for process in self.processes:
            events = [str(e) for e in self._events if e.process == process]
            lines.append(f"  {process}: " + " ".join(events))
        return "\n".join(lines)


EMPTY_VALUATION: Mapping[str, float] = MappingProxyType({})
