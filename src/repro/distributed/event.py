"""Events of a distributed computation.

An event ``e^i_sigma`` (paper Section II-A) is a local state change on
process ``P_i`` stamped with the *local* clock value ``sigma = c_i(G)``.
Our events additionally carry:

* ``props`` — the atomic propositions that hold at the instant of the
  event (the labelling function mu of Section V-A);
* ``deltas`` — numeric increments accumulated along a trace prefix, which
  feed :class:`~repro.mtl.ast.PredicateAtom` (e.g. the blockchain payoff
  sums ``sum of amount transferred to alice``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import ComputationError

_NO_DELTAS: Mapping[str, float] = MappingProxyType({})


@dataclass(frozen=True)
class Event:
    """A single event on one process.

    ``seq`` is the per-process sequence number; together with ``process``
    it uniquely identifies the event.  ``local_time`` is the local clock
    reading at the event (``sigma``).
    """

    process: str
    seq: int
    local_time: int
    props: frozenset[str] = frozenset()
    deltas: Mapping[str, float] = field(default_factory=lambda: _NO_DELTAS)

    def __post_init__(self) -> None:
        if not self.process:
            raise ComputationError("event process name must be non-empty")
        if self.seq < 0:
            raise ComputationError(f"event seq must be >= 0, got {self.seq}")
        if self.local_time < 0:
            raise ComputationError(f"event local_time must be >= 0, got {self.local_time}")

    @property
    def key(self) -> tuple[str, int]:
        """Unique identifier ``(process, seq)``."""
        return (self.process, self.seq)

    def timestamp_window(self, epsilon: int) -> tuple[int, int]:
        """The admissible true-time window for this event (Section V-A).

        With maximum clock skew ``epsilon``, a local reading ``sigma`` may
        correspond to any global time in
        ``[max(0, sigma - epsilon + 1), sigma + epsilon - 1]`` (inclusive).
        ``epsilon = 1`` therefore means perfect synchrony.
        """
        if epsilon < 1:
            raise ComputationError(f"epsilon must be >= 1, got {epsilon}")
        low = max(0, self.local_time - epsilon + 1)
        high = self.local_time + epsilon - 1
        return (low, high)

    def __reduce__(self):
        # deltas may be a (non-picklable) mappingproxy; rebuild through
        # make_event so events survive multiprocessing boundaries.
        return (
            make_event,
            (self.process, self.seq, self.local_time, self.props, dict(self.deltas) or None),
        )

    def __hash__(self) -> int:
        return hash((self.process, self.seq, self.local_time, self.props))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.process == other.process
            and self.seq == other.seq
            and self.local_time == other.local_time
            and self.props == other.props
            and dict(self.deltas) == dict(other.deltas)
        )

    def __str__(self) -> str:
        labels = ",".join(sorted(self.props)) or "·"
        return f"{self.process}[{self.seq}]@{self.local_time}:{labels}"


def make_event(
    process: str,
    seq: int,
    local_time: int,
    props: object = (),
    deltas: Mapping[str, float] | None = None,
) -> Event:
    """Convenience constructor accepting any iterable of proposition names."""
    if isinstance(props, str):
        props = (props,)
    frozen = frozenset(props)  # type: ignore[arg-type]
    mapping = MappingProxyType(dict(deltas)) if deltas else _NO_DELTAS
    return Event(process, seq, local_time, frozen, mapping)
