"""The paper's SMT encoding of cut sequences (Section V-B), as a CSP.

For a segment with events ``e_0 .. e_{n-1}`` we declare:

* ``pos<i>`` in ``[0, n)`` — the event's index in the sequence of
  consistent cuts (the uninterpreted function rho, inverted: ``pos`` of an
  event is the step at which it joins the cut);
* ``t<i>`` — the event's reassigned timestamp, ranging over the skew
  window of Section V-A (optionally clamped to the segment window, see
  DESIGN.md);

and constraints:

* ``AllDifferent(pos*)``       — cuts grow by exactly one event;
* ``pos_i < pos_j`` whenever ``e_i ⇝ e_j``  — downward closure
  (consistency of every cut in the sequence);
* ``pos_i < pos_j  ->  t_i <= t_j`` for all pairs — monotonicity of the
  cut-time sequence tau.

A model is exactly one trace of ``Tr(E, ⇝)`` (Section III).
"""

from __future__ import annotations

from typing import Sequence

from repro.distributed.event import Event
from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.errors import EncodingError
from repro.solver.constraints import AllDifferent, BinaryRelation, ConditionalOrder
from repro.solver.csp import Problem
from repro.solver.domain import Domain


def timestamp_domain(
    event: Event,
    epsilon: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    samples: int | None = None,
) -> Domain:
    """The admissible timestamps for an event, optionally window-clamped.

    The unclamped window is Section V-A's
    ``[max(0, sigma - epsilon + 1), sigma + epsilon - 1]``.  Clamping never
    empties the domain because the local reading ``sigma`` itself is always
    admissible and always inside its own segment window.

    ``samples`` (optional) reduces the domain to at most that many values —
    always keeping the local reading and both window extremes, then an even
    spread.  This is a *sound under-approximation*: every retained value is
    admissible, so any verdict found is a real verdict, but rare verdicts
    reachable only at unsampled timestamps may be missed.  Mirrors the
    paper's practice of issuing a bounded number of solver queries rather
    than enumerating every model.
    """
    lo, hi = event.timestamp_window(epsilon)
    if clamp_lo is not None:
        lo = max(lo, clamp_lo)
    if clamp_hi is not None:
        hi = min(hi, clamp_hi - 1)
    if hi < lo:
        raise EncodingError(
            f"event {event} has an empty timestamp window after clamping "
            f"to [{clamp_lo}, {clamp_hi})"
        )
    if samples is None or hi - lo + 1 <= samples:
        return Domain.range(lo, hi)
    if samples < 1:
        raise EncodingError(f"samples must be >= 1, got {samples}")
    # Priority: the local reading, both extremes, then an even spread.
    chosen: list[int] = []
    for value in (min(max(event.local_time, lo), hi), lo, hi):
        if value not in chosen:
            chosen.append(value)
    steps = max(samples - 1, 1)
    for k in range(samples):
        value = lo + round(k * (hi - lo) / steps)
        if len(chosen) >= samples:
            break
        if value not in chosen:
            chosen.append(value)
    return Domain(chosen[:samples])


def encode_segment(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    timestamp_samples: int | None = None,
) -> tuple[Problem, Sequence[Event]]:
    """Build the cut-sequence CSP for one segment.

    Returns the problem plus the event indexing used by the variables
    (decode models with :func:`~repro.encoding.trace_extractor.model_to_trace`).
    """
    events = hb.events
    n = len(events)
    problem = Problem()
    if n == 0:
        raise EncodingError("cannot encode an empty segment")
    for i, event in enumerate(events):
        problem.add_variable(f"pos{i}", Domain.range(0, n - 1))
        problem.add_variable(
            f"t{i}",
            timestamp_domain(event, epsilon, clamp_lo, clamp_hi, timestamp_samples),
        )
    problem.add_constraint(AllDifferent([f"pos{i}" for i in range(n)]))
    for j in range(n):
        mask = hb.predecessors_mask(j)
        for i in range(n):
            if mask & (1 << i):
                problem.add_constraint(BinaryRelation(f"pos{i}", f"pos{j}", "<"))
    for i in range(n):
        for j in range(i + 1, n):
            problem.add_constraint(
                ConditionalOrder(f"pos{i}", f"pos{j}", f"t{i}", f"t{j}")
            )
    return problem, events
