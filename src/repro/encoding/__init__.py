"""Encoding a segment's trace set as a constraint problem (paper Section V)."""

from repro.encoding.cut_encoder import encode_segment, timestamp_domain
from repro.encoding.enumerator import count_traces, enumerate_traces
from repro.encoding.trace_extractor import build_trace, model_to_trace
from repro.encoding.verdict_enumerator import (
    SegmentOutcome,
    enumerate_segment_outcomes,
    stream_segment_outcomes,
)

__all__ = [
    "SegmentOutcome",
    "build_trace",
    "count_traces",
    "encode_segment",
    "enumerate_segment_outcomes",
    "enumerate_traces",
    "model_to_trace",
    "stream_segment_outcomes",
    "timestamp_domain",
]
