"""Turning an ordered, timestamped event sequence into a timed trace.

State semantics follow the paper's frontier reading (Section V-B's atom
constraint ranges over ``front(rho(i))``): the state at step ``i`` is the
union of the propositions of the *last event of each process* present in
the cut.  A proposition therefore persists from the event that emits it
until the next event of the same process — which is how the models encode
state-like facts (``gate.occ``, ``p1.cs``) as well as one-shot facts
(``apr.asset_redeemed(bob)``).

States additionally carry a *cumulative* numeric valuation folded from
each event's ``deltas`` — this is what the blockchain payoff predicates
(``sum of amounts transferred to alice``) evaluate against.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Sequence

from repro.distributed.event import Event
from repro.mtl.trace import State, TimedTrace


def build_trace(
    ordered: Sequence[tuple[Event, int]],
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
) -> TimedTrace:
    """Build a timed trace from ``(event, timestamp)`` pairs in trace order.

    ``frontier_props`` seeds the per-process frontier (the last observed
    propositions of each process from *earlier segments*), and
    ``base_valuation`` seeds the cumulative numeric valuation; both are
    order-independent summaries, so a single value per segment is exact.
    """
    states: list[State] = []
    times: list[int] = []
    frontier: dict[str, frozenset[str]] = dict(frontier_props) if frontier_props else {}
    accumulator: dict[str, float] = dict(base_valuation) if base_valuation else {}
    valuation_dirty = bool(accumulator)
    snapshot: Mapping[str, float] = MappingProxyType({})
    for event, timestamp in ordered:
        frontier[event.process] = event.props
        if event.deltas:
            for key, delta in event.deltas.items():
                accumulator[key] = accumulator.get(key, 0) + delta
            valuation_dirty = True
        if valuation_dirty:
            snapshot = MappingProxyType(dict(accumulator))
            valuation_dirty = False
        props = frozenset().union(*frontier.values()) if frontier else frozenset()
        states.append(State(props, snapshot))
        times.append(timestamp)
    return TimedTrace(states, times)


def segment_carry(
    events: Sequence[Event],
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
) -> tuple[dict[str, float], dict[str, frozenset[str]]]:
    """Fold a segment's events into carry-over state for the next segment.

    Returns the updated ``(base_valuation, frontier_props)``.  The frontier
    uses each process's last event *in local-time order*, which is the same
    for every admissible trace of the segment; the valuation is a plain
    order-independent sum.
    """
    valuation: dict[str, float] = dict(base_valuation) if base_valuation else {}
    frontier: dict[str, frozenset[str]] = dict(frontier_props) if frontier_props else {}
    last: dict[str, Event] = {}
    for event in events:
        for key, delta in event.deltas.items():
            valuation[key] = valuation.get(key, 0) + delta
        best = last.get(event.process)
        if best is None or best.seq < event.seq:
            last[event.process] = event
    for process, event in last.items():
        frontier[process] = event.props
    return valuation, frontier


def model_to_trace(
    events: Sequence[Event],
    model: dict[str, int],
    pos_prefix: str = "pos",
    time_prefix: str = "t",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
) -> TimedTrace:
    """Decode a solver model from the cut encoding into a timed trace.

    The model maps ``pos<i>`` to the event's position in the interleaving
    and ``t<i>`` to its chosen timestamp, where ``i`` indexes ``events``.
    """
    order = sorted(range(len(events)), key=lambda i: model[f"{pos_prefix}{i}"])
    pairs = [(events[i], model[f"{time_prefix}{i}"]) for i in order]
    return build_trace(pairs, base_valuation, frontier_props)
