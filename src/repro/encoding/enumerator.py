"""Direct depth-first enumeration of a segment's traces.

This is the production path of the monitor: it enumerates exactly the
models of the cut-sequence CSP (:mod:`repro.encoding.cut_encoder`) but
interleaves the ordering and timestamp choices, pruning monotonicity
violations as early as possible.  Tests assert model-for-model agreement
with the CSP encoding on randomized inputs; benchmarks can select either
backend (``backend="csp"`` is the ablation).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.distributed.event import Event
from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.encoding.cut_encoder import encode_segment, timestamp_domain
from repro.encoding.trace_extractor import build_trace, model_to_trace
from repro.mtl.trace import TimedTrace
from repro.progression.budget import Budget
from repro.solver.engine import Solver


def enumerate_traces(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    limit: int | None = None,
    backend: str = "dfs",
    base_valuation=None,
    frontier_props=None,
    timestamp_samples: int | None = None,
    budget: Budget | None = None,
    root_branches: Sequence[tuple[int, int]] | None = None,
) -> Iterator[TimedTrace]:
    """All traces of ``Tr(E, ⇝)`` for the segment, lazily.

    ``backend`` selects the DFS fast path or the paper-literal CSP
    encoding; both enumerate the same set of traces.  ``base_valuation``
    seeds the cumulative numeric valuation (sums carried from previous
    segments).  ``budget`` is checkpointed once per DFS node (or per CSP
    model) and raises :class:`~repro.errors.PreemptedError` mid-stream
    when tripped.  ``root_branches`` restricts the DFS to the given
    ``(event_index, timestamp)`` first choices — the partitioned mode:
    the union of the traces over a partition of :func:`root_frontier` is
    exactly the unrestricted enumeration.
    """
    if backend == "csp":
        if root_branches is not None:
            raise ValueError("root_branches requires the dfs backend")
        yield from _enumerate_csp(
            hb, epsilon, clamp_lo, clamp_hi, limit, base_valuation, frontier_props,
            timestamp_samples, budget)
        return
    if backend != "dfs":
        raise ValueError(f"unknown backend {backend!r}")
    yield from _enumerate_dfs(
        hb, epsilon, clamp_lo, clamp_hi, limit, base_valuation, frontier_props,
        timestamp_samples, budget, root_branches)


def root_frontier(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    timestamp_samples: int | None = None,
) -> list[tuple[int, int]]:
    """The DFS root branches: every admissible first ``(event, timestamp)``.

    Each pair is an ``(event_index, timestamp)`` first choice of the
    unrestricted DFS, in the exact order the serial walk would try them.
    Partitioning this list and running :func:`enumerate_traces` with each
    part as ``root_branches`` yields disjoint sub-enumerations whose
    union (as a multiset of traces) equals the serial walk — the split
    point for intra-segment parallelism.
    """
    events: Sequence[Event] = hb.events
    n = len(events)
    if n == 0:
        return []
    domains = [
        _diverse_first(
            timestamp_domain(event, epsilon, clamp_lo, clamp_hi, timestamp_samples).values,
            events[i].local_time)
        for i, event in enumerate(events)
    ]
    # Mirror the DFS root: dead-branch pruning at last_time=0 empties the
    # whole enumeration when any event cannot reach a non-negative time.
    if any(max(d) < 0 for d in domains):
        return []
    branches: list[tuple[int, int]] = []
    for i in range(n):
        if hb.predecessors_mask(i):
            continue  # has a happened-before predecessor: never a first pick
        branches.extend((i, ts) for ts in domains[i] if ts >= 0)
    return branches


def _enumerate_csp(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None,
    clamp_hi: int | None,
    limit: int | None,
    base_valuation,
    frontier_props,
    timestamp_samples,
    budget: Budget | None = None,
) -> Iterator[TimedTrace]:
    problem, events = encode_segment(hb, epsilon, clamp_lo, clamp_hi, timestamp_samples)
    solver = Solver(problem)
    for model in solver.solutions(limit):
        if budget is not None:
            budget.step()
        yield model_to_trace(
            events, model, base_valuation=base_valuation, frontier_props=frontier_props)


def _enumerate_dfs(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None,
    clamp_hi: int | None,
    limit: int | None,
    base_valuation,
    frontier_props,
    timestamp_samples,
    budget: Budget | None = None,
    root_branches: Sequence[tuple[int, int]] | None = None,
) -> Iterator[TimedTrace]:
    events: Sequence[Event] = hb.events
    n = len(events)
    if n == 0:
        return
    domains = [
        _diverse_first(
            timestamp_domain(event, epsilon, clamp_lo, clamp_hi, timestamp_samples).values,
            events[i].local_time)
        for i, event in enumerate(events)
    ]
    max_time = [max(d) for d in domains]
    produced = 0

    chosen_order: list[tuple[Event, int]] = []

    def recurse(chosen_mask: int, last_time: int) -> Iterator[TimedTrace]:
        nonlocal produced
        if budget is not None:
            budget.step()
        if limit is not None and produced >= limit:
            return
        if len(chosen_order) == n:
            produced += 1
            yield build_trace(chosen_order, base_valuation, frontier_props)
            return
        # Dead-branch pruning: every unchosen event must still be able to
        # take a timestamp >= last_time.
        for i in range(n):
            if not chosen_mask & (1 << i) and max_time[i] < last_time:
                return
        for i in range(n):
            bit = 1 << i
            if chosen_mask & bit:
                continue
            if hb.predecessors_mask(i) & ~chosen_mask:
                continue  # a happened-before predecessor is not in the cut yet
            for timestamp in domains[i]:
                if timestamp < last_time:
                    continue
                chosen_order.append((events[i], timestamp))
                yield from recurse(chosen_mask | bit, timestamp)
                chosen_order.pop()
                if limit is not None and produced >= limit:
                    return

    if root_branches is None:
        yield from recurse(0, 0)
        return
    # Partitioned mode: the caller pins the depth-0 choices.  The pruning
    # and ordering below the root are byte-for-byte the serial walk, so
    # the union over a partition of root_frontier() is the full stream.
    for i in range(n):
        if max_time[i] < 0:
            return
    for i, timestamp in root_branches:
        chosen_order.append((events[i], timestamp))
        yield from recurse(1 << i, timestamp)
        chosen_order.pop()
        if limit is not None and produced >= limit:
            return


def _diverse_first(values: tuple[int, ...], center: int) -> tuple[int, ...]:
    """Order a timestamp domain so distinct verdicts surface early.

    The local reading itself comes first (the "no drift" trace), then the
    window extremes (which flip interval-membership checks fastest), then
    the rest — the same set of values, reordered.  Verdict-enumeration
    callers stop as soon as they have seen every distinct outcome, so the
    ordering matters a great deal for wall-clock time.
    """
    if len(values) <= 2:
        return values
    rest = [v for v in values if v != center and v != values[0] and v != values[-1]]
    head = [center] if center in values else []
    for extreme in (values[0], values[-1]):
        if extreme not in head:
            head.append(extreme)
    return tuple(head + rest)


def count_traces(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
) -> int:
    """Number of traces of the segment (diagnostics and tests)."""
    return sum(1 for _ in enumerate_traces(hb, epsilon, clamp_lo, clamp_hi))
