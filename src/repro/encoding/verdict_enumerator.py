"""Enumerating the distinct progression outcomes of one segment.

Each segment trace progresses the carried formula into a residual; the
*set of distinct residuals* (with trace-class counts) is the segment's
verdict information.  This mirrors the paper's repeated SMT invocations
with previous verdicts blocked (Section VI-A's "number of truth values
per segment" parameter, Fig 5e): ``max_distinct`` stops the enumeration
as soon as that many distinct outcomes exist.

The pipeline is *streaming*: :func:`stream_segment_outcomes` pulls one
trace at a time from the (lazy) enumerator and progresses every carried
residual over it before the next trace is produced, yielding the running
:class:`SegmentOutcome` after each trace.  Memory stays bounded by the
carried-residual set (plus the shared trace cache when enabled), early
truncation (``max_distinct``, verdict saturation) stops the underlying
enumeration mid-stream, and incremental consumers — the segment-parallel
orchestrator watching for the carried set to cross its shard threshold —
can act on partial outcomes without waiting for the segment to drain.
:func:`enumerate_segment_outcomes` is the drain-it-all wrapper.

Hot-path notes: the inner loop is *columnar* — carried residuals live as
``(arena id, count)`` pairs and every trace is progressed by one batch
pass of :class:`~repro.progression.columnar.ColumnarSegmentProgressor`
over the intern arena, touching no Formula objects at all.  Setting
``REPRO_COLUMNAR=0`` in the environment selects the legacy object path
(a :class:`~repro.progression.progressor.TraceProgressor` walk per
trace); the differential suite runs both and asserts bit-identical
residuals.  :class:`SegmentOutcome` stores ids internally and
materializes the ``residuals`` dict lazily at the API boundary.
"""

from __future__ import annotations

import os
from typing import Hashable, Iterator, Mapping

from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.encoding.enumerator import enumerate_traces
from repro.encoding.trace_cache import shared_traces
from repro.mtl.ast import Formula, formula_of, intern_formula
from repro.progression.columnar import ColumnarSegmentProgressor
from repro.progression.progressor import TraceProgressor, anchor_shift, close_id

#: Default per-segment trace budget for the online/offline monitors.
#: Admissible-trace counts explode combinatorially with segment length
#: (every interleaving × every admissible timestamp assignment), so an
#: unbounded default can simply never finish (see ROADMAP's ``F[0,30) b``
#: blowup).  The budget is far above anything exhaustive verification
#: needs in practice; hitting it flags the result ``truncated`` instead
#: of hanging.  Pass ``max_traces_per_segment=None`` explicitly for
#: unbounded enumeration.
DEFAULT_TRACE_BUDGET = 20_000


def _columnar_enabled() -> bool:
    """True unless the environment opts out (``REPRO_COLUMNAR=0``)."""
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


class SegmentOutcome:
    """Distinct residual formulas after one segment, with class counts.

    Residuals are stored as intern-arena ids (the columnar kernel's
    native currency); the ``residuals`` dict of canonical
    :class:`~repro.mtl.ast.Formula` objects is materialized lazily and
    cached, so boundary consumers (shard split, snapshots, reports) see
    the same contract as before while the hot loop never boxes ids.
    """

    __slots__ = (
        "_id_counts",
        "_residuals_cache",
        "traces_enumerated",
        "truncated",
        "saturated",
    )

    def __init__(
        self,
        residuals: Mapping[Formula, int] | None = None,
        traces_enumerated: int = 0,
        truncated: bool = False,
        saturated: bool = False,
    ) -> None:
        self._id_counts: dict[int, int] = {}
        self._residuals_cache: dict[Formula, int] | None = None
        self.traces_enumerated = traces_enumerated
        self.truncated = truncated
        #: True when enumeration stopped because the *final verdict set*
        #: was already saturated ({True, False}) — lossless for the
        #: verdict set.
        self.saturated = saturated
        if residuals:
            for residual, count in residuals.items():
                self.add(residual, count)

    @property
    def residuals(self) -> dict[Formula, int]:
        """The distinct residuals as canonical Formula objects."""
        cached = self._residuals_cache
        if cached is None:
            cached = {
                formula_of(fid): count for fid, count in self._id_counts.items()
            }
            self._residuals_cache = cached
        return cached

    @property
    def distinct(self) -> int:
        """Number of distinct residuals (no materialization)."""
        return len(self._id_counts)

    def id_counts(self) -> dict[int, int]:
        """The residual column itself: arena id -> trace-class count."""
        return self._id_counts

    def add(self, residual: Formula, count: int = 1) -> None:
        self.add_id(intern_formula(residual)._intern_id, count)

    def add_id(self, fid: int, count: int = 1) -> None:
        counts = self._id_counts
        counts[fid] = counts.get(fid, 0) + count
        self._residuals_cache = None

    def __reduce__(self):
        # Arena ids are process-local; a pickled outcome crosses the wire
        # as materialized formulas and re-interns on arrival.
        return (
            _restore_outcome,
            (dict(self.residuals), self.traces_enumerated, self.truncated, self.saturated),
        )


def _restore_outcome(
    residuals: dict, traces_enumerated: int, truncated: bool, saturated: bool
) -> SegmentOutcome:
    return SegmentOutcome(residuals, traces_enumerated, truncated, saturated)


def stream_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    max_traces: int | None = None,
    max_distinct: int | None = None,
    backend: str = "dfs",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
    saturate_final: bool = False,
    timestamp_samples: int | None = None,
    cache_key: Hashable | None = None,
) -> Iterator[SegmentOutcome]:
    """Progress every carried residual over the segment's traces, lazily.

    Yields the running :class:`SegmentOutcome` (one mutating instance)
    after each progressed trace, and once more after enumeration ends
    with the truncation flags settled — so ``for outcome in ...: pass``
    leaves ``outcome`` equal to the drained result.  Traces are pulled
    from the enumerator one at a time; stopping early (truncation,
    saturation, or the consumer abandoning the generator) stops the
    enumeration itself.

    ``carried`` maps residual formulas (anchored at ``anchor``; None means
    "anchored at the first observation", i.e. the initial formula) to the
    number of trace classes that produced them.  ``boundary`` is the
    segment's upper time boundary, where the new residuals are anchored.

    ``saturate_final`` is only valid for the *last* segment: enumeration
    stops once the closed verdicts of the distinct residuals cover both
    True and False — the verdict set cannot grow further, mirroring the
    paper's "one SMT query per distinct verdict" loop.

    ``cache_key``, when given, shares the trace enumeration through the
    process-local :mod:`~repro.encoding.trace_cache` — the key must
    capture every argument that shapes the traces (events, epsilon,
    clamps, backend, limit, valuation context).
    """
    outcome = SegmentOutcome()
    closed_verdicts: set[bool] = set()
    # Interned carried residuals: structurally equal residuals collapse
    # to one (id, count) column entry up front.
    merged: dict[int, int] = {}
    for residual, count in carried.items():
        fid = intern_formula(residual)._intern_id
        merged[fid] = merged.get(fid, 0) + count
    pairs = list(merged.items())

    def traces():
        return enumerate_traces(
            hb,
            epsilon,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            limit=max_traces,
            backend=backend,
            base_valuation=base_valuation,
            frontier_props=frontier_props,
            timestamp_samples=timestamp_samples,
        )

    trace_iter = traces() if cache_key is None else shared_traces(cache_key, traces)
    columnar = _columnar_enabled()
    kernel = ColumnarSegmentProgressor(pairs) if columnar else None
    # Legacy path: one anchor-shift per distinct trace start time, not
    # per (trace, residual) — traces share a handful of start times.
    shifted_by_shift: dict[int, list[tuple[Formula, int]]] = {}
    id_counts = outcome.id_counts()
    for trace in trace_iter:
        outcome.traces_enumerated += 1
        shift = 0 if anchor is None else trace.start_time - anchor
        if columnar:
            progressed_pairs = kernel.progress_trace(
                trace, shift, max(boundary, trace.end_time)
            )
            for fid, count in progressed_pairs:
                if saturate_final and fid not in id_counts:
                    closed_verdicts.add(close_id(fid))
                outcome.add_id(fid, count)
        else:
            shifted = shifted_by_shift.get(shift)
            if shifted is None:
                shifted = [
                    (anchor_shift(formula_of(fid), shift), count)
                    for fid, count in pairs
                ]
                shifted_by_shift[shift] = shifted
            progressor = TraceProgressor(trace, max(boundary, trace.end_time))
            for formula, count in shifted:
                progressed = progressor.progress(formula, 0)
                fid = progressed._intern_id
                if saturate_final and fid not in id_counts:
                    closed_verdicts.add(close_id(fid))
                outcome.add_id(fid, count)
        yield outcome
        if saturate_final and closed_verdicts >= {True, False}:
            outcome.saturated = True
            break
        if max_distinct is not None and outcome.distinct >= max_distinct:
            outcome.truncated = True
            break
    if max_traces is not None and outcome.traces_enumerated >= max_traces:
        outcome.truncated = True
    yield outcome


def enumerate_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    **kwargs,
) -> SegmentOutcome:
    """Drain :func:`stream_segment_outcomes` and return the final outcome."""
    outcome = SegmentOutcome()
    for outcome in stream_segment_outcomes(
        hb, epsilon, carried, anchor, boundary, **kwargs
    ):
        pass
    return outcome
