"""Enumerating the distinct progression outcomes of one segment.

Each segment trace progresses the carried formula into a residual; the
*set of distinct residuals* (with trace-class counts) is the segment's
verdict information.  This mirrors the paper's repeated SMT invocations
with previous verdicts blocked (Section VI-A's "number of truth values
per segment" parameter, Fig 5e): ``max_distinct`` stops the enumeration
as soon as that many distinct outcomes exist.

The pipeline is *streaming*: :func:`stream_segment_outcomes` pulls one
trace at a time from the (lazy) enumerator and progresses every carried
residual over it before the next trace is produced, yielding the running
:class:`SegmentOutcome` after each trace.  Memory stays bounded by the
carried-residual set (plus the shared trace cache when enabled), early
truncation (``max_distinct``, verdict saturation) stops the underlying
enumeration mid-stream, and incremental consumers — the segment-parallel
orchestrator watching for the carried set to cross its shard threshold —
can act on partial outcomes without waiting for the segment to drain.
:func:`enumerate_segment_outcomes` is the drain-it-all wrapper.

Hot-path notes: carried residuals are interned on entry
(:func:`~repro.mtl.ast.intern_formula`), one
:class:`~repro.progression.progressor.TraceProgressor` per trace is
shared by *all* residuals (subformulas shared between residuals hit one
memo), and anchor-shifts are computed once per distinct trace start
time, not once per (trace, residual) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.encoding.enumerator import enumerate_traces
from repro.encoding.trace_cache import shared_traces
from repro.mtl.ast import Formula, intern_formula
from repro.progression.progressor import TraceProgressor, anchor_shift, close


@dataclass
class SegmentOutcome:
    """Distinct residual formulas after one segment, with class counts."""

    residuals: dict[Formula, int] = field(default_factory=dict)
    traces_enumerated: int = 0
    truncated: bool = False
    #: True when enumeration stopped because the *final verdict set* was
    #: already saturated ({True, False}) — lossless for the verdict set.
    saturated: bool = False

    def add(self, residual: Formula, count: int = 1) -> None:
        self.residuals[residual] = self.residuals.get(residual, 0) + count


def stream_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    max_traces: int | None = None,
    max_distinct: int | None = None,
    backend: str = "dfs",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
    saturate_final: bool = False,
    timestamp_samples: int | None = None,
    cache_key: Hashable | None = None,
) -> Iterator[SegmentOutcome]:
    """Progress every carried residual over the segment's traces, lazily.

    Yields the running :class:`SegmentOutcome` (one mutating instance)
    after each progressed trace, and once more after enumeration ends
    with the truncation flags settled — so ``for outcome in ...: pass``
    leaves ``outcome`` equal to the drained result.  Traces are pulled
    from the enumerator one at a time; stopping early (truncation,
    saturation, or the consumer abandoning the generator) stops the
    enumeration itself.

    ``carried`` maps residual formulas (anchored at ``anchor``; None means
    "anchored at the first observation", i.e. the initial formula) to the
    number of trace classes that produced them.  ``boundary`` is the
    segment's upper time boundary, where the new residuals are anchored.

    ``saturate_final`` is only valid for the *last* segment: enumeration
    stops once the closed verdicts of the distinct residuals cover both
    True and False — the verdict set cannot grow further, mirroring the
    paper's "one SMT query per distinct verdict" loop.

    ``cache_key``, when given, shares the trace enumeration through the
    process-local :mod:`~repro.encoding.trace_cache` — the key must
    capture every argument that shapes the traces (events, epsilon,
    clamps, backend, limit, valuation context).
    """
    outcome = SegmentOutcome()
    closed_verdicts: set[bool] = set()
    # Interned carried residuals: progression memos key on intern ids,
    # and structurally equal residuals collapse to one entry up front.
    pairs: list[tuple[Formula, int]] = []
    merged: dict[Formula, int] = {}
    for residual, count in carried.items():
        canonical = intern_formula(residual)
        merged[canonical] = merged.get(canonical, 0) + count
    pairs = list(merged.items())

    def traces():
        return enumerate_traces(
            hb,
            epsilon,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            limit=max_traces,
            backend=backend,
            base_valuation=base_valuation,
            frontier_props=frontier_props,
            timestamp_samples=timestamp_samples,
        )

    trace_iter = traces() if cache_key is None else shared_traces(cache_key, traces)
    # One anchor-shift per distinct trace start time, not per (trace,
    # residual): traces of a segment share a handful of start times.
    shifted_by_shift: dict[int, list[tuple[Formula, int]]] = {}
    for trace in trace_iter:
        outcome.traces_enumerated += 1
        shift = 0 if anchor is None else trace.start_time - anchor
        shifted = shifted_by_shift.get(shift)
        if shifted is None:
            shifted = [
                (anchor_shift(residual, shift), count) for residual, count in pairs
            ]
            shifted_by_shift[shift] = shifted
        progressor = TraceProgressor(trace, max(boundary, trace.end_time))
        residuals = outcome.residuals
        for formula, count in shifted:
            progressed = progressor.progress(formula, 0)
            if saturate_final and progressed not in residuals:
                closed_verdicts.add(close(progressed))
            residuals[progressed] = residuals.get(progressed, 0) + count
        yield outcome
        if saturate_final and closed_verdicts >= {True, False}:
            outcome.saturated = True
            break
        if max_distinct is not None and len(outcome.residuals) >= max_distinct:
            outcome.truncated = True
            break
    if max_traces is not None and outcome.traces_enumerated >= max_traces:
        outcome.truncated = True
    yield outcome


def enumerate_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    **kwargs,
) -> SegmentOutcome:
    """Drain :func:`stream_segment_outcomes` and return the final outcome."""
    outcome = SegmentOutcome()
    for outcome in stream_segment_outcomes(
        hb, epsilon, carried, anchor, boundary, **kwargs
    ):
        pass
    return outcome
