"""Enumerating the distinct progression outcomes of one segment.

Each segment trace progresses the carried formula into a residual; the
*set of distinct residuals* (with trace-class counts) is the segment's
verdict information.  This mirrors the paper's repeated SMT invocations
with previous verdicts blocked (Section VI-A's "number of truth values
per segment" parameter, Fig 5e): ``max_distinct`` stops the enumeration
as soon as that many distinct outcomes exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.encoding.enumerator import enumerate_traces
from repro.encoding.trace_cache import shared_traces
from repro.mtl.ast import Formula
from repro.progression.progressor import anchor_shift, close, progress


@dataclass
class SegmentOutcome:
    """Distinct residual formulas after one segment, with class counts."""

    residuals: dict[Formula, int] = field(default_factory=dict)
    traces_enumerated: int = 0
    truncated: bool = False
    #: True when enumeration stopped because the *final verdict set* was
    #: already saturated ({True, False}) — lossless for the verdict set.
    saturated: bool = False

    def add(self, residual: Formula, count: int = 1) -> None:
        self.residuals[residual] = self.residuals.get(residual, 0) + count


def enumerate_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    max_traces: int | None = None,
    max_distinct: int | None = None,
    backend: str = "dfs",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
    saturate_final: bool = False,
    timestamp_samples: int | None = None,
    cache_key: Hashable | None = None,
) -> SegmentOutcome:
    """Progress every carried residual over every trace of the segment.

    ``carried`` maps residual formulas (anchored at ``anchor``; None means
    "anchored at the first observation", i.e. the initial formula) to the
    number of trace classes that produced them.  ``boundary`` is the
    segment's upper time boundary, where the new residuals are anchored.

    ``saturate_final`` is only valid for the *last* segment: enumeration
    stops once the closed verdicts of the distinct residuals cover both
    True and False — the verdict set cannot grow further, mirroring the
    paper's "one SMT query per distinct verdict" loop.

    ``cache_key``, when given, shares the trace enumeration through the
    process-local :mod:`~repro.encoding.trace_cache` — the key must
    capture every argument that shapes the traces (events, epsilon,
    clamps, backend, limit, valuation context).
    """
    outcome = SegmentOutcome()
    closed_verdicts: set[bool] = set()

    def traces():
        return enumerate_traces(
            hb,
            epsilon,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            limit=max_traces,
            backend=backend,
            base_valuation=base_valuation,
            frontier_props=frontier_props,
            timestamp_samples=timestamp_samples,
        )

    trace_iter = traces() if cache_key is None else shared_traces(cache_key, traces)
    for trace in trace_iter:
        outcome.traces_enumerated += 1
        shift = 0 if anchor is None else trace.start_time - anchor
        effective_boundary = max(boundary, trace.end_time)
        for residual, count in carried.items():
            shifted = anchor_shift(residual, shift)
            progressed = progress(trace, shifted, effective_boundary)
            if saturate_final and progressed not in outcome.residuals:
                closed_verdicts.add(close(progressed))
            outcome.add(progressed, count)
        if saturate_final and closed_verdicts >= {True, False}:
            outcome.saturated = True
            break
        if max_distinct is not None and len(outcome.residuals) >= max_distinct:
            outcome.truncated = True
            break
    if max_traces is not None and outcome.traces_enumerated >= max_traces:
        outcome.truncated = True
    return outcome
