"""Enumerating the distinct progression outcomes of one segment.

Each segment trace progresses the carried formula into a residual; the
*set of distinct residuals* (with trace-class counts) is the segment's
verdict information.  This mirrors the paper's repeated SMT invocations
with previous verdicts blocked (Section VI-A's "number of truth values
per segment" parameter, Fig 5e): ``max_distinct`` stops the enumeration
as soon as that many distinct outcomes exist.

The pipeline is *streaming*: :func:`stream_segment_outcomes` pulls one
trace at a time from the (lazy) enumerator and progresses every carried
residual over it before the next trace is produced, yielding the running
:class:`SegmentOutcome` after each trace.  Memory stays bounded by the
carried-residual set (plus the shared trace cache when enabled), early
truncation (``max_distinct``, verdict saturation) stops the underlying
enumeration mid-stream, and incremental consumers — the segment-parallel
orchestrator watching for the carried set to cross its shard threshold —
can act on partial outcomes without waiting for the segment to drain.
:func:`enumerate_segment_outcomes` is the drain-it-all wrapper.

Hot-path notes: the inner loop is *columnar* — carried residuals live as
``(arena id, count)`` pairs and every trace is progressed by one batch
pass of :class:`~repro.progression.columnar.ColumnarSegmentProgressor`
over the intern arena, touching no Formula objects at all.  Setting
``REPRO_COLUMNAR=0`` in the environment selects the legacy object path
(a :class:`~repro.progression.progressor.TraceProgressor` walk per
trace); the differential suite runs both and asserts bit-identical
residuals.  :class:`SegmentOutcome` stores ids internally and
materializes the ``residuals`` dict lazily at the API boundary.
"""

from __future__ import annotations

import os
import time
from typing import Hashable, Iterator, Mapping, Sequence

from repro.distributed.hb import HappenedBefore, HappenedBeforeView
from repro.encoding.enumerator import enumerate_traces, root_frontier
from repro.encoding.trace_cache import shared_traces
from repro.errors import CancelledError, PreemptedError
from repro.mtl.ast import Formula, formula_of, intern_formula
from repro.progression.budget import Budget
from repro.progression.columnar import (
    ColumnarSegmentProgressor,
    pack_carried_column,
    unpack_carried_column,
)
from repro.progression.progressor import TraceProgressor, anchor_shift, close_id

#: Default per-segment trace budget for the online/offline monitors.
#: Admissible-trace counts explode combinatorially with segment length
#: (every interleaving × every admissible timestamp assignment), so an
#: unbounded default can simply never finish (see ROADMAP's ``F[0,30) b``
#: blowup).  The budget is far above anything exhaustive verification
#: needs in practice; hitting it flags the result ``truncated`` instead
#: of hanging.  Pass ``max_traces_per_segment=None`` explicitly for
#: unbounded enumeration.
DEFAULT_TRACE_BUDGET = 20_000


def _columnar_enabled() -> bool:
    """True unless the environment opts out (``REPRO_COLUMNAR=0``)."""
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


class SegmentOutcome:
    """Distinct residual formulas after one segment, with class counts.

    Residuals are stored as intern-arena ids (the columnar kernel's
    native currency); the ``residuals`` dict of canonical
    :class:`~repro.mtl.ast.Formula` objects is materialized lazily and
    cached, so boundary consumers (shard split, snapshots, reports) see
    the same contract as before while the hot loop never boxes ids.
    """

    __slots__ = (
        "_id_counts",
        "_residuals_cache",
        "traces_enumerated",
        "truncated",
        "saturated",
        "preempted",
    )

    def __init__(
        self,
        residuals: Mapping[Formula, int] | None = None,
        traces_enumerated: int = 0,
        truncated: bool = False,
        saturated: bool = False,
        preempted: bool = False,
    ) -> None:
        self._id_counts: dict[int, int] = {}
        self._residuals_cache: dict[Formula, int] | None = None
        self.traces_enumerated = traces_enumerated
        self.truncated = truncated
        #: True when enumeration stopped because the *final verdict set*
        #: was already saturated ({True, False}) — lossless for the
        #: verdict set.
        self.saturated = saturated
        #: True when the execution budget preempted enumeration (cancel
        #: or deadline) — the counts are partial *and* the stop was not
        #: requested by the trace budget; distinct from ``truncated``.
        self.preempted = preempted
        if residuals:
            for residual, count in residuals.items():
                self.add(residual, count)

    @property
    def residuals(self) -> dict[Formula, int]:
        """The distinct residuals as canonical Formula objects."""
        cached = self._residuals_cache
        if cached is None:
            cached = {
                formula_of(fid): count for fid, count in self._id_counts.items()
            }
            self._residuals_cache = cached
        return cached

    @property
    def distinct(self) -> int:
        """Number of distinct residuals (no materialization)."""
        return len(self._id_counts)

    def id_counts(self) -> dict[int, int]:
        """The residual column itself: arena id -> trace-class count."""
        return self._id_counts

    def add(self, residual: Formula, count: int = 1) -> None:
        self.add_id(intern_formula(residual)._intern_id, count)

    def add_id(self, fid: int, count: int = 1) -> None:
        counts = self._id_counts
        counts[fid] = counts.get(fid, 0) + count
        self._residuals_cache = None

    def __reduce__(self):
        # Arena ids are process-local; a pickled outcome crosses the wire
        # as materialized formulas and re-interns on arrival.
        return (
            _restore_outcome,
            (
                dict(self.residuals),
                self.traces_enumerated,
                self.truncated,
                self.saturated,
                self.preempted,
            ),
        )


def _restore_outcome(
    residuals: dict,
    traces_enumerated: int,
    truncated: bool,
    saturated: bool,
    preempted: bool = False,
) -> SegmentOutcome:
    return SegmentOutcome(residuals, traces_enumerated, truncated, saturated, preempted)


def _carried_pairs(
    carried: Mapping[Formula, int] | Sequence[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Normalize a carried set to a merged ``(arena id, count)`` column.

    Accepts the classic formula mapping *or* an already-interned id
    column (the partitioned sub-task path, which ships the column on the
    wire and never materializes Formula objects).
    """
    merged: dict[int, int] = {}
    if isinstance(carried, Mapping):
        for residual, count in carried.items():
            fid = intern_formula(residual)._intern_id
            merged[fid] = merged.get(fid, 0) + count
    else:
        for fid, count in carried:
            merged[fid] = merged.get(fid, 0) + count
    return list(merged.items())


def stream_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int] | Sequence[tuple[int, int]],
    anchor: int | None,
    boundary: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    max_traces: int | None = None,
    max_distinct: int | None = None,
    backend: str = "dfs",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
    saturate_final: bool = False,
    timestamp_samples: int | None = None,
    cache_key: Hashable | None = None,
    budget: Budget | None = None,
    root_branches: Sequence[tuple[int, int]] | None = None,
) -> Iterator[SegmentOutcome]:
    """Progress every carried residual over the segment's traces, lazily.

    Yields the running :class:`SegmentOutcome` (one mutating instance)
    after each progressed trace, and once more after enumeration ends
    with the truncation flags settled — so ``for outcome in ...: pass``
    leaves ``outcome`` equal to the drained result.  Traces are pulled
    from the enumerator one at a time; stopping early (truncation,
    saturation, or the consumer abandoning the generator) stops the
    enumeration itself.

    ``carried`` maps residual formulas (anchored at ``anchor``; None means
    "anchored at the first observation", i.e. the initial formula) to the
    number of trace classes that produced them — or is an already-interned
    ``(arena id, count)`` column (the partitioned sub-task path).
    ``boundary`` is the segment's upper time boundary, where the new
    residuals are anchored.

    ``saturate_final`` is only valid for the *last* segment: enumeration
    stops once the closed verdicts of the distinct residuals cover both
    True and False — the verdict set cannot grow further, mirroring the
    paper's "one SMT query per distinct verdict" loop.

    ``cache_key``, when given, shares the trace enumeration through the
    process-local :mod:`~repro.encoding.trace_cache` — the key must
    capture every argument that shapes the traces (events, epsilon,
    clamps, backend, limit, valuation context).

    ``budget``, when given, is checkpointed throughout enumeration and
    progression; tripping it (cancel flag, deadline) stops the stream
    with ``outcome.preempted = True`` instead of propagating — the final
    yield still happens, with partial counts.  Its trace-limit facet
    supplies ``max_traces`` when the keyword is omitted.
    ``root_branches`` restricts the DFS to the given root choices (see
    :func:`~repro.encoding.enumerator.root_frontier`).
    """
    if budget is not None and max_traces is None:
        max_traces = budget.trace_limit()
    outcome = SegmentOutcome()
    closed_verdicts: set[bool] = set()
    # Interned carried residuals: structurally equal residuals collapse
    # to one (id, count) column entry up front.
    pairs = _carried_pairs(carried)

    def traces():
        return enumerate_traces(
            hb,
            epsilon,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            limit=max_traces,
            backend=backend,
            base_valuation=base_valuation,
            frontier_props=frontier_props,
            timestamp_samples=timestamp_samples,
            budget=budget,
            root_branches=root_branches,
        )

    trace_iter = traces() if cache_key is None else shared_traces(cache_key, traces)
    columnar = _columnar_enabled()
    kernel = ColumnarSegmentProgressor(pairs) if columnar else None
    # Legacy path: one anchor-shift per distinct trace start time, not
    # per (trace, residual) — traces share a handful of start times.
    shifted_by_shift: dict[int, list[tuple[Formula, int]]] = {}
    id_counts = outcome.id_counts()
    try:
        for trace in trace_iter:
            outcome.traces_enumerated += 1
            shift = 0 if anchor is None else trace.start_time - anchor
            if columnar:
                progressed_pairs = kernel.progress_trace(
                    trace, shift, max(boundary, trace.end_time), budget=budget
                )
                for fid, count in progressed_pairs:
                    if saturate_final and fid not in id_counts:
                        closed_verdicts.add(close_id(fid))
                    outcome.add_id(fid, count)
            else:
                shifted = shifted_by_shift.get(shift)
                if shifted is None:
                    shifted = [
                        (anchor_shift(formula_of(fid), shift), count)
                        for fid, count in pairs
                    ]
                    shifted_by_shift[shift] = shifted
                progressor = TraceProgressor(
                    trace, max(boundary, trace.end_time), budget=budget
                )
                for formula, count in shifted:
                    progressed = progressor.progress(formula, 0)
                    fid = progressed._intern_id
                    if saturate_final and fid not in id_counts:
                        closed_verdicts.add(close_id(fid))
                    outcome.add_id(fid, count)
            yield outcome
            if saturate_final and closed_verdicts >= {True, False}:
                outcome.saturated = True
                break
            if max_distinct is not None and outcome.distinct >= max_distinct:
                outcome.truncated = True
                break
    except PreemptedError:
        # Cooperative unwind: surface the partial outcome flagged
        # PREEMPTED instead of propagating — callers choose whether to
        # abort (OnlineMonitor rolls back) or report (SmtMonitor).
        outcome.preempted = True
    else:
        if max_traces is not None and outcome.traces_enumerated >= max_traces:
            outcome.truncated = True
    yield outcome


def enumerate_segment_outcomes(
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int],
    anchor: int | None,
    boundary: int,
    **kwargs,
) -> SegmentOutcome:
    """Drain :func:`stream_segment_outcomes` and return the final outcome."""
    outcome = SegmentOutcome()
    for outcome in stream_segment_outcomes(
        hb, epsilon, carried, anchor, boundary, **kwargs
    ):
        pass
    return outcome


def partition_branches(
    branches: Sequence[tuple[int, int]], parts: int
) -> list[list[tuple[int, int]]]:
    """Round-robin split of the root frontier into ``parts`` sub-tasks.

    Round-robin (not contiguous chunks) because `_diverse_first` front-
    loads the verdict-flipping timestamps: striping spreads the expensive
    early branches across workers instead of handing them all to part 0.
    """
    parts = max(1, min(parts, len(branches)))
    groups: list[list[tuple[int, int]]] = [[] for _ in range(parts)]
    for index, branch in enumerate(branches):
        groups[index % parts].append(branch)
    return groups


def partitioned_segment_outcomes(
    submit,
    parts: int,
    hb: HappenedBefore | HappenedBeforeView,
    epsilon: int,
    carried: Mapping[Formula, int] | Sequence[tuple[int, int]],
    anchor: int | None,
    boundary: int,
    clamp_lo: int | None = None,
    clamp_hi: int | None = None,
    max_traces: int | None = None,
    backend: str = "dfs",
    base_valuation: Mapping[str, float] | None = None,
    frontier_props: Mapping[str, frozenset[str]] | None = None,
    timestamp_samples: int | None = None,
    budget: Budget | None = None,
) -> SegmentOutcome:
    """Enumerate one segment with its root frontier fanned across workers.

    The DFS tree splits at the root: each ``(event, timestamp)`` first
    choice heads an independent subtree, so a partition of
    :func:`~repro.encoding.enumerator.root_frontier` enumerates disjoint
    trace sets whose union is exactly the serial walk.  Verdict multisets
    are order-independent, so summing the per-part ``(id, count)``
    columns reproduces the serial :class:`SegmentOutcome` bit-for-bit
    (when no part truncates).

    ``submit`` takes a :class:`~repro.service.tasks.SegmentPartTask` and
    returns a future with ``done()``/``result()``/``cancel()`` — the
    ``MonitorService.submit_segment_part`` surface.  The carried column
    crosses the wire in its packed form (see
    :func:`~repro.progression.columnar.pack_carried_column`): sliced, not
    materialized.  Falls back to the serial walk when the frontier or
    ``parts`` is too small to split, or the backend is not the DFS.

    Preemption propagates: tripping ``budget`` while waiting cancels
    every in-flight sub-task (the service drops pending parts and
    preempts running ones) and returns the merged partial outcome with
    ``preempted=True``; a worker-side preemption of any part flags the
    merged outcome the same way.
    """
    if budget is not None and max_traces is None:
        max_traces = budget.trace_limit()
    branches = (
        root_frontier(hb, epsilon, clamp_lo, clamp_hi, timestamp_samples)
        if backend == "dfs"
        else []
    )
    if parts < 2 or len(branches) < 2:
        return enumerate_segment_outcomes(
            hb,
            epsilon,
            carried,
            anchor,
            boundary,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            max_traces=max_traces,
            backend=backend,
            base_valuation=base_valuation,
            frontier_props=frontier_props,
            timestamp_samples=timestamp_samples,
            budget=budget,
        )

    from repro.service.tasks import SegmentPartTask  # cycle: tasks -> monitor -> here

    pairs = _carried_pairs(carried)
    column = pack_carried_column(pairs)
    events = list(hb.events)
    masks = [hb.predecessors_mask(i) for i in range(len(events))]
    futures = []
    for group in partition_branches(branches, parts):
        task = SegmentPartTask(
            events=events,
            predecessor_masks=masks,
            epsilon=epsilon,
            carried_column=column,
            anchor=anchor,
            boundary=boundary,
            clamp_lo=clamp_lo,
            clamp_hi=clamp_hi,
            max_traces=max_traces,
            base_valuation=dict(base_valuation) if base_valuation else None,
            frontier_props=dict(frontier_props) if frontier_props else None,
            timestamp_samples=timestamp_samples,
            branches=tuple(group),
        )
        futures.append(submit(task))

    outcome = SegmentOutcome()
    preempted = False
    try:
        pending = list(futures)
        while pending:
            still_waiting = []
            for future in pending:
                if not future.done():
                    still_waiting.append(future)
            if budget is not None:
                budget.checkpoint()
            if still_waiting:
                time.sleep(0.002)
            pending = still_waiting
    except PreemptedError:
        preempted = True
        for future in futures:
            future.cancel()  # drops pending parts, preempts running ones

    for future in futures:
        if not future.done():
            continue
        try:
            part_column, part_traces, part_truncated, part_preempted = future.result()
        except (PreemptedError, CancelledError):
            # A preempted part (or one dropped before execution after our
            # cancel) contributes nothing; the merged outcome is flagged.
            preempted = True
            continue
        for fid, count in unpack_carried_column(part_column):
            outcome.add_id(fid, count)
        outcome.traces_enumerated += part_traces
        outcome.truncated = outcome.truncated or part_truncated
        preempted = preempted or part_preempted
    outcome.preempted = preempted
    return outcome
