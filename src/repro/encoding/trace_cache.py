"""Per-process memoization of segment-trace enumeration.

Segment-parallel shards of one computation all resume from the same
segment boundary: every shard enumerates *exactly the same* admissible
traces per segment and differs only in the residual formulas it
progresses over them.  A worker process that handles several shards (or
repeated runs of the same computation — the benchmark/“re-monitor on new
spec” pattern) therefore re-enumerates identical trace sets.

This cache shares one lazy enumeration per *segment key* inside a
process.  Entries wrap the live generator: consumers replay the already
materialised prefix and only pull fresh traces from the underlying
enumerator when they run past it — so early-stopping consumers
(``max_distinct`` truncation, verdict saturation) never force a full
materialisation, and semantics match the uncached path trace-for-trace.

The cache is process-local by design: worker processes are the unit of
parallelism and fork/spawn gives each its own copy, so no locking is
needed (engines drive enumeration from a single thread per process).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator

from repro.mtl.trace import TimedTrace

#: Entries kept per process (LRU).  A segment's trace list can be large,
#: so the bound is deliberately small — shards touch few distinct segments.
MAX_ENTRIES = 32


class _CachedEnumeration:
    """One shared, lazily materialised trace enumeration."""

    __slots__ = ("traces", "source", "exhausted")

    def __init__(self, source: Iterator[TimedTrace]) -> None:
        self.traces: list[TimedTrace] = []
        self.source: Iterator[TimedTrace] | None = source
        self.exhausted = False

    def iterate(self) -> Iterator[TimedTrace]:
        index = 0
        while True:
            if index < len(self.traces):
                yield self.traces[index]
            elif self.exhausted:
                return
            else:
                try:
                    trace = next(self.source)
                except StopIteration:
                    self.exhausted = True
                    self.source = None
                    return
                self.traces.append(trace)
                yield trace
            index += 1


_cache: OrderedDict[Hashable, _CachedEnumeration] = OrderedDict()
_hits = 0
_misses = 0


def shared_traces(
    key: Hashable, factory: Callable[[], Iterator[TimedTrace]]
) -> Iterator[TimedTrace]:
    """Iterate the enumeration for ``key``, creating it via ``factory`` once.

    ``key`` must capture everything that determines the enumeration:
    segment events, epsilon, clamps, backend, budgets, carried valuation
    context (see ``SmtMonitor._segment_cache_key``).
    """
    global _hits, _misses
    entry = _cache.get(key)
    if entry is None:
        _misses += 1
        entry = _CachedEnumeration(factory())
        _cache[key] = entry
        while len(_cache) > MAX_ENTRIES:
            _cache.popitem(last=False)
    else:
        _hits += 1
        _cache.move_to_end(key)
    return entry.iterate()


def cache_stats() -> dict[str, int]:
    """Process-local ``{"hits", "misses", "entries"}`` counters."""
    return {"hits": _hits, "misses": _misses, "entries": len(_cache)}


def clear_cache() -> None:
    """Drop all entries and reset the counters (tests, memory pressure)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
