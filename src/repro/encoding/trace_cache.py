"""Per-process memoization of segment-trace enumeration.

Segment-parallel shards of one computation all resume from the same
segment boundary: every shard enumerates *exactly the same* admissible
traces per segment and differs only in the residual formulas it
progresses over them.  A worker process that handles several shards (or
repeated runs of the same computation — the benchmark/“re-monitor on new
spec” pattern) therefore re-enumerates identical trace sets.

This cache shares one lazy enumeration per *segment key* inside a
process.  Entries wrap the live generator: consumers replay the already
materialised prefix and only pull fresh traces from the underlying
enumerator when they run past it — so early-stopping consumers
(``max_distinct`` truncation, verdict saturation) never force a full
materialisation, and semantics match the uncached path trace-for-trace.

The cache is thread-local by design: an engine drives enumeration from
one thread, so giving each thread its own cache keeps the no-locking
property even where several engines share a process — the TCP
:class:`~repro.transport.agent.WorkerAgent` runs one executor thread
per accepted connection, and two connections monitoring the same
computation must not pull from one live generator concurrently
(``ValueError: generator already executing``).  Threads simply don't
share hits; worker processes remain the unit of parallelism.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Iterator

from repro.mtl.trace import TimedTrace

#: Entries kept per process (LRU).  A segment's trace list can be large,
#: so the bound is deliberately small — shards touch few distinct segments.
MAX_ENTRIES = 32


class _CachedEnumeration:
    """One shared, lazily materialised trace enumeration."""

    __slots__ = ("traces", "source", "exhausted")

    def __init__(self, source: Iterator[TimedTrace]) -> None:
        self.traces: list[TimedTrace] = []
        self.source: Iterator[TimedTrace] | None = source
        self.exhausted = False

    def iterate(self) -> Iterator[TimedTrace]:
        index = 0
        while True:
            if index < len(self.traces):
                yield self.traces[index]
            elif self.exhausted:
                return
            else:
                try:
                    trace = next(self.source)
                except StopIteration:
                    self.exhausted = True
                    self.source = None
                    return
                self.traces.append(trace)
                yield trace
            index += 1


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.cache: OrderedDict[Hashable, _CachedEnumeration] = OrderedDict()
        self.hits = 0
        self.misses = 0


_state = _ThreadState()


def shared_traces(
    key: Hashable, factory: Callable[[], Iterator[TimedTrace]]
) -> Iterator[TimedTrace]:
    """Iterate the enumeration for ``key``, creating it via ``factory`` once.

    ``key`` must capture everything that determines the enumeration:
    segment events, epsilon, clamps, backend, budgets, carried valuation
    context (see ``SmtMonitor._segment_cache_key``).
    """
    entry = _state.cache.get(key)
    if entry is None:
        _state.misses += 1
        entry = _CachedEnumeration(factory())
        _state.cache[key] = entry
        while len(_state.cache) > MAX_ENTRIES:
            _state.cache.popitem(last=False)
    else:
        _state.hits += 1
        _state.cache.move_to_end(key)
    return entry.iterate()


def cache_stats() -> dict[str, int]:
    """This thread's ``{"hits", "misses", "entries"}`` counters."""
    return {"hits": _state.hits, "misses": _state.misses, "entries": len(_state.cache)}


def clear_cache() -> None:
    """Drop this thread's entries and counters (tests, memory pressure)."""
    _state.cache.clear()
    _state.hits = 0
    _state.misses = 0
