"""The hedged three-party swap (paper Appendix IX-B.1).

A cyclic swap Alice -> Bob -> Carol -> Alice over three chains:

* ``ApricotSwap`` (apr): Alice escrows 100 apricot tokens for Bob;
* ``BananaSwap``  (ban): Bob escrows 100 banana tokens for Carol;
* ``CherrySwap``  (che): Carol escrows 100 cherry tokens for Alice.

Each contract takes two premiums: the *escrow premium* posted by the
escrower (3 tokens each) and the *redemption premium* posted by the
redeemer (3 on cherry / 2 on banana / 1 on apricot).  The 12 protocol
steps and their deadlines ``k * delta`` follow the appendix.

Event vocabulary (per contract): ``deposit_escrow_pr``,
``deposit_redemption_pr``, ``asset_escrowed``, ``hashlock_unlocked``,
``asset_redeemed``, ``escrow_premium_refunded``,
``redemption_premium_refunded``, ``asset_refunded``, ``premium_redeemed``,
``all_asset_settled``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.network import ChainNetwork
from repro.chain.token import Token
from repro.protocols.hashlock import make_hashlock, unlocks

ASSET_AMOUNT = 100
ESCROW_PREMIUM = 3
REDEMPTION_PREMIUMS = {"che": 3, "ban": 2, "apr": 1}
DEFAULT_DELTA_MS = 500


class Swap3Contract(Contract):
    """One edge of the three-party swap digraph."""

    def __init__(
        self,
        name: str,
        token: Token,
        escrower: str,
        redeemer: str,
        asset_amount: int,
        escrow_premium: int,
        redemption_premium: int,
        hashlock: str,
    ) -> None:
        super().__init__(name)
        self.token = token
        self.escrower = escrower
        self.redeemer = redeemer
        self.asset_amount = asset_amount
        self.escrow_premium = escrow_premium
        self.redemption_premium = redemption_premium
        self.hashlock = hashlock
        self.escrow_pr_deposited = False
        self.redemption_pr_deposited = False
        self.asset_escrowed = False
        self.asset_redeemed = False
        self.settled = False

    # -- steps -------------------------------------------------------------------

    def deposit_escrow_pr(self, party: str) -> None:
        """The escrower posts the escrow premium (first step on a chain)."""
        self.require(party == self.escrower, f"only {self.escrower} posts the escrow premium")
        self.require(not self.escrow_pr_deposited, "escrow premium already deposited")
        self.require(not self.settled, "contract already settled")
        deltas = self.transfer(self.token, party, self.address, self.escrow_premium)
        self.escrow_pr_deposited = True
        self.emit("deposit_escrow_pr", party, self.escrow_premium, deltas)

    def deposit_redemption_pr(self, party: str) -> None:
        """The redeemer posts the redemption premium (after the escrow premium)."""
        self.require(party == self.redeemer, f"only {self.redeemer} posts the redemption premium")
        self.require(self.escrow_pr_deposited, "escrow premium must come first")
        self.require(not self.redemption_pr_deposited, "redemption premium already deposited")
        self.require(not self.settled, "contract already settled")
        deltas = self.transfer(self.token, party, self.address, self.redemption_premium)
        self.redemption_pr_deposited = True
        self.emit("deposit_redemption_pr", party, self.redemption_premium, deltas)

    def escrow_asset(self, party: str) -> None:
        """The escrower locks the asset (requires both premiums)."""
        self.require(party == self.escrower, f"only {self.escrower} escrows")
        self.require(self.redemption_pr_deposited, "premiums must be deposited first")
        self.require(not self.asset_escrowed, "asset already escrowed")
        self.require(not self.settled, "contract already settled")
        deltas = self.transfer(self.token, party, self.address, self.asset_amount)
        self.asset_escrowed = True
        self.emit("asset_escrowed", party, self.asset_amount, deltas)

    def unlock(self, party: str, secret: str) -> None:
        """The redeemer reveals the preimage: asset + premium refunds flow."""
        self.require(party == self.redeemer, f"only {self.redeemer} unlocks")
        self.require(self.asset_escrowed, "nothing escrowed to redeem")
        self.require(not self.asset_redeemed, "asset already redeemed")
        self.require(not self.settled, "contract already settled")
        self.require(unlocks(secret, self.hashlock), "wrong secret")
        self.emit("hashlock_unlocked", party)
        deltas = self.transfer(self.token, self.address, party, self.asset_amount)
        self.asset_redeemed = True
        self.emit("asset_redeemed", party, self.asset_amount, deltas)
        refund = self.transfer(self.token, self.address, party, self.redemption_premium)
        self.emit("redemption_premium_refunded", party, self.redemption_premium, refund)
        refund = self.transfer(self.token, self.address, self.escrower, self.escrow_premium)
        self.emit("escrow_premium_refunded", self.escrower, self.escrow_premium, refund)

    def settle(self) -> None:
        """Timeout resolution mirroring the two-party rules.

        Escrowed-but-unredeemed assets return to the escrower, who also
        takes the redemption premium as compensation; outstanding premiums
        return to their depositors.
        """
        self.require(not self.settled, "already settled")
        self.settled = True
        if self.asset_escrowed and not self.asset_redeemed:
            refund = self.transfer(self.token, self.address, self.escrower, self.asset_amount)
            self.emit("asset_refunded", self.escrower, self.asset_amount, refund)
            refund = self.transfer(self.token, self.address, self.escrower, self.escrow_premium)
            self.emit("escrow_premium_refunded", self.escrower, self.escrow_premium, refund)
            if self.redemption_pr_deposited:
                compensation = self.transfer(
                    self.token, self.address, self.escrower, self.redemption_premium
                )
                self.emit(
                    "premium_redeemed", self.escrower, self.redemption_premium, compensation
                )
        else:
            if not self.asset_redeemed:
                if self.escrow_pr_deposited:
                    refund = self.transfer(
                        self.token, self.address, self.escrower, self.escrow_premium
                    )
                    self.emit(
                        "escrow_premium_refunded", self.escrower, self.escrow_premium, refund
                    )
                if self.redemption_pr_deposited:
                    refund = self.transfer(
                        self.token, self.address, self.redeemer, self.redemption_premium
                    )
                    self.emit(
                        "redemption_premium_refunded",
                        self.redeemer,
                        self.redemption_premium,
                        refund,
                    )
        self.emit("all_asset_settled", "any")


@dataclass
class Swap3Setup:
    """A deployed three-party swap across three chains."""

    network: ChainNetwork
    chains: dict[str, SimulatedChain]
    contracts: dict[str, Swap3Contract]
    secret: str
    delta_ms: int


#: (step, chain, method, party) with deadline ``step * delta``.
SWAP3_STEPS = (
    (1, "apr", "deposit_escrow_pr", "alice"),
    (2, "ban", "deposit_escrow_pr", "bob"),
    (3, "che", "deposit_escrow_pr", "carol"),
    (4, "che", "deposit_redemption_pr", "alice"),
    (5, "ban", "deposit_redemption_pr", "carol"),
    (6, "apr", "deposit_redemption_pr", "bob"),
    (7, "apr", "escrow_asset", "alice"),
    (8, "ban", "escrow_asset", "bob"),
    (9, "che", "escrow_asset", "carol"),
    (10, "che", "unlock", "alice"),
    (11, "ban", "unlock", "carol"),
    (12, "apr", "unlock", "bob"),
)


def deploy_swap3(
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    skews_ms: dict[str, int] | None = None,
    secret: str = "three-party-preimage",
) -> Swap3Setup:
    """Create apr/ban/che chains and deploy the three contracts."""
    skews = skews_ms or {}
    network = ChainNetwork(epsilon_ms)
    chains = {name: network.add_chain(name, skews.get(name, 0)) for name in ("apr", "ban", "che")}

    roles = {
        "apr": ("alice", "bob"),
        "ban": ("bob", "carol"),
        "che": ("carol", "alice"),
    }
    hashlock = make_hashlock(secret)
    contracts: dict[str, Swap3Contract] = {}
    for name, (escrower, redeemer) in roles.items():
        token = chains[name].register_token(Token(name.upper()))
        token.mint(escrower, ASSET_AMOUNT + ESCROW_PREMIUM)
        token.mint(redeemer, REDEMPTION_PREMIUMS[name])
        contract = Swap3Contract(
            f"{name.capitalize()}Swap",
            token,
            escrower=escrower,
            redeemer=redeemer,
            asset_amount=ASSET_AMOUNT,
            escrow_premium=ESCROW_PREMIUM,
            redemption_premium=REDEMPTION_PREMIUMS[name],
            hashlock=hashlock,
        )
        chains[name].deploy(contract)
        contracts[name] = contract
    for chain in chains.values():
        chain.record_marker(0, "start")
    return Swap3Setup(network, chains, contracts, secret, delta_ms)


def schedule_swap3(setup: Swap3Setup, attempted: list[int]) -> None:
    """Queue the 12 steps per a 12-entry attempted/skipped array.

    All attempted steps run in time (``k*delta - delta/2``); skipped
    steps simply never happen and later same-chain steps revert — this is
    the 2^12 = 4096 behaviour matrix of the paper's Section VI-B.2.
    """
    if len(attempted) != 12:
        raise ValueError(f"behaviour array must have 12 entries, got {len(attempted)}")
    delta = setup.delta_ms
    for step, chain_name, method, party in SWAP3_STEPS:
        if not attempted[step - 1]:
            continue
        at = step * delta - delta // 2
        contract = setup.contracts[chain_name]
        if method == "unlock":
            call = (lambda c=contract, p=party: c.unlock(p, setup.secret))
        else:
            call = (lambda c=contract, p=party, m=method: getattr(c, m)(p))
        setup.network.schedule(at, setup.chains[chain_name], call, f"step{step}:{method}({party})")
    for index, chain_name in enumerate(("che", "ban", "apr")):
        setup.network.schedule(
            12 * delta + 10 + index,
            setup.chains[chain_name],
            setup.contracts[chain_name].settle,
            f"settle({chain_name})",
        )


def run_swap3(
    attempted: list[int],
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    skews_ms: dict[str, int] | None = None,
) -> Swap3Setup:
    """Deploy, schedule, and execute one behaviour array."""
    setup = deploy_swap3(epsilon_ms=epsilon_ms, delta_ms=delta_ms, skews_ms=skews_ms)
    schedule_swap3(setup, attempted)
    setup.network.run()
    return setup
