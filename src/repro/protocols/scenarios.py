"""Scenario generators: the paper's behaviour matrices (Section VI-B.2).

The paper generated 1024, 4096, and 3888 different execution logs for the
two-party swap, three-party swap, and auction protocols respectively.
These generators reproduce those cardinalities exactly:

* **two-party (1024)** — per chain, the three in-order steps can be
  truncated at any point (4 options per chain), and each of the six
  steps carries an in-time/late flag: ``4 * 4 * 2^6 = 1024``.
* **three-party (4096)** — every one of the 12 steps is independently
  attempted or skipped (the contract rejects out-of-order attempts):
  ``2^12 = 4096``.
* **auction (3888)** — five ternary choices (both bids, both chains'
  declarations, which bidder challenges) and four binary flags
  (declaration late, challenge late, ticket escrowed, symmetric extra
  challenge): ``3^5 * 2^4 = 3888``.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.protocols.auction import AuctionBehavior

#: Per-chain truncation options for a 3-step in-order protocol.
_TRUNCATIONS = ((0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1))

#: Step index (1-based) -> position within its own chain's order.
#: Apricot hosts steps 2, 3, 6; Banana hosts steps 1, 4, 5.
_SWAP2_CHAIN_STEPS = {"apr": (2, 3, 6), "ban": (1, 4, 5)}


def swap2_behaviors() -> Iterator[list[int]]:
    """All 1024 two-party behaviour arrays (the paper's 12-entry encoding).

    Even index ``2*(k-1)`` — whether step ``k`` is attempted; odd index —
    whether it is attempted late.
    """
    for apr_steps, ban_steps in product(_TRUNCATIONS, repeat=2):
        attempted = [0] * 6
        for chain, steps in (("apr", apr_steps), ("ban", ban_steps)):
            for position, step in enumerate(_SWAP2_CHAIN_STEPS[chain]):
                attempted[step - 1] = steps[position]
        for lateness in product((0, 1), repeat=6):
            behavior = [0] * 12
            for k in range(6):
                behavior[2 * k] = attempted[k]
                behavior[2 * k + 1] = lateness[k]
            yield behavior


def swap2_behavior_count() -> int:
    """4 * 4 * 2^6 = 1024."""
    return len(_TRUNCATIONS) ** 2 * 2**6


def swap3_behaviors() -> Iterator[list[int]]:
    """All 4096 three-party attempted/skipped arrays (2^12)."""
    for bits in product((0, 1), repeat=12):
        yield list(bits)


def swap3_behavior_count() -> int:
    """2^12 = 4096."""
    return 2**12


_TERNARY_BIDS = ("skip", "ontime", "late")
_TERNARY_DECLS = ("skip", "sb", "sc")
_TERNARY_CHALLENGER = ("none", "bob", "carol")


def auction_behaviors() -> Iterator[AuctionBehavior]:
    """All 3888 auction behaviours (3^5 * 2^4)."""
    for bob_bid, carol_bid, coin_decl, tckt_decl, challenger in product(
        _TERNARY_BIDS, _TERNARY_BIDS, _TERNARY_DECLS, _TERNARY_DECLS, _TERNARY_CHALLENGER
    ):
        for decl_late, chal_late, escrow, extra in product((False, True), repeat=4):
            bob_challenges = challenger == "bob" or (extra and challenger == "carol")
            carol_challenges = challenger == "carol" or (extra and challenger == "bob")
            yield AuctionBehavior(
                bob_bid=bob_bid,
                carol_bid=carol_bid,
                coin_declaration=coin_decl,
                tckt_declaration=tckt_decl,
                declaration_late=decl_late,
                challenge_late=chal_late,
                bob_challenges=bob_challenges,
                carol_challenges=carol_challenges,
                alice_escrows_ticket=escrow,
            )


def auction_behavior_count() -> int:
    """3^5 * 2^4 = 3888."""
    return 3**5 * 2**4


#: The all-conforming behaviours — handy anchors for tests and examples.
SWAP2_CONFORMING = [1, 0] * 6
SWAP3_CONFORMING = [1] * 12
AUCTION_CONFORMING = AuctionBehavior()
