"""Cross-chain protocols from Xue & Herlihy: swaps and the auction."""

from repro.protocols.auction import (
    AuctionBehavior,
    AuctionSetup,
    CoinAuction,
    TicketAuction,
    deploy_auction,
    run_auction,
    schedule_auction,
)
from repro.protocols.hashlock import make_hashlock, unlocks
from repro.protocols.scenarios import (
    AUCTION_CONFORMING,
    SWAP2_CONFORMING,
    SWAP3_CONFORMING,
    auction_behavior_count,
    auction_behaviors,
    swap2_behavior_count,
    swap2_behaviors,
    swap3_behavior_count,
    swap3_behaviors,
)
from repro.protocols.swap2 import (
    HedgedSwapContract,
    Swap2Setup,
    deploy_swap2,
    run_swap2,
    schedule_swap2,
)
from repro.protocols.swap3 import (
    Swap3Contract,
    Swap3Setup,
    deploy_swap3,
    run_swap3,
    schedule_swap3,
)

__all__ = [
    "AUCTION_CONFORMING",
    "AuctionBehavior",
    "AuctionSetup",
    "CoinAuction",
    "HedgedSwapContract",
    "SWAP2_CONFORMING",
    "SWAP3_CONFORMING",
    "Swap2Setup",
    "Swap3Contract",
    "Swap3Setup",
    "TicketAuction",
    "auction_behavior_count",
    "auction_behaviors",
    "deploy_auction",
    "deploy_swap2",
    "deploy_swap3",
    "make_hashlock",
    "run_auction",
    "run_swap2",
    "run_swap3",
    "schedule_auction",
    "schedule_swap2",
    "schedule_swap3",
    "swap2_behavior_count",
    "swap2_behaviors",
    "swap3_behavior_count",
    "swap3_behaviors",
    "unlocks",
]
