"""The hedged two-party swap protocol (paper Section VI-B, Fig 1).

Alice exchanges 100 apricot tokens for Bob's 100 banana tokens.  Each
chain hosts one :class:`HedgedSwapContract`:

* ``ApricotSwap`` — Alice escrows her asset, Bob redeems it with the
  secret; Bob posts premium ``pb`` (1 token) that compensates Alice if
  her escrowed asset ends up refunded (the sore-loser hedge).
* ``BananaSwap`` — mirror image: Bob escrows, Alice redeems, Alice posts
  premium ``pa + pb`` (2 tokens).

Protocol steps and deadlines (relative to ``start_time``, step ``k`` due
before ``k * delta``):

1. Alice deposits premium on Banana;   2. Bob deposits premium on Apricot;
3. Alice escrows on Apricot;           4. Bob escrows on Banana;
5. Alice redeems on Banana;            6. Bob redeems on Apricot;
then both contracts settle leftovers.

The contract enforces per-chain step order (premium -> escrow -> redeem);
cross-chain order is the monitor's job, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.network import ChainNetwork
from repro.chain.token import Token
from repro.protocols.hashlock import make_hashlock, unlocks

#: Default protocol parameters (the paper's experimental values).
ASSET_AMOUNT = 100
PREMIUM_APRICOT = 1   # pb, posted by Bob on the apricot chain
PREMIUM_BANANA = 2    # pa + pb, posted by Alice on the banana chain
DEFAULT_DELTA_MS = 500


class HedgedSwapContract(Contract):
    """One side of the hedged swap: escrow + hashlock + premium logic."""

    def __init__(
        self,
        name: str,
        token: Token,
        escrower: str,
        redeemer: str,
        asset_amount: int,
        premium_amount: int,
        hashlock: str,
    ) -> None:
        super().__init__(name)
        self.token = token
        self.escrower = escrower
        self.redeemer = redeemer
        self.asset_amount = asset_amount
        self.premium_amount = premium_amount
        self.hashlock = hashlock
        self.premium_deposited = False
        self.asset_escrowed = False
        self.asset_redeemed = False
        self.settled = False

    # -- protocol steps ---------------------------------------------------------

    def deposit_premium(self, party: str) -> None:
        """Step: the redeemer posts the premium."""
        self.require(party == self.redeemer, f"only {self.redeemer} posts the premium")
        self.require(not self.premium_deposited, "premium already deposited")
        self.require(not self.settled, "contract already settled")
        deltas = self.transfer(self.token, party, self.address, self.premium_amount)
        self.premium_deposited = True
        self.emit("premium_deposited", party, self.premium_amount, deltas)

    def escrow_asset(self, party: str) -> None:
        """Step: the escrower locks the asset (requires the premium)."""
        self.require(party == self.escrower, f"only {self.escrower} escrows")
        self.require(self.premium_deposited, "premium must be deposited first")
        self.require(not self.asset_escrowed, "asset already escrowed")
        self.require(not self.settled, "contract already settled")
        deltas = self.transfer(self.token, party, self.address, self.asset_amount)
        self.asset_escrowed = True
        self.emit("asset_escrowed", party, self.asset_amount, deltas)

    def redeem_asset(self, party: str, secret: str) -> None:
        """Step: the redeemer claims the asset with the hash preimage.

        The redeemer's premium is refunded on successful redemption.
        """
        self.require(party == self.redeemer, f"only {self.redeemer} redeems")
        self.require(self.asset_escrowed, "nothing escrowed to redeem")
        self.require(not self.asset_redeemed, "asset already redeemed")
        self.require(not self.settled, "contract already settled")
        self.require(unlocks(secret, self.hashlock), "wrong secret")
        deltas = self.transfer(self.token, self.address, party, self.asset_amount)
        self.asset_redeemed = True
        self.emit("asset_redeemed", party, self.asset_amount, deltas)
        refund = self.transfer(self.token, self.address, party, self.premium_amount)
        self.emit("premium_refunded", party, self.premium_amount, refund)

    def settle(self) -> None:
        """Timeout resolution: refund leftovers and pay compensation.

        * escrowed but never redeemed — the asset returns to the escrower
          who also *takes the premium* (the hedge);
        * premium posted but no escrow happened — premium returns to the
          redeemer.
        Always emits ``all_asset_settled``.
        """
        self.require(not self.settled, "already settled")
        self.settled = True
        if self.asset_escrowed and not self.asset_redeemed:
            refund = self.transfer(self.token, self.address, self.escrower, self.asset_amount)
            self.emit("asset_refunded", self.escrower, self.asset_amount, refund)
            if self.premium_deposited:
                compensation = self.transfer(
                    self.token, self.address, self.escrower, self.premium_amount
                )
                self.emit(
                    "premium_redeemed", self.escrower, self.premium_amount, compensation
                )
        elif self.premium_deposited and not self.asset_escrowed:
            refund = self.transfer(self.token, self.address, self.redeemer, self.premium_amount)
            self.emit("premium_refunded", self.redeemer, self.premium_amount, refund)
        self.emit("all_asset_settled", "any")


@dataclass
class Swap2Setup:
    """A deployed two-party swap: chains, contracts, secret."""

    network: ChainNetwork
    apricot: SimulatedChain
    banana: SimulatedChain
    apricot_swap: HedgedSwapContract
    banana_swap: HedgedSwapContract
    secret: str
    delta_ms: int


def deploy_swap2(
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    apricot_skew_ms: int = 0,
    banana_skew_ms: int = 0,
    secret: str = "alices-preimage",
) -> Swap2Setup:
    """Create the two mocked chains and deploy both swap contracts.

    Alice starts with 100 apricot tokens (plus premium funds on banana);
    Bob with 100 banana tokens (plus premium funds on apricot).
    """
    network = ChainNetwork(epsilon_ms)
    apricot = network.add_chain("apr", skew_ms=apricot_skew_ms)
    banana = network.add_chain("ban", skew_ms=banana_skew_ms)

    apricot_token = apricot.register_token(Token("APR"))
    banana_token = banana.register_token(Token("BAN"))
    apricot_token.mint("alice", ASSET_AMOUNT)
    apricot_token.mint("bob", PREMIUM_APRICOT)
    banana_token.mint("bob", ASSET_AMOUNT)
    banana_token.mint("alice", PREMIUM_BANANA)

    hashlock = make_hashlock(secret)
    apricot_swap = HedgedSwapContract(
        "ApricotSwap",
        apricot_token,
        escrower="alice",
        redeemer="bob",
        asset_amount=ASSET_AMOUNT,
        premium_amount=PREMIUM_APRICOT,
        hashlock=hashlock,
    )
    banana_swap = HedgedSwapContract(
        "BananaSwap",
        banana_token,
        escrower="bob",
        redeemer="alice",
        asset_amount=ASSET_AMOUNT,
        premium_amount=PREMIUM_BANANA,
        hashlock=hashlock,
    )
    apricot.deploy(apricot_swap)
    banana.deploy(banana_swap)
    # The agreed startTime: every spec window is anchored at the first
    # observation, so both chains log the protocol start at t=0.
    apricot.record_marker(0, "start")
    banana.record_marker(0, "start")
    return Swap2Setup(network, apricot, banana, apricot_swap, banana_swap, secret, delta_ms)


#: The six steps: (index, chain attr, method, party, deadline multiplier).
SWAP2_STEPS = (
    (1, "banana", "deposit_premium", "alice"),
    (2, "apricot", "deposit_premium", "bob"),
    (3, "apricot", "escrow_asset", "alice"),
    (4, "banana", "escrow_asset", "bob"),
    (5, "banana", "redeem_asset", "alice"),
    (6, "apricot", "redeem_asset", "bob"),
)


def schedule_swap2(setup: Swap2Setup, behavior: list[int]) -> None:
    """Queue the protocol's transactions per a 12-entry behaviour array.

    The paper's encoding: even indices say whether step ``k`` is
    attempted, odd indices whether it is attempted *late* (after its
    deadline ``k * delta``).  In-time calls run at ``k*delta - delta/2``,
    late calls at ``k*delta + delta/4``.  Both settles run after the last
    deadline (banana first: its protocol activity ends at ``5*delta``).
    """
    if len(behavior) != 12:
        raise ValueError(f"behaviour array must have 12 entries, got {len(behavior)}")
    delta = setup.delta_ms
    for step, chain_attr, method, party in SWAP2_STEPS:
        attempted = behavior[2 * (step - 1)]
        late = behavior[2 * (step - 1) + 1]
        if not attempted:
            continue
        deadline = step * delta
        at = deadline + delta // 4 if late else deadline - delta // 2
        chain = getattr(setup, chain_attr)
        contract = setup.apricot_swap if chain_attr == "apricot" else setup.banana_swap
        if method == "redeem_asset":
            call = (lambda c=contract, p=party: c.redeem_asset(p, setup.secret))
        else:
            call = (lambda c=contract, p=party, m=method: getattr(c, m)(p))
        setup.network.schedule(at, chain, call, f"step{step}:{method}({party})")
    setup.network.schedule(
        5 * delta + delta // 50 + 1,
        setup.banana,
        setup.banana_swap.settle,
        "settle(ban)",
    )
    setup.network.schedule(
        6 * delta + delta // 50 + 1,
        setup.apricot,
        setup.apricot_swap.settle,
        "settle(apr)",
    )


def run_swap2(
    behavior: list[int],
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    apricot_skew_ms: int = 0,
    banana_skew_ms: int = 0,
) -> Swap2Setup:
    """Deploy, schedule, and execute one behaviour; returns the setup
    (chain logs are in ``setup.apricot.log`` / ``setup.banana.log``)."""
    setup = deploy_swap2(
        epsilon_ms=epsilon_ms,
        delta_ms=delta_ms,
        apricot_skew_ms=apricot_skew_ms,
        banana_skew_ms=banana_skew_ms,
    )
    schedule_swap2(setup, behavior)
    setup.network.run()
    return setup
