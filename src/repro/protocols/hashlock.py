"""Hashed-timelock utilities shared by the cross-chain protocols."""

from __future__ import annotations

import hashlib


def make_hashlock(secret: str) -> str:
    """``h = H(s)`` — the hashlock for a preimage secret."""
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()


def unlocks(secret: str, hashlock: str) -> bool:
    """True when ``H(secret) == hashlock``."""
    return make_hashlock(secret) == hashlock
