"""The cross-chain auction protocol (paper Appendix IX-B.2).

Alice auctions a ticket (worth 100 tokens) on the ``tckt`` chain; Bob and
Carol bid on the ``coin`` chain.  Alice assigns hashlocks ``h(sb)`` to Bob
and ``h(sc)`` to Carol; releasing a bidder's secret declares that bidder
the winner.  Releasing *both* secrets (cheating) refunds everything, and
bidders can *challenge* by forwarding a secret they observed on the other
chain.

Steps (deadlines relative to ``start_time``):

1. bidding before ``delta``;
2. declaration before ``2 * delta`` (Alice sends the winner's secret to
   both chains);
3. challenges before ``4 * delta``;
4. settlement after ``4 * delta``.

Event vocabulary: ``bid``, ``declaration``, ``challenge``,
``redeem_bid``, ``refund_bid``, ``redeem_premium``, ``refund_premium``,
``redeem_ticket``, ``refund_ticket``, ``escrow_ticket``,
``deposit_premium``.  Declarations/challenges carry a two-part party
field such as ``alice,sb`` to match the paper's
``coin.declaration(alice, sb)`` atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.network import ChainNetwork
from repro.chain.token import Token
from repro.errors import ProtocolError
from repro.protocols.hashlock import make_hashlock, unlocks

TICKET_VALUE = 100
PREMIUM = 2
DEFAULT_DELTA_MS = 500
BIDS = {"bob": 100, "carol": 90}  # bob outbids carol in every scenario


class _AuctionBase(Contract):
    """Shared hashlock bookkeeping for both auction contracts."""

    def __init__(self, name: str, hashlocks: dict[str, str]) -> None:
        super().__init__(name)
        self.hashlocks = dict(hashlocks)  # bidder -> hashlock
        self.released: dict[str, str] = {}  # secret tag ("sb"/"sc") -> secret
        self.settled = False

    def _secret_tag(self, secret: str) -> str:
        for bidder, hashlock in self.hashlocks.items():
            if unlocks(secret, hashlock):
                return "sb" if bidder == "bob" else "sc"
        raise ProtocolError("secret matches no hashlock")

    def _record_release(self, secret: str) -> str:
        tag = self._secret_tag(secret)
        self.released[tag] = secret
        return tag

    def winner_from_releases(self) -> str | None:
        """The unique bidder whose secret was released, if exactly one."""
        if len(self.released) != 1:
            return None
        tag = next(iter(self.released))
        return "bob" if tag == "sb" else "carol"

    def declare(self, party: str, secret: str) -> None:
        """Alice releases a secret to declare a winner."""
        self.require(party == "alice", "only the auctioneer declares")
        self.require(not self.settled, "contract already settled")
        tag = self._record_release(secret)
        self.emit("declaration", f"{party},{tag}")

    def challenge(self, party: str, secret: str) -> None:
        """A bidder forwards a secret observed on the other chain."""
        self.require(party in self.hashlocks, "only bidders challenge")
        self.require(not self.settled, "contract already settled")
        tag = self._record_release(secret)
        self.emit("challenge", f"{party},{tag}")


class CoinAuction(_AuctionBase):
    """Manages bids and Alice's premium on the coin chain."""

    def __init__(self, token: Token, hashlocks: dict[str, str]) -> None:
        super().__init__("CoinAuction", hashlocks)
        self.token = token
        self.bids: dict[str, int] = {}
        self.premium_deposited = False

    def deposit_premium(self, party: str) -> None:
        self.require(party == "alice", "only the auctioneer posts the premium")
        self.require(not self.premium_deposited, "premium already deposited")
        deltas = self.transfer(self.token, party, self.address, PREMIUM)
        self.premium_deposited = True
        self.emit("deposit_premium", party, PREMIUM, deltas)

    def bid(self, party: str) -> None:
        self.require(party in self.hashlocks, f"unknown bidder {party}")
        self.require(party not in self.bids, "already bid")
        self.require(not self.settled, "contract already settled")
        amount = BIDS[party]
        deltas = self.transfer(self.token, party, self.address, amount)
        self.bids[party] = amount
        self.emit("bid", party, amount, deltas)

    def settle(self) -> None:
        """Post-challenge resolution on the coin chain.

        If exactly the winner's hashlock is unlocked, the winner's bid
        goes to Alice and her premium returns; otherwise the winner is
        refunded and every bidder receives half the premium as
        compensation.  The loser's bid is always refunded.
        """
        self.require(not self.settled, "already settled")
        self.settled = True
        winner = self.winner_from_releases()
        highest = max(self.bids, key=lambda p: self.bids[p], default=None)
        for party, amount in self.bids.items():
            if winner is not None and party == winner == highest:
                deltas = self.transfer(self.token, self.address, "alice", amount)
                self.emit("redeem_bid", "any", amount, deltas)
            else:
                deltas = self.transfer(self.token, self.address, party, amount)
                self.emit("refund_bid", "any", amount, deltas)
        if self.premium_deposited:
            if winner is not None and winner == highest and highest is not None:
                deltas = self.transfer(self.token, self.address, "alice", PREMIUM)
                self.emit("refund_premium", "any", PREMIUM, deltas)
            else:
                share = PREMIUM // 2
                for party in self.bids or ["bob"]:
                    deltas = self.transfer(self.token, self.address, party, share)
                    self.emit("redeem_premium", "any", share, deltas)
                leftover = PREMIUM - share * len(self.bids or ["bob"])
                if leftover > 0:
                    self.transfer(self.token, self.address, "alice", leftover)
        self.emit("all_asset_settled", "any")


class TicketAuction(_AuctionBase):
    """Manages the escrowed ticket on the ticket chain."""

    def __init__(self, token: Token, hashlocks: dict[str, str]) -> None:
        super().__init__("TicketAuction", hashlocks)
        self.token = token
        self.ticket_escrowed = False

    def escrow_ticket(self, party: str) -> None:
        self.require(party == "alice", "only the auctioneer escrows the ticket")
        self.require(not self.ticket_escrowed, "ticket already escrowed")
        deltas = self.transfer(self.token, party, self.address, TICKET_VALUE)
        self.ticket_escrowed = True
        self.emit("escrow_ticket", party, TICKET_VALUE, deltas)

    def settle(self) -> None:
        """If exactly one secret is released, the ticket goes to the
        corresponding bidder; otherwise it returns to Alice."""
        self.require(not self.settled, "already settled")
        self.settled = True
        if self.ticket_escrowed:
            winner = self.winner_from_releases()
            if winner is not None:
                deltas = self.transfer(self.token, self.address, winner, TICKET_VALUE)
                self.emit("redeem_ticket", "any", TICKET_VALUE, deltas)
            else:
                deltas = self.transfer(self.token, self.address, "alice", TICKET_VALUE)
                self.emit("refund_ticket", "alice", TICKET_VALUE, deltas)
        self.emit("all_asset_settled", "any")


@dataclass
class AuctionSetup:
    """A deployed auction across the coin and ticket chains."""

    network: ChainNetwork
    coin: SimulatedChain
    tckt: SimulatedChain
    coin_auction: CoinAuction
    ticket_auction: TicketAuction
    secrets: dict[str, str]  # tag -> secret ("sb" -> ..., "sc" -> ...)
    delta_ms: int


def deploy_auction(
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    coin_skew_ms: int = 0,
    tckt_skew_ms: int = 0,
) -> AuctionSetup:
    """Create the coin/tckt chains and deploy both auction contracts."""
    network = ChainNetwork(epsilon_ms)
    coin = network.add_chain("coin", skew_ms=coin_skew_ms)
    tckt = network.add_chain("tckt", skew_ms=tckt_skew_ms)

    coin_token = coin.register_token(Token("COIN"))
    tckt_token = tckt.register_token(Token("TCKT"))
    coin_token.mint("bob", BIDS["bob"])
    coin_token.mint("carol", BIDS["carol"])
    coin_token.mint("alice", PREMIUM)
    tckt_token.mint("alice", TICKET_VALUE)

    secrets = {"sb": "secret-for-bob", "sc": "secret-for-carol"}
    hashlocks = {"bob": make_hashlock(secrets["sb"]), "carol": make_hashlock(secrets["sc"])}
    coin_auction = CoinAuction(coin_token, hashlocks)
    ticket_auction = TicketAuction(tckt_token, hashlocks)
    coin.deploy(coin_auction)
    tckt.deploy(ticket_auction)
    coin.record_marker(0, "start")
    tckt.record_marker(0, "start")
    return AuctionSetup(network, coin, tckt, coin_auction, ticket_auction, secrets, delta_ms)


def schedule_auction(setup: AuctionSetup, behavior: "AuctionBehavior") -> None:
    """Queue one auction scenario's transactions."""
    delta = setup.delta_ms
    network = setup.network

    # Setup phase: Alice escrows the ticket and posts the premium.
    if behavior.alice_escrows_ticket:
        network.schedule(
            delta // 10, setup.tckt, lambda: setup.ticket_auction.escrow_ticket("alice"),
            "setup:escrow_ticket",
        )
    network.schedule(
        delta // 10, setup.coin, lambda: setup.coin_auction.deposit_premium("alice"),
        "setup:deposit_premium",
    )

    # Step 1: bids (deadline delta).
    for party, choice in (("bob", behavior.bob_bid), ("carol", behavior.carol_bid)):
        if choice == "skip":
            continue
        at = delta - delta // 2 if choice == "ontime" else delta + delta // 4
        network.schedule(
            at, setup.coin, (lambda p=party: setup.coin_auction.bid(p)), f"bid({party})"
        )

    # Step 2: declarations (deadline 2*delta).
    timing = {"ontime": 2 * delta - delta // 2, "late": 2 * delta + delta // 4}
    for chain, contract, choice in (
        (setup.coin, setup.coin_auction, behavior.coin_declaration),
        (setup.tckt, setup.ticket_auction, behavior.tckt_declaration),
    ):
        if choice == "skip":
            continue
        secret = setup.secrets[choice]
        at = timing["late"] if behavior.declaration_late else timing["ontime"]
        network.schedule(
            at, chain, (lambda c=contract, s=secret: c.declare("alice", s)),
            f"declare({choice})",
        )

    # Step 3: challenges (deadline 4*delta).  A challenging bidder forwards
    # the secret released on the *other* chain, if any.
    challenge_at = 4 * delta + delta // 4 if behavior.challenge_late else 4 * delta - delta // 2
    if behavior.bob_challenges and behavior.tckt_declaration != "skip":
        secret = setup.secrets[behavior.tckt_declaration]
        network.schedule(
            challenge_at,
            setup.coin,
            (lambda s=secret: setup.coin_auction.challenge("bob", s)),
            "challenge(bob->coin)",
        )
    if behavior.carol_challenges and behavior.coin_declaration != "skip":
        secret = setup.secrets[behavior.coin_declaration]
        network.schedule(
            challenge_at,
            setup.tckt,
            (lambda s=secret: setup.ticket_auction.challenge("carol", s)),
            "challenge(carol->tckt)",
        )

    # Step 4: settlement (after 4*delta).
    network.schedule(4 * delta + delta // 2, setup.coin, setup.coin_auction.settle, "settle(coin)")
    network.schedule(4 * delta + delta // 2 + 1, setup.tckt, setup.ticket_auction.settle, "settle(tckt)")


@dataclass(frozen=True)
class AuctionBehavior:
    """One point of the auction behaviour matrix (3^5 * 2^4 = 3888).

    Ternary choices: each bid in {skip, ontime, late}; each chain's
    declaration in {skip, sb, sc}; plus the shared declaration timing
    modelled as its own ternary through ``declaration_late`` combined
    with ``coin_declaration``'s choices — see
    :func:`repro.protocols.scenarios.auction_behaviors`.
    """

    bob_bid: str = "ontime"            # skip | ontime | late
    carol_bid: str = "ontime"          # skip | ontime | late
    coin_declaration: str = "sb"       # skip | sb | sc
    tckt_declaration: str = "sb"       # skip | sb | sc
    declaration_late: bool = False
    challenge_late: bool = False
    bob_challenges: bool = False
    carol_challenges: bool = False
    alice_escrows_ticket: bool = True


def run_auction(
    behavior: AuctionBehavior,
    epsilon_ms: int = 1,
    delta_ms: int = DEFAULT_DELTA_MS,
    coin_skew_ms: int = 0,
    tckt_skew_ms: int = 0,
) -> AuctionSetup:
    """Deploy, schedule, and execute one auction behaviour."""
    setup = deploy_auction(
        epsilon_ms=epsilon_ms,
        delta_ms=delta_ms,
        coin_skew_ms=coin_skew_ms,
        tckt_skew_ms=tckt_skew_ms,
    )
    schedule_auction(setup, behavior)
    setup.network.run()
    return setup
