"""Client for the cluster registry: register, watch, and react.

Used by two very different callers with one small class:

* a **worker agent** registers its advertised address on start and
  leaves gracefully on SIGTERM — the connection it keeps open *is* its
  lease, so no renewal loop is needed;
* a **monitor service** watches membership and turns the pushed events
  into pool changes (grow on ``join``, drain on ``leave``, and let its
  own connection liveness catch what a ``death`` event describes).

This is deliberately *not* a :class:`~repro.transport.tcp.TcpConnection`:
that class books every non-heartbeat response against an outstanding
request counter, which unsolicited pushed events would corrupt.  The
registry dialect needs the opposite split — a tiny request/response
surface plus an event firehose — so the client here keeps its own
reader thread (events → callback, responses → waiting calls by id) and
a heartbeat thread that both keeps the server's lease reaper fed and
detects a dead registry.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable

from repro.errors import ServiceError
from repro.retry import REGISTRY_CALL_POLICY, RetryPolicy
from repro.transport.auth import client_handshake, resolve_token
from repro.transport.frames import (
    DEFAULT_CODEC,
    HEARTBEAT_ID,
    REGISTRY_EVENT_ID,
    Codec,
    Request,
    Response,
    read_frame,
    write_frame,
)
from repro.transport.tcp import HEARTBEAT_INTERVAL, LIVENESS_TIMEOUT, parse_address

from repro.cluster.registry import LEAVE_OP, MEMBERS_OP, REGISTER_OP, WATCH_OP

#: Membership event callback: receives the pushed event payload dict
#: (``{"event": "join"|"leave"|"death", "address": ..., "kind": ...}``),
#: invoked from the client's reader thread.
OnEvent = Callable[[dict], None]

#: Registry-loss callback: fired at most once, from a client thread.
OnLost = Callable[[], None]

#: Bound on one registry round trip (register/leave/members/watch) —
#: the per-attempt timeout of the shared registry call policy
#: (:data:`repro.retry.REGISTRY_CALL_POLICY`), kept as a name because
#: callers and tests reference it.
CALL_TIMEOUT = REGISTRY_CALL_POLICY.timeout


class RegistryClient:
    """One authenticated connection to a :class:`~repro.cluster.registry.ClusterRegistry`."""

    def __init__(
        self,
        endpoint: str,
        sock: socket.socket,
        codec: Codec = DEFAULT_CODEC,
        on_event: OnEvent | None = None,
        on_lost: OnLost | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        liveness_timeout: float = LIVENESS_TIMEOUT,
        call_policy: RetryPolicy = REGISTRY_CALL_POLICY,
    ) -> None:
        self._endpoint = endpoint
        self._sock = sock
        self._codec = codec
        self._on_event = on_event
        self._on_lost = on_lost
        self._heartbeat_interval = heartbeat_interval
        self._liveness_timeout = liveness_timeout
        self._call_policy = call_policy
        self._write_lock = threading.Lock()
        self._calls_lock = threading.Lock()
        self._calls: dict[int, _PendingCall] = {}
        self._next_id = 0
        self._closed = False
        self._lost = False
        self._lost_fired = False
        self._lost_lock = threading.Lock()
        self._last_rx = time.monotonic()
        self._stop = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"registry-client-{endpoint}", daemon=True
        )
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"registry-client-{endpoint}-hb",
            daemon=True,
        )
        self._reader.start()
        self._heartbeat.start()

    @classmethod
    def connect(
        cls,
        spec: str,
        token: str | None = None,
        codec: Codec = DEFAULT_CODEC,
        on_event: OnEvent | None = None,
        on_lost: OnLost | None = None,
        connect_timeout: float = 5.0,
        **kwargs,
    ) -> "RegistryClient":
        """Dial ``tcp://host:port``, authenticate, return a live client."""
        host, port = parse_address(spec)
        endpoint = f"tcp://{host}:{port}"
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServiceError(
                f"could not connect to cluster registry at {endpoint}: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            client_handshake(sock, codec, resolve_token(token), endpoint)
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        return cls(endpoint, sock, codec, on_event=on_event, on_lost=on_lost, **kwargs)

    @property
    def endpoint(self) -> str:
        return self._endpoint

    def alive(self) -> bool:
        if self._closed or self._lost:
            return False
        return time.monotonic() - self._last_rx < self._liveness_timeout

    # -- the registry dialect --

    def register(self, address: str, kind: str = "thread") -> dict:
        """Announce an agent at ``address``; the connection is its lease."""
        return self.call(REGISTER_OP, {"address": address, "kind": kind})

    def leave(self, address: str | None = None) -> list[str]:
        """Gracefully deregister (all leases held here, or one address)."""
        return self.call(LEAVE_OP, address)

    def members(self) -> list[dict]:
        """Current membership snapshot (one-shot, no subscription)."""
        return self.call(MEMBERS_OP, None)

    def watch(self) -> list[dict]:
        """Subscribe to membership events; returns the atomic snapshot
        the event stream continues from (``on_event`` fires for every
        change after it)."""
        return self.call(WATCH_OP, None)

    def call(self, op: str, payload, timeout: float | None = None):
        """One registry round trip; raises on error, loss, or timeout.

        ``timeout`` overrides the client's call policy per-attempt bound
        (:data:`~repro.retry.REGISTRY_CALL_POLICY` by default).
        """
        if timeout is None:
            timeout = self._call_policy.timeout
        if self._closed:
            raise ServiceError(f"registry client for {self._endpoint} is closed")
        if self._lost:
            raise ServiceError(f"cluster registry at {self._endpoint} is unreachable")
        pending = _PendingCall()
        with self._calls_lock:
            request_id = self._next_id
            self._next_id += 1
            self._calls[request_id] = pending
        try:
            try:
                with self._write_lock:
                    write_frame(self._sock, Request(request_id, op, payload), self._codec)
            except (ServiceError, OSError) as exc:
                self._lose()
                raise ServiceError(
                    f"cluster registry at {self._endpoint} is unreachable "
                    f"(send failed: {exc})"
                ) from exc
            if not pending.done.wait(timeout):
                raise ServiceError(
                    f"registry call {op!r} to {self._endpoint} timed out"
                )
        finally:
            with self._calls_lock:
                self._calls.pop(request_id, None)
        if pending.response is None:
            raise ServiceError(
                f"cluster registry at {self._endpoint} was lost mid-call"
            )
        if pending.response.error is not None:
            raise ServiceError(
                f"registry call {op!r} to {self._endpoint} failed: "
                f"{pending.response.error}"
            )
        return pending.response.payload

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._fail_pending()
        self._reader.join(1.0)
        self._heartbeat.join(self._heartbeat_interval + 1.0)

    # -- plumbing --

    def _lose(self) -> None:
        self._lost = True
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._fail_pending()
        with self._lost_lock:
            if self._lost_fired or self._closed:
                return
            self._lost_fired = True
        if self._on_lost is not None:
            self._on_lost()

    def _fail_pending(self) -> None:
        with self._calls_lock:
            pending, self._calls = list(self._calls.values()), {}
        for call in pending:
            call.done.set()  # response stays None → "lost mid-call"

    def _read_loop(self) -> None:
        while not self._stop.is_set():
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                frame = None
            if frame is None:
                break
            self._last_rx = time.monotonic()
            if not isinstance(frame, Response):
                continue
            if frame.request_id == HEARTBEAT_ID:
                continue  # pong: the rx clock update is its whole job
            if frame.request_id == REGISTRY_EVENT_ID:
                if self._on_event is not None and isinstance(frame.payload, dict):
                    try:
                        self._on_event(frame.payload)
                    except Exception:  # noqa: BLE001 — a watcher bug must not kill the reader
                        pass
                continue
            with self._calls_lock:
                pending = self._calls.get(frame.request_id)
            if pending is not None:
                pending.response = frame
                pending.done.set()
        if not self._closed:
            self._lose()

    def _heartbeat_loop(self) -> None:
        ping = Request(HEARTBEAT_ID, "ping", None)
        while not self._stop.wait(self._heartbeat_interval):
            if self._closed or self._lost:
                return
            if time.monotonic() - self._last_rx >= self._liveness_timeout:
                self._lose()
                return
            try:
                with self._write_lock:
                    write_frame(self._sock, ping, self._codec)
            except (ServiceError, OSError):
                self._lose()
                return


class _PendingCall:
    __slots__ = ("done", "response")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: Response | None = None
