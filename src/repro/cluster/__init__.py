"""The elastic cluster control plane.

Turns the static endpoint list into live membership: agents announce
themselves to a :class:`~repro.cluster.registry.ClusterRegistry`, a
:class:`~repro.service.MonitorService` built with
``registry="tcp://host:port"`` watches it and resizes its pool as
members join, leave, and die.  See the "Cluster control plane" section
of ``DESIGN.md`` for the frame ops, the auth handshake, and the
join/leave state machine.
"""

from __future__ import annotations

from repro.cluster.client import RegistryClient
from repro.cluster.registry import (
    EVENT_DEATH,
    EVENT_JOIN,
    EVENT_LEAVE,
    ClusterRegistry,
    Member,
    spawn_registry,
)

__all__ = [
    "ClusterRegistry",
    "EVENT_DEATH",
    "EVENT_JOIN",
    "EVENT_LEAVE",
    "Member",
    "RegistryClient",
    "spawn_registry",
]
