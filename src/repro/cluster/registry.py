"""The cluster registry: a tiny control-plane service for agent membership.

The data plane (worker agents serving monitor frames) already scales to
many hosts; what was missing is the *control* plane — how a service
learns that agents exist without a hand-maintained endpoint list.  The
:class:`ClusterRegistry` is that directory: a small TCP service speaking
the existing versioned frame codec, where

* **agents announce themselves** on start (``registry_register`` with
  their advertised ``tcp://host:port`` address and mode), keep their
  registration alive simply by keeping the connection open, and
  **deregister gracefully** (``registry_leave``) on SIGTERM;
* **services subscribe** (``registry_watch``) and receive an atomic
  snapshot of current members plus pushed events —
  :data:`~repro.transport.frames.REGISTRY_EVENT_ID` response frames —
  for every later ``join``, ``leave``, and ``death``.

**The connection is the lease.**  A registration lives exactly as long
as the TCP connection that made it: a SIGKILLed agent's socket closes
and the registry announces a ``death``; a frozen or partitioned agent
stops heartbeating and the reaper closes it to the same effect.  There
is no lease-renewal protocol to get wrong — liveness bookkeeping reuses
the transport's existing heartbeat frames, answered inline like the
worker agent answers them.

The registry is deliberately *not* a coordinator: it never routes
frames, never picks placements, and holds no monitor state.  Services
own their reaction to membership events (grow the pool on ``join``,
drain on ``leave``, let the PR 6 recovery path handle ``death``), so a
registry outage degrades to a static pool — running services keep
serving; only membership *changes* stop propagating.

Authentication: the same shared-token handshake as worker agents
(:mod:`repro.transport.auth`) gates every registry connection, so one
exported ``REPRO_AGENT_TOKEN`` secures the whole cluster surface.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.transport.auth import resolve_token, server_handshake
from repro.transport.frames import (
    DEFAULT_CODEC,
    HEARTBEAT_ID,
    REGISTRY_EVENT_ID,
    Codec,
    Request,
    Response,
    read_frame,
    write_frame,
)

#: Registry frame ops (regular request/response ops, one frame each).
REGISTER_OP = "registry_register"
LEAVE_OP = "registry_leave"
MEMBERS_OP = "registry_members"
WATCH_OP = "registry_watch"

#: Membership event kinds pushed to watchers.
EVENT_JOIN = "join"
EVENT_LEAVE = "leave"
EVENT_DEATH = "death"

#: Printed once the registry accepts connections (spawners parse the port).
READY_PREFIX = "cluster-registry listening on "

#: How long a registrant may stay silent (no heartbeat, no request)
#: before its lease is reaped as a death.  Watchers are exempt — a
#: service that is merely busy must not be disconnected.
LEASE_TIMEOUT = 5.0


@dataclass
class Member:
    """One registered agent: its advertised address and serving mode."""

    address: str
    kind: str = "thread"

    def to_wire(self) -> dict:
        return {"address": self.address, "kind": self.kind}


class ClusterRegistry:
    """Serves agent membership on ``host:port`` (``port=0`` = ephemeral)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Codec = DEFAULT_CODEC,
        token: str | None = None,
        lease_timeout: float = LEASE_TIMEOUT,
    ) -> None:
        self._host = host
        self._port = port
        self._codec = codec
        self._token = resolve_token(token)
        self._lease_timeout = lease_timeout
        self._sock: socket.socket | None = None
        self._closed = False
        self._lock = threading.Lock()  # membership + watcher set + event order
        self._members: dict[str, Member] = {}
        self._owners: dict[str, "_RegistryPeer"] = {}  # address → leasing peer
        self._peers: list[_RegistryPeer] = []
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def address(self) -> str:
        if self._sock is None:
            raise ServiceError("cluster registry is not listening yet")
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        if self._sock is None:
            raise ServiceError("cluster registry is not listening yet")
        return self._port

    def describe(self) -> str:
        return f"tcp://{self.address}"

    def members(self) -> list[Member]:
        with self._lock:
            return list(self._members.values())

    def start(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((self._host, self._port))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cluster registry could not bind {self._host}:{self._port}: {exc}"
            ) from exc
        sock.listen()
        self._port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"registry-{self._port}", daemon=True
        )
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name=f"registry-{self._port}-reaper", daemon=True
        )
        self._reaper_thread.start()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            peers, self._peers = self._peers, []
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for peer in peers:
            peer.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)
        if self._reaper_thread is not None:
            self._reaper_thread.join(1.0)

    def __enter__(self) -> "ClusterRegistry":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- membership transitions (all under self._lock for event ordering) --

    def _register(self, peer: "_RegistryPeer", payload) -> dict:
        if not isinstance(payload, dict) or not isinstance(payload.get("address"), str):
            raise ServiceError("registry_register payload must be {'address': str, ...}")
        member = Member(payload["address"], str(payload.get("kind", "thread")))
        with self._lock:
            rejoin = member.address in self._members
            self._members[member.address] = member
            # Re-registering an address moves the lease to the new
            # connection: the *old* peer's later loss must not evict the
            # fresh registration (the rejoin-after-SIGKILL race).
            self._owners[member.address] = peer
            peer.owned.add(member.address)
            self._push_event(EVENT_JOIN, member, rejoin=rejoin)
        return member.to_wire()

    def _leave(self, peer: "_RegistryPeer", payload) -> list[str]:
        addresses = (
            [payload] if isinstance(payload, str) else sorted(peer.owned)
        )
        left = []
        with self._lock:
            for address in addresses:
                if self._owners.get(address) is not peer:
                    continue  # lease moved (rejoin) or already gone
                member = self._members.pop(address, None)
                del self._owners[address]
                peer.owned.discard(address)
                if member is not None:
                    left.append(address)
                    self._push_event(EVENT_LEAVE, member)
        return left

    def _lose_peer(self, peer: "_RegistryPeer") -> None:
        """Connection lost without a leave: every lease it held is a death."""
        with self._lock:
            if peer in self._peers:
                self._peers.remove(peer)
            for address in sorted(peer.owned):
                if self._owners.get(address) is not peer:
                    continue
                member = self._members.pop(address, None)
                del self._owners[address]
                if member is not None:
                    self._push_event(EVENT_DEATH, member)
            peer.owned.clear()

    def _watch_snapshot(self, peer: "_RegistryPeer") -> list[dict]:
        # Snapshot and subscription flip under one lock hold: a watcher
        # can never miss an event between "members as of now" and "events
        # from now on", and never sees a join duplicated in both.
        with self._lock:
            peer.watching = True
            return [member.to_wire() for member in self._members.values()]

    def _push_event(self, event: str, member: Member, rejoin: bool = False) -> None:
        """Fan an event out to watchers (caller holds ``self._lock``)."""
        payload = dict(member.to_wire(), event=event)
        if rejoin:
            payload["rejoin"] = True
        frame = Response(REGISTRY_EVENT_ID, payload, None)
        for peer in self._peers:
            if peer.watching:
                peer.push(frame, self._codec)

    # -- plumbing --

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, addr = self._sock.accept()
            except OSError:
                return
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            peer = _RegistryPeer(self, client, addr)
            with self._lock:
                if self._closed:
                    peer.stop()
                    return
                self._peers.append(peer)
            peer.start()

    def _reap_loop(self) -> None:
        """Close leaseholders that went silent (partition/freeze deaths)."""
        while not self._stop.wait(min(1.0, self._lease_timeout / 2)):
            now = time.monotonic()
            with self._lock:
                stale = [
                    peer
                    for peer in self._peers
                    if peer.owned and now - peer.last_rx > self._lease_timeout
                ]
            for peer in stale:
                peer.stop()  # reader EOFs → _lose_peer → death events


class _RegistryPeer:
    """One accepted registry connection (an agent, a watcher, or both)."""

    def __init__(self, registry: ClusterRegistry, sock, addr) -> None:
        self._registry = registry
        self._sock = sock
        self._codec = registry._codec
        self._write_lock = threading.Lock()
        self._stopped = False
        self.owned: set[str] = set()  # addresses this connection leases
        self.watching = False
        self.last_rx = time.monotonic()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"registry-peer-{addr[0]}:{addr[1]}",
            daemon=True,
        )

    def start(self) -> None:
        self._reader.start()

    def stop(self) -> None:
        self._stopped = True
        # Shutdown before close: close() alone does not wake a reader
        # thread blocked in recv (the kernel keeps the file description
        # open), so a reaped peer would never actually disconnect.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def push(self, frame: Response, codec: Codec) -> None:
        """Best-effort event delivery; a dead watcher is reaped by its EOF."""
        try:
            with self._write_lock:
                write_frame(self._sock, frame, codec)
        except (ServiceError, OSError):
            self.stop()

    def _read_loop(self) -> None:
        try:
            leftover = server_handshake(
                self._sock, self._codec, self._registry._token
            )
        except Exception:  # noqa: BLE001 — hostile pre-auth bytes (bad
            # pickle, torn stream) must still run the peer-loss cleanup,
            # not leak a half-registered peer by killing this thread.
            self.stop()
            self._registry._lose_peer(self)
            return
        if leftover is not None:
            self._dispatch(leftover)
        while not self._stopped:
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                frame = None
            if frame is None:
                break
            self.last_rx = time.monotonic()
            self._dispatch(frame)
        self.stop()
        self._registry._lose_peer(self)

    def _dispatch(self, frame) -> None:
        if not isinstance(frame, Request):
            return
        if frame.request_id == HEARTBEAT_ID:
            self._respond(Response(HEARTBEAT_ID, "pong", None))
            return
        try:
            if frame.op == REGISTER_OP:
                payload = self._registry._register(self, frame.payload)
            elif frame.op == LEAVE_OP:
                payload = self._registry._leave(self, frame.payload)
            elif frame.op == MEMBERS_OP:
                payload = [m.to_wire() for m in self._registry.members()]
            elif frame.op == WATCH_OP:
                payload = self._registry._watch_snapshot(self)
            else:
                raise ServiceError(f"unknown registry op {frame.op!r}")
        except ServiceError as exc:
            self._respond(Response(frame.request_id, None, f"ServiceError: {exc}"))
            return
        except Exception as exc:  # noqa: BLE001 — hostile payload shapes must
            # fail their own request, never the reader thread serving them.
            self._respond(
                Response(frame.request_id, None, f"{type(exc).__name__}: {exc}")
            )
            return
        self._respond(Response(frame.request_id, payload, None))

    def _respond(self, response: Response) -> None:
        try:
            with self._write_lock:
                write_frame(self._sock, response, self._codec)
        except (ServiceError, OSError):
            self.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the cluster registry (agent membership directory)."
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared auth token gating connections (default: REPRO_AGENT_TOKEN)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=LEASE_TIMEOUT,
        metavar="SECONDS",
        help="silence threshold before a member's lease is reaped as dead "
        f"(default: {LEASE_TIMEOUT} s; fault tests run this at milliseconds)",
    )
    args = parser.parse_args(argv)
    registry = ClusterRegistry(
        args.host, args.port, token=args.token, lease_timeout=args.lease_timeout
    )
    registry.start()
    auth = "token-auth" if registry._token is not None else "no-auth"
    print(f"{READY_PREFIX}{registry.address} (pid {os.getpid()}, {auth})", flush=True)
    stop = threading.Event()
    import signal

    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        registry.close()
    return 0


def spawn_registry(
    host: str = "127.0.0.1",
    port: int = 0,
    token: str | None = None,
    lease_timeout: float | None = None,
):
    """Start a registry in a fresh OS process; returns ``(popen, host, port)``."""
    import subprocess
    import sys

    here = os.path.abspath(__file__)  # src/repro/cluster/registry.py
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    argv = [
        sys.executable,
        "-c",
        "from repro.cluster.registry import main; raise SystemExit(main())",
        "--host",
        host,
        "--port",
        str(port),
    ]
    if token is not None:
        argv += ["--token", token]
    if lease_timeout is not None:
        argv += ["--lease-timeout", str(lease_timeout)]
    popen = subprocess.Popen(argv, stdout=subprocess.PIPE, env=env, text=True)
    line = popen.stdout.readline()
    if not line.startswith(READY_PREFIX):
        popen.kill()
        raise ServiceError(f"cluster registry failed to start (got {line!r})")
    address = line[len(READY_PREFIX):].split()[0]
    bound_host, bound_port = address.rsplit(":", 1)
    return popen, bound_host, int(bound_port)


if __name__ == "__main__":  # pragma: no cover - process entry point
    raise SystemExit(main())
