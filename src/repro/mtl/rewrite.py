"""Formula rewriting utilities: simplification and normal forms.

The progression engine produces formulas built by the smart constructors in
:mod:`repro.mtl.ast`, which already fold constants locally.  The functions
here apply the same folding *bottom-up across a whole formula* (useful when
formulas were built by hand or parsed), plus negation normal form, which
the verdict enumerator uses to canonicalise progressed formulas before
deduplication.
"""

from __future__ import annotations

from repro.mtl.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Not,
    Or,
    TrueConst,
    Until,
    always,
    eventually,
    land,
    lnot,
    lor,
    until,
)


def simplify(formula: Formula) -> Formula:
    """Bottom-up constant folding and flattening.

    Idempotent: ``simplify(simplify(f)) == simplify(f)``.
    """
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, Not):
        return lnot(simplify(formula.operand))
    if isinstance(formula, And):
        return land(*(simplify(op) for op in formula.operands))
    if isinstance(formula, Or):
        return lor(*(simplify(op) for op in formula.operands))
    if isinstance(formula, Eventually):
        return eventually(simplify(formula.operand), formula.interval)
    if isinstance(formula, Always):
        return always(simplify(formula.operand), formula.interval)
    if isinstance(formula, Until):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(right, FalseConst):
            return FALSE
        if isinstance(right, TrueConst) and formula.interval.start == 0:
            # true is witnessed immediately at offset 0 in [0, _).
            return TRUE
        if isinstance(left, TrueConst):
            return eventually(right, formula.interval)
        if isinstance(left, FalseConst):
            # Only an immediate witness can save us: phi2 now, at offset 0.
            if formula.interval.start == 0:
                return right
            return FALSE
        return until(left, right, formula.interval)
    raise TypeError(f"unknown formula node: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: push negations down to atoms.

    Dualities used (finite-trace readings preserved by the progression and
    semantics modules, which treat G weakly and F/U strongly)::

        !(a & b)  =>  !a | !b
        !(a | b)  =>  !a & !b
        !G_I phi  =>  F_I !phi
        !F_I phi  =>  G_I !phi
        !!phi     =>  phi

    ``!(phi1 U_I phi2)`` has no dual in this fragment (the paper's grammar
    has no "release"); the negation stays in front of the U node.
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, TrueConst):
        return FALSE if negate else TRUE
    if isinstance(formula, FalseConst):
        return TRUE if negate else FALSE
    if isinstance(formula, Atom):
        return lnot(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return lor(*parts) if negate else land(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return land(*parts) if negate else lor(*parts)
    if isinstance(formula, Eventually):
        inner = _nnf(formula.operand, negate)
        if negate:
            return always(inner, formula.interval)
        return eventually(inner, formula.interval)
    if isinstance(formula, Always):
        inner = _nnf(formula.operand, negate)
        if negate:
            return eventually(inner, formula.interval)
        return always(inner, formula.interval)
    if isinstance(formula, Until):
        rewritten = until(
            _nnf(formula.left, False), _nnf(formula.right, False), formula.interval
        )
        return lnot(rewritten) if negate else rewritten
    raise TypeError(f"unknown formula node: {formula!r}")
