"""A small text parser for MTL formulas.

Grammar (lowest to highest precedence)::

    formula  := implied
    implied  := disj ('->' implied)?                 (right associative)
    disj     := conj ('|' conj)*
    conj     := until ('&' until)*
    until    := unary ('U' interval? unary)?
    unary    := '!' unary
              | 'G' interval? unary
              | 'F' interval? unary
              | '(' formula ')'
              | 'true' | 'false'
              | atom
    interval := '[' INT ',' (INT | 'inf') ')'
    atom     := IDENT ('(' ARGS ')')?                e.g. apr.redeem(bob)

Examples::

    parse("G[0,5) p")
    parse("!apr.asset_redeemed(bob) U[0,8) ban.asset_redeemed(alice)")
    parse("F[0,3) (a & !b) -> G c")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.mtl import ast
from repro.mtl.interval import INF, Interval

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lbracket>\[)
  | (?P<rparen_interval>\))
  | (?P<lparen>\()
  | (?P<comma>,)
  | (?P<arrow>->)
  | (?P<bang>!)
  | (?P<amp>&&?)
  | (?P<pipe>\|\|?)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "U", "G", "F", "inf"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            where = token.position if token else len(self._text)
            got = token.text if token else "end of input"
            raise ParseError(f"expected {kind}, got {got!r}", where)
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "ident" and token.text == word

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> ast.Formula:
        formula = self._implied()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(f"trailing input starting at {leftover.text!r}", leftover.position)
        return formula

    def _implied(self) -> ast.Formula:
        left = self._disj()
        if self._peek() is not None and self._peek().kind == "arrow":
            self._advance()
            right = self._implied()
            return ast.implies(left, right)
        return left

    def _disj(self) -> ast.Formula:
        operands = [self._conj()]
        while self._peek() is not None and self._peek().kind == "pipe":
            self._advance()
            operands.append(self._conj())
        return ast.lor(*operands) if len(operands) > 1 else operands[0]

    def _conj(self) -> ast.Formula:
        operands = [self._until()]
        while self._peek() is not None and self._peek().kind == "amp":
            self._advance()
            operands.append(self._until())
        return ast.land(*operands) if len(operands) > 1 else operands[0]

    def _until(self) -> ast.Formula:
        left = self._unary()
        if self._at_keyword("U"):
            self._advance()
            interval = self._maybe_interval()
            right = self._unary()
            return ast.until(left, right, interval)
        return left

    def _unary(self) -> ast.Formula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self._text))
        if token.kind == "bang":
            self._advance()
            return ast.lnot(self._unary())
        if token.kind == "lparen":
            self._advance()
            inner = self._implied()
            self._expect("rparen_interval")
            return inner
        if token.kind == "ident":
            if token.text == "G":
                self._advance()
                interval = self._maybe_interval()
                return ast.always(self._unary(), interval)
            if token.text == "F":
                self._advance()
                interval = self._maybe_interval()
                return ast.eventually(self._unary(), interval)
            if token.text == "true":
                self._advance()
                return ast.TRUE
            if token.text == "false":
                self._advance()
                return ast.FALSE
            return self._atom()
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _maybe_interval(self) -> Interval | None:
        token = self._peek()
        if token is None or token.kind != "lbracket":
            return None
        self._advance()
        start = int(self._expect("int").text)
        self._expect("comma")
        bound = self._peek()
        if bound is not None and bound.kind == "ident" and bound.text == "inf":
            self._advance()
            end: float = INF
        else:
            end = int(self._expect("int").text)
        self._expect("rparen_interval")
        if end != INF and not start < end:
            raise ParseError(f"empty interval [{start},{end})", token.position)
        return Interval(start, end)

    def _atom(self) -> ast.Formula:
        token = self._expect("ident")
        if token.text in _KEYWORDS:
            raise ParseError(f"keyword {token.text!r} cannot be an atom", token.position)
        name = token.text
        # Optional argument list: apr.redeem(bob) — folded into the name.
        if self._peek() is not None and self._peek().kind == "lparen":
            self._advance()
            args: list[str] = []
            while True:
                arg = self._peek()
                if arg is None:
                    raise ParseError("unterminated atom argument list", token.position)
                if arg.kind == "rparen_interval":
                    self._advance()
                    break
                if arg.kind == "comma":
                    self._advance()
                    continue
                if arg.kind in ("ident", "int"):
                    args.append(self._advance().text)
                    continue
                raise ParseError(f"bad atom argument {arg.text!r}", arg.position)
            name = f"{name}({','.join(args)})"
        return ast.atom(name)


def parse(text: str) -> ast.Formula:
    """Parse an MTL formula from text.

    >>> parse("p U[0,8) q")
    Until(left=Atom(name='p'), right=Atom(name='q'), interval=Interval(start=0, end=8))
    """
    return _Parser(text).parse()
