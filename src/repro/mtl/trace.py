"""Timed traces: the semantic objects MTL formulas are evaluated over.

A trace is the paper's pair ``(alpha, tau_bar)`` — a finite sequence of
states and a monotonically non-decreasing sequence of integer timestamps
(Section II-B).  States carry both a set of true propositions and a numeric
valuation for predicate atoms (payoff sums etc., Section V-A's mu
extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.errors import TraceError

_EMPTY_VALUATION: Mapping[str, float] = MappingProxyType({})


@dataclass(frozen=True)
class State:
    """A single observation: which propositions hold, plus numeric values.

    ``props`` is the classic 2^AP state; ``valuation`` feeds
    :class:`~repro.mtl.ast.PredicateAtom` (non-boolean variables).
    """

    props: frozenset[str]
    valuation: Mapping[str, float] = field(default_factory=lambda: _EMPTY_VALUATION)

    @staticmethod
    def of(*props: str, **valuation: float) -> "State":
        """Convenience constructor: ``State.of("p", "q", x=3)``."""
        mapping = MappingProxyType(dict(valuation)) if valuation else _EMPTY_VALUATION
        return State(frozenset(props), mapping)

    def with_props(self, *extra: str) -> "State":
        """A copy of this state with extra propositions set."""
        return State(self.props | frozenset(extra), self.valuation)

    def __contains__(self, prop: str) -> bool:
        return prop in self.props

    def __hash__(self) -> int:
        return hash((self.props, tuple(sorted(self.valuation.items()))))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self.props == other.props and dict(self.valuation) == dict(other.valuation)

    def __str__(self) -> str:
        inner = ",".join(sorted(self.props)) or "∅"
        return "{" + inner + "}"


EMPTY_STATE = State(frozenset())


class TimedTrace:
    """An immutable finite timed word ``(s0, t0)(s1, t1)...(sn, tn)``.

    Timestamps must be non-negative integers and non-decreasing — the
    paper's monotonicity requirement on ``tau_bar``.
    """

    __slots__ = ("_states", "_times", "_hash")

    def __init__(self, states: Iterable[State], times: Iterable[int]) -> None:
        self._states: tuple[State, ...] = tuple(states)
        self._times: tuple[int, ...] = tuple(times)
        self._hash: int | None = None
        if len(self._states) != len(self._times):
            raise TraceError(
                f"state/time length mismatch: {len(self._states)} states, "
                f"{len(self._times)} times"
            )
        previous = None
        for t in self._times:
            if not isinstance(t, int) or isinstance(t, bool):
                raise TraceError(f"timestamps must be ints, got {t!r}")
            if t < 0:
                raise TraceError(f"timestamps must be >= 0, got {t}")
            if previous is not None and t < previous:
                raise TraceError(f"timestamps must be non-decreasing: {previous} then {t}")
            previous = t

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[State, int]]) -> "TimedTrace":
        """Build a trace from ``(state, time)`` pairs."""
        pairs = list(pairs)
        return TimedTrace((s for s, _ in pairs), (t for _, t in pairs))

    @staticmethod
    def single(state: State, time: int) -> "TimedTrace":
        """A one-observation trace."""
        return TimedTrace((state,), (time,))

    @staticmethod
    def empty() -> "TimedTrace":
        """The empty trace (used as the base for incremental building)."""
        return TimedTrace((), ())

    # -- access --------------------------------------------------------------

    @property
    def states(self) -> tuple[State, ...]:
        return self._states

    @property
    def times(self) -> tuple[int, ...]:
        return self._times

    def __len__(self) -> int:
        return len(self._states)

    def __bool__(self) -> bool:
        return bool(self._states)

    def __iter__(self) -> Iterator[tuple[State, int]]:
        return iter(zip(self._states, self._times))

    def state(self, i: int) -> State:
        return self._states[i]

    def time(self, i: int) -> int:
        return self._times[i]

    @property
    def start_time(self) -> int:
        if not self._states:
            raise TraceError("empty trace has no start time")
        return self._times[0]

    @property
    def end_time(self) -> int:
        if not self._states:
            raise TraceError("empty trace has no end time")
        return self._times[-1]

    def duration(self) -> int:
        """``t_n - t_0`` for a non-empty trace, else 0."""
        if not self._states:
            return 0
        return self._times[-1] - self._times[0]

    # -- derivation ----------------------------------------------------------

    def suffix(self, i: int) -> "TimedTrace":
        """The suffix trace ``(alpha^i, tau_bar^i)`` starting at position i."""
        if not 0 <= i <= len(self._states):
            raise TraceError(f"suffix index {i} out of range for length {len(self)}")
        return TimedTrace(self._states[i:], self._times[i:])

    def prefix(self, length: int) -> "TimedTrace":
        """The first ``length`` observations."""
        if not 0 <= length <= len(self._states):
            raise TraceError(f"prefix length {length} out of range for length {len(self)}")
        return TimedTrace(self._states[:length], self._times[:length])

    def append(self, state: State, time: int) -> "TimedTrace":
        """A new trace with one more observation at the end."""
        return TimedTrace(self._states + (state,), self._times + (time,))

    def concat(self, other: "TimedTrace") -> "TimedTrace":
        """Concatenation ``alpha . alpha'`` (Definition 3's splitting)."""
        return TimedTrace(self._states + other._states, self._times + other._times)

    # -- equality / presentation ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimedTrace):
            return NotImplemented
        return self._states == other._states and self._times == other._times

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._states, self._times))
        return self._hash

    def __str__(self) -> str:
        return "".join(f"({s},{t})" for s, t in self)

    def __repr__(self) -> str:
        return f"TimedTrace({self!s})"
