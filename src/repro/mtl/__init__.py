"""Metric temporal logic substrate: AST, intervals, traces, semantics."""

from repro.mtl.ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Not,
    Or,
    PredicateAtom,
    TrueConst,
    Until,
    always,
    atom,
    eventually,
    implies,
    land,
    lnot,
    lor,
    until,
)
from repro.mtl.interval import INF, Interval
from repro.mtl.parser import parse
from repro.mtl.rewrite import simplify, to_nnf
from repro.mtl.semantics import evaluate, satisfies
from repro.mtl.trace import EMPTY_STATE, State, TimedTrace

__all__ = [
    "FALSE",
    "TRUE",
    "INF",
    "Always",
    "And",
    "Atom",
    "Eventually",
    "FalseConst",
    "Formula",
    "Interval",
    "Not",
    "Or",
    "PredicateAtom",
    "State",
    "TimedTrace",
    "EMPTY_STATE",
    "TrueConst",
    "Until",
    "always",
    "atom",
    "eventually",
    "evaluate",
    "implies",
    "land",
    "lnot",
    "lor",
    "parse",
    "satisfies",
    "simplify",
    "to_nnf",
    "until",
]
