"""Half-open integer time intervals ``[start, end)`` for MTL operators.

The paper (Section II-B) defines intervals over the non-negative integers:

    [start, end) = { a in Z>=0 | start <= a < end }

with ``start in Z>=0``, ``end in Z>=0 union {infinity}`` and ``start < end``.
Interval subtraction ``I - tau`` (used by formula progression, Section IV)
clamps both endpoints at zero:

    I - tau = [max(0, start - tau), max(0, end - tau))

An interval whose end clamps to zero is empty; progression treats such
residuals as unsatisfiable windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FormulaError

#: Sentinel for an unbounded right endpoint. ``math.inf`` compares correctly
#: against integers, which keeps all the arithmetic below branch-free.
INF = math.inf


@dataclass(frozen=True, order=False)
class Interval:
    """A half-open interval ``[start, end)`` over non-negative integers.

    ``end`` may be :data:`INF` for unbounded intervals such as ``[5, inf)``.
    Instances are immutable and hashable, so they can be used as parts of
    formula AST nodes (which are themselves hashable for deduplication).
    """

    start: int
    end: float  # int or INF

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or isinstance(self.start, bool):
            raise FormulaError(f"interval start must be an int, got {self.start!r}")
        if self.start < 0:
            raise FormulaError(f"interval start must be >= 0, got {self.start}")
        if self.end != INF:
            if not isinstance(self.end, int) or isinstance(self.end, bool):
                raise FormulaError(f"interval end must be an int or INF, got {self.end!r}")
            if self.end < 0:
                raise FormulaError(f"interval end must be >= 0, got {self.end}")
        if not self.start < self.end and not (self.start == 0 and self.end == 0):
            # Only the canonical empty interval [0, 0) is admitted (it is
            # produced by clamping subtraction via Interval.empty()).
            raise FormulaError(
                f"interval must satisfy start < end, got [{self.start}, {self.end})"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def bounded(start: int, end: int) -> "Interval":
        """Build the bounded interval ``[start, end)``."""
        return Interval(start, end)

    @staticmethod
    def unbounded(start: int = 0) -> "Interval":
        """Build the unbounded interval ``[start, inf)``."""
        return Interval(start, INF)

    @staticmethod
    def always() -> "Interval":
        """The full time line ``[0, inf)`` (untimed operators)."""
        return Interval(0, INF)

    @staticmethod
    def empty() -> "Interval":
        """The canonical empty interval ``[0, 0)``.

        Only produced by clamping subtraction; never accepted from users
        through :meth:`bounded` (which requires ``start < end``).
        """
        interval = object.__new__(Interval)
        object.__setattr__(interval, "start", 0)
        object.__setattr__(interval, "end", 0)
        return interval

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the interval contains no integer."""
        return self.end <= self.start

    def is_unbounded(self) -> bool:
        """True when the right endpoint is infinite."""
        return self.end == INF

    def __contains__(self, value: float) -> bool:
        return self.start <= value < self.end

    def contains(self, value: float) -> bool:
        """Membership test; equivalent to ``value in self``."""
        return value in self

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one integer."""
        if self.is_empty() or other.is_empty():
            return False
        return self.start < other.end and other.start < self.end

    # -- arithmetic --------------------------------------------------------

    def shift_down(self, tau: int) -> "Interval":
        """The paper's ``I - tau`` with clamping at zero.

        >>> Interval.bounded(2, 9).shift_down(3)
        Interval(start=0, end=6)
        >>> Interval.bounded(2, 9).shift_down(20).is_empty()
        True
        """
        if tau < 0:
            raise FormulaError(f"cannot shift an interval by a negative amount: {tau}")
        new_start = max(0, self.start - tau)
        new_end = self.end if self.end == INF else max(0, self.end - tau)
        if new_end <= new_start:
            return Interval.empty()
        return Interval(new_start, new_end)

    def shift_up(self, tau: int) -> "Interval":
        """The interval translated right by ``tau``: ``[start+tau, end+tau)``."""
        if tau < 0:
            raise FormulaError(f"cannot shift an interval by a negative amount: {tau}")
        new_end = INF if self.end == INF else self.end + tau
        return Interval(self.start + tau, new_end)

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        end = "inf" if self.end == INF else str(self.end)
        return f"[{self.start},{end})"

    def __repr__(self) -> str:  # keep dataclass-style repr but shorter end
        return f"Interval(start={self.start}, end={self.end})"
