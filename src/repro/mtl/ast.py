"""Abstract syntax trees for metric temporal logic (MTL) formulas.

The grammar follows the paper (Section II-B):

    phi ::= p | !phi | phi1 | phi2 | phi1 U_I phi2

with the usual derived operators kept as first-class nodes because the
progression algorithms (Section IV) treat them directly:

    F_I phi  ("eventually")   =  true U_I phi
    G_I phi  ("always")       =  !F_I !phi

``phi1 -> phi2`` and ``phi1 & phi2`` desugar to ``!phi1 | phi2`` and
``!(!phi1 | !phi2)`` would lose readability, so conjunction is also a
first-class n-ary node; implication desugars at construction time.

All nodes are immutable and hashable, and the smart constructors
hash-cons ("intern") them: structurally equal formulas built through
:func:`atom`/:func:`lnot`/:func:`land`/:func:`lor`/:func:`until`/
:func:`eventually`/:func:`always` are the *same object*, so the hot
monitoring loop's residual-dict operations run on cached hashes and
identity equality instead of re-walking formula trees.  Directly
constructed nodes (``Not(x)``) still compare structurally; pass them
through :func:`intern_formula` to canonicalize.  Interned instances are
held weakly, so residuals from a long-lived monitoring service are
garbage-collected once no monitor carries them.
"""

from __future__ import annotations

import os
import threading
import weakref
from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import FormulaError
from repro.mtl.interval import INF, Interval

#: Canonical instance per structural equivalence class, held weakly so
#: formulas no monitor references any more can be collected.  Keys are
#: ``(node class, structural fields)``; the lock only guards insertion
#: (lookups ride on the GIL).  The *structural record* of every formula
#: ever interned lives in the append-only :class:`InternArena` below —
#: an id freed by GC is re-issued to the same structure if it is ever
#: rebuilt, so intern ids are stable per structure for the process
#: lifetime.
_INTERN: "weakref.WeakValueDictionary[tuple, Formula]" = weakref.WeakValueDictionary()
_INTERN_LOCK = threading.Lock()


# ---------------------------------------------------------------------------
# The intern arena: flat columnar storage of every interned formula.
#
# The hot monitoring loop (progressing thousands of carried residuals over
# every enumerated segment trace) runs entirely on dense int ids indexed
# into these parallel arrays — no Formula objects, no structural hashing,
# no isinstance dispatch.  Formula objects remain the API-boundary
# representation and are reconstructible on demand from the arena rows.
# ---------------------------------------------------------------------------

#: Node-kind codes stored in the arena's ``kinds`` column.
KIND_TRUE = 0
KIND_FALSE = 1
KIND_ATOM = 2
KIND_PRED = 3
KIND_NOT = 4
KIND_AND = 5
KIND_OR = 6
KIND_UNTIL = 7
KIND_EVENTUALLY = 8
KIND_ALWAYS = 9

#: ``iv_hi`` column encoding of an unbounded interval end (``INF``).
IV_INF = -1

#: Kinds whose rows carry a meaningful interval (``iv_lo``/``iv_hi``).
TEMPORAL_KINDS = frozenset({KIND_UNTIL, KIND_EVENTUALLY, KIND_ALWAYS})


class InternArena:
    """Append-only columnar record of every interned formula.

    One row per structural equivalence class, identified by its dense
    intern id.  Parallel columns:

    * ``kinds[fid]`` — the ``KIND_*`` code (``bytearray``);
    * ``iv_lo[fid]`` / ``iv_hi[fid]`` — interval bounds for temporal
      kinds (``iv_hi`` is :data:`IV_INF` for unbounded windows, both 0
      for non-temporal rows);
    * ``child_ids[child_off[fid]:child_off[fid+1]]`` — the children's
      ids (flat ``array('q')`` plus an offsets column);
    * ``names[fid]`` — the atom name for atom/predicate rows;
    * ``refs[fid]`` — a weakref to the canonical :class:`Formula`
      object, or ``None`` until one is (re)built;
    * ``closed[fid]`` — memoized end-of-trace verdict for
      :func:`repro.progression.progressor.close` (0 unknown, 1 False,
      2 True — valid forever, close is purely structural).

    ``by_key`` is the id-keyed intern table and the source of truth for
    structural identity: a node's key is built from its kind and its
    *children's ids* (children are always interned first, so every
    child id is strictly smaller than its parent's — ascending id order
    is a topological order, which the columnar progression kernel
    relies on).  Rows are never removed; the canonical *objects* stay
    weakly held and collectable, and a structure rebuilt after its
    object died gets its old id back.

    Mutation happens only under the module intern lock; readers ride on
    the GIL (``by_key`` is populated last, after every column append).
    """

    __slots__ = (
        "kinds",
        "iv_lo",
        "iv_hi",
        "child_off",
        "child_ids",
        "names",
        "refs",
        "closed",
        "by_key",
    )

    def __init__(self) -> None:
        self.kinds = bytearray()
        self.iv_lo = array("q")
        self.iv_hi = array("q")
        self.child_off = array("q", (0,))
        self.child_ids = array("q")
        self.names: list[str | None] = []
        self.refs: list[weakref.ref | None] = []
        self.closed = bytearray()
        self.by_key: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self.kinds)

    def children(self, fid: int) -> array:
        """The child ids of row ``fid`` (empty for leaves)."""
        return self.child_ids[self.child_off[fid] : self.child_off[fid + 1]]

    def interval(self, fid: int) -> Interval:
        """The interval of a temporal row, decoded."""
        lo = self.iv_lo[fid]
        hi = self.iv_hi[fid]
        if hi == 0 and lo == 0:
            return Interval.empty()
        return Interval(lo, INF if hi == IV_INF else hi)

    def append_row(
        self,
        key: tuple,
        kind: int,
        children: tuple[int, ...],
        iv_lo: int = 0,
        iv_hi: int = 0,
        name: str | None = None,
    ) -> int:
        """Append one row (caller holds the intern lock) and return its id."""
        fid = len(self.kinds)
        self.kinds.append(kind)
        self.iv_lo.append(iv_lo)
        self.iv_hi.append(iv_hi)
        self.child_ids.extend(children)
        self.child_off.append(len(self.child_ids))
        self.names.append(name)
        self.refs.append(None)
        self.closed.append(0)
        self.by_key[key] = fid  # last: readers only see complete rows
        return fid

    def row_id(
        self,
        key: tuple,
        kind: int,
        children: tuple[int, ...],
        iv_lo: int = 0,
        iv_hi: int = 0,
        name: str | None = None,
    ) -> int:
        """The id of the row with this structure, appending it if new.

        Object-free: rows created here have no :class:`Formula` until
        :func:`formula_of` materializes one at an API boundary.
        """
        fid = self.by_key.get(key)
        if fid is not None:
            return fid
        with _INTERN_LOCK:
            fid = self.by_key.get(key)
            if fid is None:
                fid = self.append_row(key, kind, children, iv_lo, iv_hi, name)
        return fid


#: The process-wide arena.  Append-only; safe to alias its columns.
ARENA = InternArena()


def _reset_intern_lock_after_fork() -> None:
    """Give forked children a fresh intern lock.

    Worker pools may fork from a background thread while another thread
    is mid-``_intern_node`` (the segment-parallel orchestrator overlaps
    pool spawning with prefix enumeration); the child would inherit the
    lock in its held state and deadlock on its first formula
    construction.  The table itself is GIL-consistent at fork time.
    """
    global _INTERN_LOCK
    _INTERN_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not available on Windows (spawn-only)
    os.register_at_fork(after_in_child=_reset_intern_lock_after_fork)


def _encode_interval(interval: Interval) -> tuple[int, int]:
    """An interval as the arena's ``(iv_lo, iv_hi)`` int pair."""
    end = interval.end
    return interval.start, (IV_INF if end == INF else end)


def _node_signature(node: "Formula") -> tuple[tuple, int, tuple[int, ...], int, int, str | None]:
    """``(arena key, kind, child ids, iv_lo, iv_hi, name)`` for a node.

    Requires the node's children to be interned already (their ids form
    the key — that is what makes arena keys O(children) to build and
    hash instead of O(subtree)).
    """
    cls = node.__class__
    # Constants first: they are interned at module load, before the other
    # node classes below even exist.
    if cls is TrueConst:
        return (KIND_TRUE,), KIND_TRUE, (), 0, 0, None
    if cls is FalseConst:
        return (KIND_FALSE,), KIND_FALSE, (), 0, 0, None
    if cls is Atom:
        return (KIND_ATOM, node.name), KIND_ATOM, (), 0, 0, node.name
    if cls is PredicateAtom:
        return (KIND_PRED, node.name), KIND_PRED, (), 0, 0, node.name
    if cls is Not:
        cid = node.operand._intern_id
        return (KIND_NOT, cid), KIND_NOT, (cid,), 0, 0, None
    if cls is And or cls is Or:
        kind = KIND_AND if cls is And else KIND_OR
        cids = tuple(op._intern_id for op in node.operands)
        return (kind,) + cids, kind, cids, 0, 0, None
    if cls is Until:
        lo, hi = _encode_interval(node.interval)
        lid = node.left._intern_id
        rid = node.right._intern_id
        return (KIND_UNTIL, lid, rid, lo, hi), KIND_UNTIL, (lid, rid), lo, hi, None
    if cls is Eventually or cls is Always:
        kind = KIND_EVENTUALLY if cls is Eventually else KIND_ALWAYS
        lo, hi = _encode_interval(node.interval)
        cid = node.operand._intern_id
        return (kind, cid, lo, hi), kind, (cid,), lo, hi, None
    raise TypeError(f"unknown formula node: {node!r}")


def _intern_node(node: "Formula") -> "Formula":
    """Return the canonical instance structurally equal to ``node``."""
    children = node.children()
    if children and any(child._intern_id is None for child in children):
        canonical = tuple(intern_formula(child) for child in children)
        if any(new is not old for new, old in zip(canonical, children)):
            node = node._rebuild(canonical)
            if node._intern_id is not None:
                return node
    key = (node.__class__, node._key_fields())
    found = _INTERN.get(key)
    if found is not None:
        return found
    with _INTERN_LOCK:
        found = _INTERN.get(key)
        if found is not None:
            return found
        arena_key, kind, cids, iv_lo, iv_hi, name = _node_signature(node)
        fid = ARENA.by_key.get(arena_key)
        if fid is None:
            fid = ARENA.append_row(arena_key, kind, cids, iv_lo, iv_hi, name)
        else:
            ref = ARENA.refs[fid]
            live = ref() if ref is not None else None
            if live is not None:
                # The canonical object exists but fell out of the object
                # cache key we looked up (e.g. it was built through
                # formula_of): heal the cache and reuse it.
                _INTERN[key] = live
                return live
        object.__setattr__(node, "_intern_id", fid)
        ARENA.refs[fid] = weakref.ref(node)
        _INTERN[key] = node
        return node


def _mk(cls, *fields) -> "Formula":
    """Interning constructor: look the node up before building it."""
    node = _INTERN.get((cls, fields))
    if node is not None:
        return node
    return _intern_node(cls(*fields))


def intern_formula(formula: "Formula") -> "Formula":
    """The canonical (interned) instance equal to ``formula``.

    Recursively canonicalizes directly constructed subtrees; formulas
    built through the smart constructors come back unchanged.  Interned
    formulas compare by identity, carry a cached hash, and expose a
    process-unique :func:`intern_id` indexing their arena row.
    """
    if formula._intern_id is not None:
        return formula
    return _intern_node(formula)


def intern_id(formula: "Formula") -> int:
    """Dense arena id of the formula's structural equivalence class.

    Cheap total order for deterministic tie-breaking (residual-shard
    splits sort by it instead of stringifying formulas) and the index
    the columnar progression kernel runs on; ids are stable per
    structure within a process (even across GC of the object) but *not*
    across processes or runs.
    """
    node = formula if formula._intern_id is not None else intern_formula(formula)
    return node._intern_id


def interned_count() -> int:
    """Number of live interned formula *objects* (diagnostics and tests).

    Arena rows are append-only and never reclaimed; this counts the
    canonical objects still alive, which shrinks under GC.
    """
    return len(_INTERN)


def formula_of(fid: int) -> "Formula":
    """The canonical :class:`Formula` for an arena id (the API-boundary
    inverse of :func:`intern_id`).

    Dereferences the arena's weakref when the canonical object is
    alive; otherwise rebuilds the object tree from the arena rows and
    re-registers it under the same id.  Predicate-atom rows cannot be
    rebuilt (the predicate callable is not part of the structural
    record) — but a residual referencing one transitively keeps the
    object alive, so this only raises for formulas nothing references.
    """
    ref = ARENA.refs[fid]
    if ref is not None:
        obj = ref()
        if obj is not None:
            return obj
    kind = ARENA.kinds[fid]
    if kind == KIND_TRUE:
        return TRUE
    if kind == KIND_FALSE:
        return FALSE
    if kind == KIND_PRED:
        raise FormulaError(
            f"predicate atom {ARENA.names[fid]!r} (arena id {fid}) has no live "
            "object; predicates are not reconstructible from the arena"
        )
    if kind == KIND_ATOM:
        node: Formula = Atom(ARENA.names[fid])
    elif kind == KIND_NOT:
        node = Not(formula_of(ARENA.child_ids[ARENA.child_off[fid]]))
    elif kind == KIND_AND:
        node = And(tuple(formula_of(c) for c in ARENA.children(fid)))
    elif kind == KIND_OR:
        node = Or(tuple(formula_of(c) for c in ARENA.children(fid)))
    elif kind == KIND_UNTIL:
        off = ARENA.child_off[fid]
        node = Until(
            formula_of(ARENA.child_ids[off]),
            formula_of(ARENA.child_ids[off + 1]),
            ARENA.interval(fid),
        )
    elif kind == KIND_EVENTUALLY:
        node = Eventually(formula_of(ARENA.child_ids[ARENA.child_off[fid]]), ARENA.interval(fid))
    elif kind == KIND_ALWAYS:
        node = Always(formula_of(ARENA.child_ids[ARENA.child_off[fid]]), ARENA.interval(fid))
    else:
        raise FormulaError(f"unknown arena kind {kind} at id {fid}")
    with _INTERN_LOCK:
        ref = ARENA.refs[fid]
        obj = ref() if ref is not None else None
        if obj is not None:
            return obj
        object.__setattr__(node, "_intern_id", fid)
        ARENA.refs[fid] = weakref.ref(node)
        _INTERN[(node.__class__, node._key_fields())] = node
    return node


def _restore_interned(cls, args) -> "Formula":
    """Unpickle hook: rebuild and re-intern in the receiving process."""
    return intern_formula(cls(*args))


class Formula:
    """Base class for all MTL formula nodes."""

    #: subclasses override; used for cheap structural dispatch
    arity: int = 0

    #: lazily cached structural hash (instances shadow via object.__setattr__)
    _hash: int | None = None

    #: set exactly once when the node is interned; None = not canonical
    _intern_id: int | None = None

    def _key_fields(self) -> tuple:
        """The structural identity of this node (children + parameters)."""
        raise NotImplementedError

    def _build_args(self) -> tuple:
        """Constructor arguments that reproduce this node (pickling)."""
        return self._key_fields()

    def _rebuild(self, children: tuple["Formula", ...]) -> "Formula":
        """This node with its children replaced (leaves return self)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return self._key_fields() == other._key_fields()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.__class__.__name__, self._key_fields()))
            object.__setattr__(self, "_hash", h)
        return h

    def __reduce__(self):
        return (_restore_interned, (self.__class__, self._build_args()))

    def children(self) -> tuple["Formula", ...]:
        """The direct subformulas of this node."""
        return ()

    # -- structural measures ----------------------------------------------

    def size(self) -> int:
        """Number of AST nodes (the paper's "number of sub-formulas")."""
        return 1 + sum(child.size() for child in self.children())

    def temporal_depth(self) -> int:
        """Maximum nesting depth of temporal operators.

        The paper observes (Fig 5a) that runtime depends on this depth.
        """
        inner = max((child.temporal_depth() for child in self.children()), default=0)
        return inner + (1 if self.is_temporal() else 0)

    def is_temporal(self) -> bool:
        """True for U/F/G nodes."""
        return isinstance(self, (Until, Eventually, Always))

    def atoms(self) -> frozenset["Atom"]:
        """All atomic propositions occurring in the formula."""
        found: set[Atom] = set()
        for node in self.walk():
            if isinstance(node, Atom):
                found.add(node)
        return frozenset(found)

    def walk(self) -> Iterator["Formula"]:
        """Pre-order iteration over all nodes of the AST."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- operator sugar -----------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def implies(self, other: "Formula") -> "Formula":
        """``self -> other``, desugared to ``!self | other``."""
        return lor(lnot(self), other)


@dataclass(frozen=True, eq=False)
class TrueConst(Formula):
    """The constant ``true``."""

    def _key_fields(self) -> tuple:
        return ()

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class FalseConst(Formula):
    """The constant ``false``."""

    def _key_fields(self) -> tuple:
        return ()

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def __str__(self) -> str:
        return "false"


#: Interned singletons — always compare equal to fresh instances, but
#: reusing these keeps formula construction allocation-free on the hot
#: simplification path.
TRUE = _intern_node(TrueConst())
FALSE = _intern_node(FalseConst())

#: Arena ids of the constants — the columnar kernel's verdict sentinels.
#: Interned first, so these are always 0 and 1.
TRUE_ID: int = TRUE._intern_id
FALSE_ID: int = FALSE._intern_id


@dataclass(frozen=True, eq=False)
class Atom(Formula):
    """An atomic proposition, identified by name.

    Names are free-form; the blockchain specs use dotted, argumented names
    such as ``apr.asset_redeemed(bob)``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulaError("atom name must be non-empty")

    def _key_fields(self) -> tuple:
        return (self.name,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        """Truth of this atom in a state (propositional membership)."""
        return self.name in props

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class PredicateAtom(Atom):
    """An atom whose truth is a predicate over a state's numeric valuation.

    This implements the paper's remark (Section V-A) that for formulas
    involving non-boolean variables (e.g. ``x1 + x2 <= 7``, or the payoff
    sums in the blockchain specs) the labelling function mu is updated
    accordingly.  Equality and hashing use the name only, so two predicate
    atoms with the same name are the same proposition; keep names unique.
    """

    predicate: Callable[[Mapping[str, float]], bool] = field(compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.predicate is None:
            raise FormulaError(f"predicate atom {self.name!r} needs a predicate")

    def _build_args(self) -> tuple:
        # Reconstruction needs the predicate; identity is the name alone.
        return (self.name, self.predicate)

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        return bool(self.predicate(valuation))

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True, eq=False)
class Not(Formula):
    """Negation ``!phi``."""

    operand: Formula
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Not(children[0])

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class And(Formula):
    """N-ary conjunction. Use :func:`land` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("And requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _key_fields(self) -> tuple:
        return (self.operands,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return And(children)

    def __str__(self) -> str:
        return " & ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True, eq=False)
class Or(Formula):
    """N-ary disjunction. Use :func:`lor` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("Or requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _key_fields(self) -> tuple:
        return (self.operands,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Or(children)

    def __str__(self) -> str:
        return " | ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True, eq=False)
class Until(Formula):
    """``phi1 U_I phi2`` — phi2 within I, phi1 at every state before it."""

    left: Formula
    right: Formula
    interval: Interval
    arity = 2

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def _key_fields(self) -> tuple:
        return (self.left, self.right, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Until(children[0], children[1], self.interval)

    def __str__(self) -> str:
        return f"{_paren(self.left)} U{self.interval} {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class Eventually(Formula):
    """``F_I phi`` — phi at some state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Eventually(children[0], self.interval)

    def __str__(self) -> str:
        return f"F{self.interval} {_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class Always(Formula):
    """``G_I phi`` — phi at every state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Always(children[0], self.interval)

    def __str__(self) -> str:
        return f"G{self.interval} {_paren(self.operand)}"


def _paren(formula: Formula) -> str:
    """Parenthesise compound operands for unambiguous printing."""
    if isinstance(formula, (And, Or, Until)):
        return f"({formula})"
    return str(formula)


# ---------------------------------------------------------------------------
# Smart constructors.
#
# These apply only *local*, constant-folding simplifications; they are what
# the progression rules (Section IV) rely on for the "trivial cases" of
# disjunction/conjunction progression.  Deeper rewriting lives in
# repro.mtl.rewrite.
# ---------------------------------------------------------------------------


def atom(name: str) -> Atom:
    """Build an (interned) atomic proposition."""
    return _mk(Atom, name)


def lnot(operand: Formula) -> Formula:
    """Simplifying negation: folds constants and double negation."""
    if isinstance(operand, TrueConst):
        return FALSE
    if isinstance(operand, FalseConst):
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return _mk(Not, operand)


def land(*operands: Formula) -> Formula:
    """Simplifying n-ary conjunction.

    Folds constants, flattens nested conjunctions, deduplicates operands
    while preserving first-occurrence order, and detects ``p & !p``.
    """
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, FalseConst):
            return FALSE
        if isinstance(op, TrueConst):
            continue
        parts = op.operands if isinstance(op, And) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return _mk(And, tuple(flat))


def lor(*operands: Formula) -> Formula:
    """Simplifying n-ary disjunction (dual of :func:`land`)."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, TrueConst):
            return TRUE
        if isinstance(op, FalseConst):
            continue
        parts = op.operands if isinstance(op, Or) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _mk(Or, tuple(flat))


def implies(left: Formula, right: Formula) -> Formula:
    """``left -> right`` desugared to ``!left | right``."""
    return lor(lnot(left), right)


def until(left: Formula, right: Formula, interval: Interval | None = None) -> Formula:
    """``left U_I right``; interval defaults to ``[0, inf)``."""
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    return _mk(Until, left, right, interval)


def eventually(operand: Formula, interval: Interval | None = None) -> Formula:
    """``F_I operand``; interval defaults to ``[0, inf)``.

    Folding is finite-trace-aware: an empty window can never produce a
    witness (``false``), and ``F_I false`` is ``false``.  ``F_I true`` is
    deliberately *not* folded to ``true``: the strong semantics demands
    some state whose offset lands in ``I``, and a residual formula may end
    up evaluated against an empty remainder (where it must close to
    ``false``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    if isinstance(operand, FalseConst):
        return FALSE
    return _mk(Eventually, operand, interval)


def always(operand: Formula, interval: Interval | None = None) -> Formula:
    """``G_I operand``; interval defaults to ``[0, inf)``.

    Dual folding: an empty window is vacuously satisfied and ``G_I true``
    is ``true``.  ``G_I false`` is deliberately *not* folded to ``false``:
    the weak semantics holds vacuously when no state ever lands in ``I``
    (in particular on an empty remainder, where residuals close to
    ``true``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return TRUE
    if isinstance(operand, TrueConst):
        return TRUE
    return _mk(Always, operand, interval)


# Short aliases used pervasively by the spec modules.
F = eventually
G = always
U = until


# ---------------------------------------------------------------------------
# Id-level smart constructors.
#
# These are the arena-row counterparts of the object constructors above and
# MUST mirror their simplification semantics exactly — the columnar
# progression kernel builds residuals through them, and the differential
# harness asserts bit-identical residual structures against the object
# path.  They never materialize Formula objects; new structures become
# bare arena rows via :meth:`InternArena.row_id`.  Intervals travel as
# encoded ``(lo, hi)`` int pairs (``hi`` may be :data:`IV_INF`); an empty
# window is ``hi != IV_INF and hi <= lo``.
# ---------------------------------------------------------------------------


def id_lnot(x: int) -> int:
    """Id-level :func:`lnot`: folds constants and double negation."""
    kind = ARENA.kinds[x]
    if kind == KIND_TRUE:
        return FALSE_ID
    if kind == KIND_FALSE:
        return TRUE_ID
    if kind == KIND_NOT:
        return ARENA.child_ids[ARENA.child_off[x]]
    return ARENA.row_id((KIND_NOT, x), KIND_NOT, (x,))


def _id_complement_in(flat: list[int], seen: set[int]) -> bool:
    """True when some member's negation is also a member.

    Mirrors the object path's ``lnot(op) in seen`` check without
    allocating: ``!x`` either is ``x``'s child (when ``x`` is a Not) or
    is the already-interned ``Not(x)`` row — a negation row that was
    never interned cannot be in ``seen``.
    """
    kinds = ARENA.kinds
    child_ids = ARENA.child_ids
    child_off = ARENA.child_off
    by_key = ARENA.by_key
    for x in flat:
        if kinds[x] == KIND_NOT:
            neg: int | None = child_ids[child_off[x]]
        else:
            neg = by_key.get((KIND_NOT, x))
        if neg is not None and neg in seen:
            return True
    return False


def id_land(ids) -> int:
    """Id-level :func:`land`: folds, flattens, dedups, detects ``p & !p``."""
    flat: list[int] = []
    seen: set[int] = set()
    kinds = ARENA.kinds
    for x in ids:
        kind = kinds[x]
        if kind == KIND_FALSE:
            return FALSE_ID
        if kind == KIND_TRUE:
            continue
        parts = ARENA.children(x) if kind == KIND_AND else (x,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    if _id_complement_in(flat, seen):
        return FALSE_ID
    if not flat:
        return TRUE_ID
    if len(flat) == 1:
        return flat[0]
    return ARENA.row_id((KIND_AND, *flat), KIND_AND, tuple(flat))


def id_lor(ids) -> int:
    """Id-level :func:`lor` (dual of :func:`id_land`)."""
    flat: list[int] = []
    seen: set[int] = set()
    kinds = ARENA.kinds
    for x in ids:
        kind = kinds[x]
        if kind == KIND_TRUE:
            return TRUE_ID
        if kind == KIND_FALSE:
            continue
        parts = ARENA.children(x) if kind == KIND_OR else (x,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    if _id_complement_in(flat, seen):
        return TRUE_ID
    if not flat:
        return FALSE_ID
    if len(flat) == 1:
        return flat[0]
    return ARENA.row_id((KIND_OR, *flat), KIND_OR, tuple(flat))


def id_until(left: int, right: int, lo: int, hi: int) -> int:
    """Id-level :func:`until` on an encoded interval."""
    if hi != IV_INF and hi <= lo:
        return FALSE_ID
    return ARENA.row_id(
        (KIND_UNTIL, left, right, lo, hi), KIND_UNTIL, (left, right), lo, hi
    )


def id_eventually(operand: int, lo: int, hi: int) -> int:
    """Id-level :func:`eventually` (``F false`` folds, ``F true`` does not)."""
    if hi != IV_INF and hi <= lo:
        return FALSE_ID
    if ARENA.kinds[operand] == KIND_FALSE:
        return FALSE_ID
    return ARENA.row_id(
        (KIND_EVENTUALLY, operand, lo, hi), KIND_EVENTUALLY, (operand,), lo, hi
    )


def id_always(operand: int, lo: int, hi: int) -> int:
    """Id-level :func:`always` (``G true`` folds, ``G false`` does not)."""
    if hi != IV_INF and hi <= lo:
        return TRUE_ID
    if ARENA.kinds[operand] == KIND_TRUE:
        return TRUE_ID
    return ARENA.row_id(
        (KIND_ALWAYS, operand, lo, hi), KIND_ALWAYS, (operand,), lo, hi
    )
