"""Abstract syntax trees for metric temporal logic (MTL) formulas.

The grammar follows the paper (Section II-B):

    phi ::= p | !phi | phi1 | phi2 | phi1 U_I phi2

with the usual derived operators kept as first-class nodes because the
progression algorithms (Section IV) treat them directly:

    F_I phi  ("eventually")   =  true U_I phi
    G_I phi  ("always")       =  !F_I !phi

``phi1 -> phi2`` and ``phi1 & phi2`` desugar to ``!phi1 | phi2`` and
``!(!phi1 | !phi2)`` would lose readability, so conjunction is also a
first-class n-ary node; implication desugars at construction time.

All nodes are immutable and hashable.  Hash-consing is not required — the
verdict enumerator deduplicates progressed formulas via ``==``/``hash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import FormulaError
from repro.mtl.interval import Interval


class Formula:
    """Base class for all MTL formula nodes."""

    #: subclasses override; used for cheap structural dispatch
    arity: int = 0

    def children(self) -> tuple["Formula", ...]:
        """The direct subformulas of this node."""
        return ()

    # -- structural measures ----------------------------------------------

    def size(self) -> int:
        """Number of AST nodes (the paper's "number of sub-formulas")."""
        return 1 + sum(child.size() for child in self.children())

    def temporal_depth(self) -> int:
        """Maximum nesting depth of temporal operators.

        The paper observes (Fig 5a) that runtime depends on this depth.
        """
        inner = max((child.temporal_depth() for child in self.children()), default=0)
        return inner + (1 if self.is_temporal() else 0)

    def is_temporal(self) -> bool:
        """True for U/F/G nodes."""
        return isinstance(self, (Until, Eventually, Always))

    def atoms(self) -> frozenset["Atom"]:
        """All atomic propositions occurring in the formula."""
        found: set[Atom] = set()
        for node in self.walk():
            if isinstance(node, Atom):
                found.add(node)
        return frozenset(found)

    def walk(self) -> Iterator["Formula"]:
        """Pre-order iteration over all nodes of the AST."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- operator sugar -----------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def implies(self, other: "Formula") -> "Formula":
        """``self -> other``, desugared to ``!self | other``."""
        return lor(lnot(self), other)


@dataclass(frozen=True)
class TrueConst(Formula):
    """The constant ``true``."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseConst(Formula):
    """The constant ``false``."""

    def __str__(self) -> str:
        return "false"


#: Singletons — always compare equal to fresh instances, but reusing these
#: keeps formula construction allocation-free on the hot simplification path.
TRUE = TrueConst()
FALSE = FalseConst()


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition, identified by name.

    Names are free-form; the blockchain specs use dotted, argumented names
    such as ``apr.asset_redeemed(bob)``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulaError("atom name must be non-empty")

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        """Truth of this atom in a state (propositional membership)."""
        return self.name in props

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PredicateAtom(Atom):
    """An atom whose truth is a predicate over a state's numeric valuation.

    This implements the paper's remark (Section V-A) that for formulas
    involving non-boolean variables (e.g. ``x1 + x2 <= 7``, or the payoff
    sums in the blockchain specs) the labelling function mu is updated
    accordingly.  Equality and hashing use the name only, so two predicate
    atoms with the same name are the same proposition; keep names unique.
    """

    predicate: Callable[[Mapping[str, float]], bool] = field(compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.predicate is None:
            raise FormulaError(f"predicate atom {self.name!r} needs a predicate")

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        return bool(self.predicate(valuation))

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``!phi``."""

    operand: Formula
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction. Use :func:`land` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("And requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return " & ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction. Use :func:`lor` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("Or requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return " | ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True)
class Until(Formula):
    """``phi1 U_I phi2`` — phi2 within I, phi1 at every state before it."""

    left: Formula
    right: Formula
    interval: Interval
    arity = 2

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} U{self.interval} {_paren(self.right)}"


@dataclass(frozen=True)
class Eventually(Formula):
    """``F_I phi`` — phi at some state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"F{self.interval} {_paren(self.operand)}"


@dataclass(frozen=True)
class Always(Formula):
    """``G_I phi`` — phi at every state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"G{self.interval} {_paren(self.operand)}"


def _paren(formula: Formula) -> str:
    """Parenthesise compound operands for unambiguous printing."""
    if isinstance(formula, (And, Or, Until)):
        return f"({formula})"
    return str(formula)


# ---------------------------------------------------------------------------
# Smart constructors.
#
# These apply only *local*, constant-folding simplifications; they are what
# the progression rules (Section IV) rely on for the "trivial cases" of
# disjunction/conjunction progression.  Deeper rewriting lives in
# repro.mtl.rewrite.
# ---------------------------------------------------------------------------


def atom(name: str) -> Atom:
    """Build an atomic proposition."""
    return Atom(name)


def lnot(operand: Formula) -> Formula:
    """Simplifying negation: folds constants and double negation."""
    if isinstance(operand, TrueConst):
        return FALSE
    if isinstance(operand, FalseConst):
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def land(*operands: Formula) -> Formula:
    """Simplifying n-ary conjunction.

    Folds constants, flattens nested conjunctions, deduplicates operands
    while preserving first-occurrence order, and detects ``p & !p``.
    """
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, FalseConst):
            return FALSE
        if isinstance(op, TrueConst):
            continue
        parts = op.operands if isinstance(op, And) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def lor(*operands: Formula) -> Formula:
    """Simplifying n-ary disjunction (dual of :func:`land`)."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, TrueConst):
            return TRUE
        if isinstance(op, FalseConst):
            continue
        parts = op.operands if isinstance(op, Or) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(left: Formula, right: Formula) -> Formula:
    """``left -> right`` desugared to ``!left | right``."""
    return lor(lnot(left), right)


def until(left: Formula, right: Formula, interval: Interval | None = None) -> Formula:
    """``left U_I right``; interval defaults to ``[0, inf)``."""
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    return Until(left, right, interval)


def eventually(operand: Formula, interval: Interval | None = None) -> Formula:
    """``F_I operand``; interval defaults to ``[0, inf)``.

    Folding is finite-trace-aware: an empty window can never produce a
    witness (``false``), and ``F_I false`` is ``false``.  ``F_I true`` is
    deliberately *not* folded to ``true``: the strong semantics demands
    some state whose offset lands in ``I``, and a residual formula may end
    up evaluated against an empty remainder (where it must close to
    ``false``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    if isinstance(operand, FalseConst):
        return FALSE
    return Eventually(operand, interval)


def always(operand: Formula, interval: Interval | None = None) -> Formula:
    """``G_I operand``; interval defaults to ``[0, inf)``.

    Dual folding: an empty window is vacuously satisfied and ``G_I true``
    is ``true``.  ``G_I false`` is deliberately *not* folded to ``false``:
    the weak semantics holds vacuously when no state ever lands in ``I``
    (in particular on an empty remainder, where residuals close to
    ``true``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return TRUE
    if isinstance(operand, TrueConst):
        return TRUE
    return Always(operand, interval)


# Short aliases used pervasively by the spec modules.
F = eventually
G = always
U = until
