"""Abstract syntax trees for metric temporal logic (MTL) formulas.

The grammar follows the paper (Section II-B):

    phi ::= p | !phi | phi1 | phi2 | phi1 U_I phi2

with the usual derived operators kept as first-class nodes because the
progression algorithms (Section IV) treat them directly:

    F_I phi  ("eventually")   =  true U_I phi
    G_I phi  ("always")       =  !F_I !phi

``phi1 -> phi2`` and ``phi1 & phi2`` desugar to ``!phi1 | phi2`` and
``!(!phi1 | !phi2)`` would lose readability, so conjunction is also a
first-class n-ary node; implication desugars at construction time.

All nodes are immutable and hashable, and the smart constructors
hash-cons ("intern") them: structurally equal formulas built through
:func:`atom`/:func:`lnot`/:func:`land`/:func:`lor`/:func:`until`/
:func:`eventually`/:func:`always` are the *same object*, so the hot
monitoring loop's residual-dict operations run on cached hashes and
identity equality instead of re-walking formula trees.  Directly
constructed nodes (``Not(x)``) still compare structurally; pass them
through :func:`intern_formula` to canonicalize.  Interned instances are
held weakly, so residuals from a long-lived monitoring service are
garbage-collected once no monitor carries them.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import FormulaError
from repro.mtl.interval import Interval

#: Canonical instance per structural equivalence class, held weakly so
#: formulas no monitor references any more can be collected.  Keys are
#: ``(node class, structural fields)``; the lock only guards insertion
#: (lookups ride on the GIL).
_INTERN: "weakref.WeakValueDictionary[tuple, Formula]" = weakref.WeakValueDictionary()
_INTERN_LOCK = threading.Lock()
_INTERN_IDS = itertools.count()


def _reset_intern_lock_after_fork() -> None:
    """Give forked children a fresh intern lock.

    Worker pools may fork from a background thread while another thread
    is mid-``_intern_node`` (the segment-parallel orchestrator overlaps
    pool spawning with prefix enumeration); the child would inherit the
    lock in its held state and deadlock on its first formula
    construction.  The table itself is GIL-consistent at fork time.
    """
    global _INTERN_LOCK
    _INTERN_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not available on Windows (spawn-only)
    os.register_at_fork(after_in_child=_reset_intern_lock_after_fork)


def _intern_node(node: "Formula") -> "Formula":
    """Return the canonical instance structurally equal to ``node``."""
    key = (node.__class__, node._key_fields())
    found = _INTERN.get(key)
    if found is not None:
        return found
    with _INTERN_LOCK:
        found = _INTERN.get(key)
        if found is not None:
            return found
        object.__setattr__(node, "_intern_id", next(_INTERN_IDS))
        _INTERN[key] = node
        return node


def _mk(cls, *fields) -> "Formula":
    """Interning constructor: look the node up before building it."""
    node = _INTERN.get((cls, fields))
    if node is not None:
        return node
    return _intern_node(cls(*fields))


def intern_formula(formula: "Formula") -> "Formula":
    """The canonical (interned) instance equal to ``formula``.

    Recursively canonicalizes directly constructed subtrees; formulas
    built through the smart constructors come back unchanged.  Interned
    formulas compare by identity, carry a cached hash, and expose a
    process-unique :func:`intern_id`.
    """
    if formula._intern_id is not None:
        return formula
    children = formula.children()
    if children:
        canonical = tuple(intern_formula(child) for child in children)
        if any(new is not old for new, old in zip(canonical, children)):
            formula = formula._rebuild(canonical)
            if formula._intern_id is not None:
                return formula
    return _intern_node(formula)


def intern_id(formula: "Formula") -> int:
    """Process-unique id of the formula's structural equivalence class.

    Cheap total order for deterministic tie-breaking (residual-shard
    splits sort by it instead of stringifying formulas); ids are stable
    within a process but *not* across processes or runs.
    """
    node = formula if formula._intern_id is not None else intern_formula(formula)
    return node._intern_id


def interned_count() -> int:
    """Number of live interned formulas (diagnostics and tests)."""
    return len(_INTERN)


def _restore_interned(cls, args) -> "Formula":
    """Unpickle hook: rebuild and re-intern in the receiving process."""
    return intern_formula(cls(*args))


class Formula:
    """Base class for all MTL formula nodes."""

    #: subclasses override; used for cheap structural dispatch
    arity: int = 0

    #: lazily cached structural hash (instances shadow via object.__setattr__)
    _hash: int | None = None

    #: set exactly once when the node is interned; None = not canonical
    _intern_id: int | None = None

    def _key_fields(self) -> tuple:
        """The structural identity of this node (children + parameters)."""
        raise NotImplementedError

    def _build_args(self) -> tuple:
        """Constructor arguments that reproduce this node (pickling)."""
        return self._key_fields()

    def _rebuild(self, children: tuple["Formula", ...]) -> "Formula":
        """This node with its children replaced (leaves return self)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return self._key_fields() == other._key_fields()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.__class__.__name__, self._key_fields()))
            object.__setattr__(self, "_hash", h)
        return h

    def __reduce__(self):
        return (_restore_interned, (self.__class__, self._build_args()))

    def children(self) -> tuple["Formula", ...]:
        """The direct subformulas of this node."""
        return ()

    # -- structural measures ----------------------------------------------

    def size(self) -> int:
        """Number of AST nodes (the paper's "number of sub-formulas")."""
        return 1 + sum(child.size() for child in self.children())

    def temporal_depth(self) -> int:
        """Maximum nesting depth of temporal operators.

        The paper observes (Fig 5a) that runtime depends on this depth.
        """
        inner = max((child.temporal_depth() for child in self.children()), default=0)
        return inner + (1 if self.is_temporal() else 0)

    def is_temporal(self) -> bool:
        """True for U/F/G nodes."""
        return isinstance(self, (Until, Eventually, Always))

    def atoms(self) -> frozenset["Atom"]:
        """All atomic propositions occurring in the formula."""
        found: set[Atom] = set()
        for node in self.walk():
            if isinstance(node, Atom):
                found.add(node)
        return frozenset(found)

    def walk(self) -> Iterator["Formula"]:
        """Pre-order iteration over all nodes of the AST."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- operator sugar -----------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    def implies(self, other: "Formula") -> "Formula":
        """``self -> other``, desugared to ``!self | other``."""
        return lor(lnot(self), other)


@dataclass(frozen=True, eq=False)
class TrueConst(Formula):
    """The constant ``true``."""

    def _key_fields(self) -> tuple:
        return ()

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class FalseConst(Formula):
    """The constant ``false``."""

    def _key_fields(self) -> tuple:
        return ()

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def __str__(self) -> str:
        return "false"


#: Interned singletons — always compare equal to fresh instances, but
#: reusing these keeps formula construction allocation-free on the hot
#: simplification path.
TRUE = _intern_node(TrueConst())
FALSE = _intern_node(FalseConst())


@dataclass(frozen=True, eq=False)
class Atom(Formula):
    """An atomic proposition, identified by name.

    Names are free-form; the blockchain specs use dotted, argumented names
    such as ``apr.asset_redeemed(bob)``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulaError("atom name must be non-empty")

    def _key_fields(self) -> tuple:
        return (self.name,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        """Truth of this atom in a state (propositional membership)."""
        return self.name in props

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class PredicateAtom(Atom):
    """An atom whose truth is a predicate over a state's numeric valuation.

    This implements the paper's remark (Section V-A) that for formulas
    involving non-boolean variables (e.g. ``x1 + x2 <= 7``, or the payoff
    sums in the blockchain specs) the labelling function mu is updated
    accordingly.  Equality and hashing use the name only, so two predicate
    atoms with the same name are the same proposition; keep names unique.
    """

    predicate: Callable[[Mapping[str, float]], bool] = field(compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.predicate is None:
            raise FormulaError(f"predicate atom {self.name!r} needs a predicate")

    def _build_args(self) -> tuple:
        # Reconstruction needs the predicate; identity is the name alone.
        return (self.name, self.predicate)

    def holds_in(self, props: frozenset[str], valuation: Mapping[str, float]) -> bool:
        return bool(self.predicate(valuation))

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True, eq=False)
class Not(Formula):
    """Negation ``!phi``."""

    operand: Formula
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Not(children[0])

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class And(Formula):
    """N-ary conjunction. Use :func:`land` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("And requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _key_fields(self) -> tuple:
        return (self.operands,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return And(children)

    def __str__(self) -> str:
        return " & ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True, eq=False)
class Or(Formula):
    """N-ary disjunction. Use :func:`lor` to build simplified instances."""

    operands: tuple[Formula, ...]
    arity = -1

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise FormulaError("Or requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def _key_fields(self) -> tuple:
        return (self.operands,)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Or(children)

    def __str__(self) -> str:
        return " | ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True, eq=False)
class Until(Formula):
    """``phi1 U_I phi2`` — phi2 within I, phi1 at every state before it."""

    left: Formula
    right: Formula
    interval: Interval
    arity = 2

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def _key_fields(self) -> tuple:
        return (self.left, self.right, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Until(children[0], children[1], self.interval)

    def __str__(self) -> str:
        return f"{_paren(self.left)} U{self.interval} {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class Eventually(Formula):
    """``F_I phi`` — phi at some state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Eventually(children[0], self.interval)

    def __str__(self) -> str:
        return f"F{self.interval} {_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class Always(Formula):
    """``G_I phi`` — phi at every state whose offset falls in I."""

    operand: Formula
    interval: Interval
    arity = 1

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key_fields(self) -> tuple:
        return (self.operand, self.interval)

    def _rebuild(self, children: tuple[Formula, ...]) -> Formula:
        return Always(children[0], self.interval)

    def __str__(self) -> str:
        return f"G{self.interval} {_paren(self.operand)}"


def _paren(formula: Formula) -> str:
    """Parenthesise compound operands for unambiguous printing."""
    if isinstance(formula, (And, Or, Until)):
        return f"({formula})"
    return str(formula)


# ---------------------------------------------------------------------------
# Smart constructors.
#
# These apply only *local*, constant-folding simplifications; they are what
# the progression rules (Section IV) rely on for the "trivial cases" of
# disjunction/conjunction progression.  Deeper rewriting lives in
# repro.mtl.rewrite.
# ---------------------------------------------------------------------------


def atom(name: str) -> Atom:
    """Build an (interned) atomic proposition."""
    return _mk(Atom, name)


def lnot(operand: Formula) -> Formula:
    """Simplifying negation: folds constants and double negation."""
    if isinstance(operand, TrueConst):
        return FALSE
    if isinstance(operand, FalseConst):
        return TRUE
    if isinstance(operand, Not):
        return operand.operand
    return _mk(Not, operand)


def land(*operands: Formula) -> Formula:
    """Simplifying n-ary conjunction.

    Folds constants, flattens nested conjunctions, deduplicates operands
    while preserving first-occurrence order, and detects ``p & !p``.
    """
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, FalseConst):
            return FALSE
        if isinstance(op, TrueConst):
            continue
        parts = op.operands if isinstance(op, And) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return _mk(And, tuple(flat))


def lor(*operands: Formula) -> Formula:
    """Simplifying n-ary disjunction (dual of :func:`land`)."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if isinstance(op, TrueConst):
            return TRUE
        if isinstance(op, FalseConst):
            continue
        parts = op.operands if isinstance(op, Or) else (op,)
        for part in parts:
            if part in seen:
                continue
            seen.add(part)
            flat.append(part)
    for op in flat:
        if lnot(op) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _mk(Or, tuple(flat))


def implies(left: Formula, right: Formula) -> Formula:
    """``left -> right`` desugared to ``!left | right``."""
    return lor(lnot(left), right)


def until(left: Formula, right: Formula, interval: Interval | None = None) -> Formula:
    """``left U_I right``; interval defaults to ``[0, inf)``."""
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    return _mk(Until, left, right, interval)


def eventually(operand: Formula, interval: Interval | None = None) -> Formula:
    """``F_I operand``; interval defaults to ``[0, inf)``.

    Folding is finite-trace-aware: an empty window can never produce a
    witness (``false``), and ``F_I false`` is ``false``.  ``F_I true`` is
    deliberately *not* folded to ``true``: the strong semantics demands
    some state whose offset lands in ``I``, and a residual formula may end
    up evaluated against an empty remainder (where it must close to
    ``false``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return FALSE
    if isinstance(operand, FalseConst):
        return FALSE
    return _mk(Eventually, operand, interval)


def always(operand: Formula, interval: Interval | None = None) -> Formula:
    """``G_I operand``; interval defaults to ``[0, inf)``.

    Dual folding: an empty window is vacuously satisfied and ``G_I true``
    is ``true``.  ``G_I false`` is deliberately *not* folded to ``false``:
    the weak semantics holds vacuously when no state ever lands in ``I``
    (in particular on an empty remainder, where residuals close to
    ``true``).
    """
    interval = interval if interval is not None else Interval.always()
    if interval.is_empty():
        return TRUE
    if isinstance(operand, TrueConst):
        return TRUE
    return _mk(Always, operand, interval)


# Short aliases used pervasively by the spec modules.
F = eventually
G = always
U = until
