"""Finite-trace MTL semantics (the paper's ``|=_F``, Section II-B).

Verdicts are the two-valued set B2 = {True, False}:

* ``p``            — membership of ``p`` in the current state;
* ``phi1 U_I phi2`` — True iff some position ``j >= i`` has
  ``tau_j - tau_i in I`` and satisfies ``phi2`` with ``phi1`` holding at
  every position in ``[i, j)``; False otherwise (no witness inside the
  finite trace means *violation* — the "strong" reading);
* ``F_I phi``      — strong: no witness in the trace means False;
* ``G_I phi``      — weak: no counterexample in the trace means True.

These strong/weak readings are exactly the paper's example contrasting
``F_I p`` and ``G_I p`` on finite traces.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.mtl.ast import (
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Not,
    Or,
    TrueConst,
    Until,
)
from repro.mtl.trace import TimedTrace


def evaluate(trace: TimedTrace, formula: Formula, position: int = 0) -> bool:
    """Evaluate ``[(alpha, tau_bar, position) |=_F formula]``.

    Raises :class:`TraceError` on an empty trace — the finite semantics
    needs at least one observation.
    """
    if len(trace) == 0:
        raise TraceError("cannot evaluate MTL semantics on an empty trace")
    if not 0 <= position < len(trace):
        raise TraceError(f"position {position} out of range for trace of length {len(trace)}")
    evaluator = _Evaluator(trace)
    return evaluator.check(formula, position)


def satisfies(trace: TimedTrace, formula: Formula) -> bool:
    """``(alpha, tau_bar) |=_F formula`` — evaluation at position 0."""
    return evaluate(trace, formula, 0)


class _Evaluator:
    """Memoized top-down evaluator for one fixed trace.

    Memoization keys on ``(formula, position)``; formula nodes are
    immutable and hashable so this is a plain dictionary cache.
    """

    def __init__(self, trace: TimedTrace) -> None:
        self._trace = trace
        self._cache: dict[tuple[Formula, int], bool] = {}

    def check(self, formula: Formula, i: int) -> bool:
        key = (formula, i)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._dispatch(formula, i)
        self._cache[key] = result
        return result

    def _dispatch(self, formula: Formula, i: int) -> bool:
        trace = self._trace
        if isinstance(formula, TrueConst):
            return True
        if isinstance(formula, FalseConst):
            return False
        if isinstance(formula, Atom):
            state = trace.state(i)
            return formula.holds_in(state.props, state.valuation)
        if isinstance(formula, Not):
            return not self.check(formula.operand, i)
        if isinstance(formula, And):
            return all(self.check(op, i) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self.check(op, i) for op in formula.operands)
        if isinstance(formula, Eventually):
            return any(
                trace.time(j) - trace.time(i) in formula.interval
                and self.check(formula.operand, j)
                for j in range(i, len(trace))
            )
        if isinstance(formula, Always):
            return all(
                self.check(formula.operand, j)
                for j in range(i, len(trace))
                if trace.time(j) - trace.time(i) in formula.interval
            )
        if isinstance(formula, Until):
            for j in range(i, len(trace)):
                if trace.time(j) - trace.time(i) not in formula.interval:
                    continue
                if not self.check(formula.right, j):
                    continue
                if all(self.check(formula.left, k) for k in range(i, j)):
                    return True
            return False
        raise TypeError(f"unknown formula node: {formula!r}")
