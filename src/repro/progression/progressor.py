"""Formula progression for MTL over finite trace segments (Section IV).

Given a finite observed segment ``(alpha, tau_bar)`` and a *boundary time*
``b`` (the time at which the next segment begins), :func:`progress` rewrites
a formula ``phi`` into a residual formula ``phi'`` over the remainder such
that the whole trace satisfies ``phi`` iff the remainder satisfies ``phi'``
(Definition 3).  Residual temporal intervals are *anchored at b*: when the
next segment's first observation arrives at time ``t0' >= b``, apply
:func:`anchor_shift` with ``d = t0' - b`` before progressing again.

Relationship to the paper's Algorithms 1-3
------------------------------------------

The paper expresses the observed-window part of each rule with nested
``G[0,c)`` sub-progressions.  We use the equivalent *position-wise*
expansion, which is semantically exact even when several observations share
a timestamp (the nested-G phrasing would conflate same-time positions):

* ``G_I phi``  ->  AND over observed positions j with offset in I of
  ``Pr(j, phi)``, plus residual ``G_{I-D} phi`` when I extends past the
  boundary (Algorithm 1).
* ``F_I phi``  ->  OR over observed positions j with offset in I of
  ``Pr(j, phi)``, plus residual ``F_{I-D} phi`` (Algorithm 2).
* ``phi1 U_I phi2``  ->  OR over observed witnesses j (offset in I) of
  ``AND_{k in [i,j)} Pr(k, phi1) AND Pr(j, phi2)``, plus — when I extends
  past the boundary — ``AND_{k in [i,n]} Pr(k, phi1) AND phi1 U_{I-D}
  phi2`` (Algorithm 3; the paper factors the pre-interval phi1 conjunct
  out, we keep it per-witness which folds to the same formula).

where ``D = b - tau_i`` is the remaining-window offset at position ``i``.

End of computation
------------------

When no further observations will arrive, :func:`close` collapses residual
obligations to verdicts using the finite-MTL strong/weak split
(Section II-B): pending F/U obligations are violations, pending G
obligations are satisfied.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import MonitorError, TraceError
from repro.mtl.ast import (
    ARENA,
    FALSE,
    KIND_ALWAYS,
    KIND_AND,
    KIND_EVENTUALLY,
    KIND_FALSE,
    KIND_NOT,
    KIND_OR,
    KIND_TRUE,
    KIND_UNTIL,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Not,
    Or,
    TrueConst,
    Until,
    always,
    eventually,
    formula_of,
    intern_formula,
    land,
    lnot,
    lor,
    until,
)
from repro.mtl.interval import INF, Interval
from repro.mtl.trace import TimedTrace


def progress(trace: TimedTrace, formula: Formula, boundary: int) -> Formula:
    """Progress ``formula`` over the observed ``trace`` up to ``boundary``.

    ``boundary`` must be at least the trace's last timestamp; residual
    intervals come out anchored at ``boundary``.
    """
    if len(trace) == 0:
        raise TraceError("cannot progress over an empty trace; carry the formula instead")
    if boundary < trace.end_time:
        raise TraceError(
            f"boundary {boundary} lies before the last observation at {trace.end_time}"
        )
    return TraceProgressor(trace, boundary).progress(formula, 0)


class TraceProgressor:
    """Single-segment progression with ``(formula, position)`` memoization.

    Reusable across formulas for one ``(trace, boundary)`` pair — the
    verdict enumerator progresses every carried residual of a segment
    trace through one instance, so shared subformulas across residuals
    hit the same memo.  Formulas are interned on entry: the memo keys on
    ``(intern id, position)`` (two ints) instead of structurally hashing
    formula trees, which is what makes carried-residual-heavy workloads
    cheap (see DESIGN.md, "Hot path & performance").
    """

    def __init__(self, trace: TimedTrace, boundary: int, budget=None) -> None:
        self._trace = trace
        self._boundary = boundary
        self._budget = budget
        self._cache: dict[tuple[int, int], Formula] = {}
        self._offsets: dict[tuple[Interval, int], range] = {}

    def progress(self, formula: Formula, i: int) -> Formula:
        if self._budget is not None:
            self._budget.step()
        fid = formula._intern_id
        if fid is None:
            formula = intern_formula(formula)
            fid = formula._intern_id
        key = (fid, i)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._dispatch(formula, i)
        self._cache[key] = result
        return result

    def _dispatch(self, formula: Formula, i: int) -> Formula:
        trace = self._trace
        if isinstance(formula, TrueConst) or isinstance(formula, FalseConst):
            return formula
        if isinstance(formula, Atom):
            state = trace.state(i)
            return TRUE if formula.holds_in(state.props, state.valuation) else FALSE
        if isinstance(formula, Not):
            return lnot(self.progress(formula.operand, i))
        if isinstance(formula, And):
            return land(*(self.progress(op, i) for op in formula.operands))
        if isinstance(formula, Or):
            return lor(*(self.progress(op, i) for op in formula.operands))
        if isinstance(formula, Always):
            return self._progress_always(formula, i)
        if isinstance(formula, Eventually):
            return self._progress_eventually(formula, i)
        if isinstance(formula, Until):
            return self._progress_until(formula, i)
        raise TypeError(f"unknown formula node: {formula!r}")

    # -- temporal rules ------------------------------------------------------

    def _offsets_in_interval(self, i: int, interval: Interval) -> range:
        """Observed positions ``j >= i`` whose offset from position i is in I.

        Timestamps are non-decreasing, so the qualifying positions form a
        contiguous block found by binary search over the timestamp tuple
        (offset ``tau_j - tau_i in [start, end)`` iff ``tau_j`` lies in
        ``[tau_i + start, tau_i + end)``).  Memoized per ``(interval, i)``:
        distinct residuals overwhelmingly share windows.
        """
        key = (interval, i)
        cached = self._offsets.get(key)
        if cached is not None:
            return cached
        times = self._trace.times
        base = times[i]
        lo = bisect_left(times, base + interval.start, i)
        hi = len(times) if interval.end == INF else bisect_left(times, base + interval.end, lo)
        result = range(lo, hi)
        self._offsets[key] = result
        return result

    def _progress_always(self, formula: Always, i: int) -> Formula:
        trace = self._trace
        remaining = self._boundary - trace.time(i)
        conjuncts = [
            self.progress(formula.operand, j)
            for j in self._offsets_in_interval(i, formula.interval)
        ]
        if formula.interval.end > remaining:
            conjuncts.append(always(formula.operand, formula.interval.shift_down(remaining)))
        return land(*conjuncts) if conjuncts else TRUE

    def _progress_eventually(self, formula: Eventually, i: int) -> Formula:
        trace = self._trace
        remaining = self._boundary - trace.time(i)
        disjuncts = [
            self.progress(formula.operand, j)
            for j in self._offsets_in_interval(i, formula.interval)
        ]
        if formula.interval.end > remaining:
            disjuncts.append(eventually(formula.operand, formula.interval.shift_down(remaining)))
        return lor(*disjuncts) if disjuncts else FALSE

    def _progress_until(self, formula: Until, i: int) -> Formula:
        trace = self._trace
        remaining = self._boundary - trace.time(i)
        disjuncts: list[Formula] = []
        left_so_far: list[Formula] = []
        witnesses = self._offsets_in_interval(i, formula.interval)
        for j in range(i, len(trace)):
            if j in witnesses:
                disjuncts.append(land(*left_so_far, self.progress(formula.right, j)))
            left_so_far.append(self.progress(formula.left, j))
        if formula.interval.end > remaining:
            residual = until(formula.left, formula.right, formula.interval.shift_down(remaining))
            disjuncts.append(land(*left_so_far, residual))
        return lor(*disjuncts) if disjuncts else FALSE


# ---------------------------------------------------------------------------
# Residual-formula plumbing used by the monitor.
# ---------------------------------------------------------------------------


def anchor_shift(formula: Formula, d: int) -> Formula:
    """Re-anchor a residual formula forward by ``d`` time units.

    Residuals produced by :func:`progress` have their *outermost* temporal
    intervals anchored at the segment boundary ``b``.  When the next
    observation actually arrives at ``t0' = b + d``, those windows have
    partially elapsed; this shifts them down by ``d`` (clamping at zero —
    an elapsed F/U window becomes ``false``, an elapsed G window ``true``).
    Intervals nested *inside* temporal operators are relative to their own
    evaluation position and are left untouched.
    """
    if d < 0:
        raise MonitorError(f"cannot anchor-shift backwards (d={d})")
    if d == 0:
        return formula
    return _anchor_shift(formula, d)


def _anchor_shift(formula: Formula, d: int) -> Formula:
    if isinstance(formula, (TrueConst, FalseConst)):
        return formula
    if isinstance(formula, Not):
        return lnot(_anchor_shift(formula.operand, d))
    if isinstance(formula, And):
        return land(*(_anchor_shift(op, d) for op in formula.operands))
    if isinstance(formula, Or):
        return lor(*(_anchor_shift(op, d) for op in formula.operands))
    if isinstance(formula, Always):
        return always(formula.operand, formula.interval.shift_down(d))
    if isinstance(formula, Eventually):
        return eventually(formula.operand, formula.interval.shift_down(d))
    if isinstance(formula, Until):
        return until(formula.left, formula.right, formula.interval.shift_down(d))
    if isinstance(formula, Atom):
        raise MonitorError(
            f"residual formula contains a bare atom {formula!s}; "
            "atoms are always resolved during progression"
        )
    raise TypeError(f"unknown formula node: {formula!r}")


def close(formula: Formula) -> bool:
    """Final verdict for a residual when no further observations exist.

    Finite-MTL strong/weak split: F/U obligations pending at the end of the
    trace are violated, G obligations are satisfied.
    """
    fid = formula._intern_id
    if fid is None:
        fid = intern_formula(formula)._intern_id
    return close_id(fid)


def close_id(fid: int) -> bool:
    """:func:`close` over an arena id — the columnar kernel's verdict pass.

    Memoized in the arena's ``closed`` column (close is purely structural,
    so a verdict computed once is valid for the process lifetime; rows are
    never reclaimed).
    """
    cached = ARENA.closed[fid]
    if cached:
        return cached == 2
    kind = ARENA.kinds[fid]
    if kind == KIND_TRUE:
        result = True
    elif kind == KIND_FALSE:
        result = False
    elif kind == KIND_NOT:
        result = not close_id(ARENA.child_ids[ARENA.child_off[fid]])
    elif kind == KIND_AND:
        result = all(close_id(c) for c in ARENA.children(fid))
    elif kind == KIND_OR:
        result = any(close_id(c) for c in ARENA.children(fid))
    elif kind == KIND_EVENTUALLY or kind == KIND_UNTIL:
        result = False
    elif kind == KIND_ALWAYS:
        result = True
    else:  # atom / predicate rows have no end-of-trace verdict
        raise MonitorError(
            f"residual formula contains a bare atom {formula_of(fid)!s}; "
            "atoms are always resolved during progression"
        )
    ARENA.closed[fid] = 2 if result else 1
    return result
