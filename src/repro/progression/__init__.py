"""Formula progression for MTL over finite segments (paper Section IV)."""

from repro.progression.budget import Budget
from repro.progression.columnar import ColumnarSegmentProgressor
from repro.progression.progressor import anchor_shift, close, close_id, progress

__all__ = [
    "Budget",
    "ColumnarSegmentProgressor",
    "anchor_shift",
    "close",
    "close_id",
    "progress",
]
