"""Formula progression for MTL over finite segments (paper Section IV)."""

from repro.progression.progressor import anchor_shift, close, progress

__all__ = ["anchor_shift", "close", "progress"]
