"""Columnar progression: the flat-array residual kernel (hot path).

The verdict enumerator's inner loop progresses every carried residual
over every enumerated segment trace.  The object-path
:class:`~repro.progression.progressor.TraceProgressor` walks formula
trees recursively, memoizing per ``(intern id, position)`` — correct,
but each memo hit is still a dict probe on boxed objects and each node
visit a chain of ``isinstance`` checks.

:class:`ColumnarSegmentProgressor` replaces that walk with a batch pass
over the intern arena (:data:`repro.mtl.ast.ARENA`):

* the carried residual set is an ``(arena id, count)`` column;
* per distinct anchor shift ``d``, the kernel re-anchors the roots at
  the id level and compiles a *plan*: the ids reachable from the shifted
  roots, listed ascending — which **is** a topological order, because
  children are always interned before their parents — with per-node
  "programs" (kind code, child positions in the plan, encoded interval
  bounds) precomputed once;
* per trace, one flat memo ``res[local_index * n + position]`` of
  result ids replaces the per-formula memo dict: every node is visited
  exactly once per position, in one loop, with int-indexed reads —
  residuals sharing subformulas automatically share the work;
* interval windows resolve to contiguous position ranges by binary
  search over the (non-decreasing) timestamp tuple, computed once per
  distinct interval per trace;
* new residuals are built through the id-level smart constructors
  (:func:`~repro.mtl.ast.id_land` and friends), which mirror the object
  constructors' simplifications exactly — so the two paths produce
  bit-identical residual structures (the differential suite asserts
  this; ``REPRO_COLUMNAR=0`` selects the object path).

No :class:`~repro.mtl.ast.Formula` objects are touched anywhere in the
loop; :func:`~repro.mtl.ast.formula_of` materializes results only at
API boundaries (segment reports, snapshots, shard tasks).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict

from repro.errors import MonitorError
from repro.mtl.ast import (
    ARENA,
    FALSE_ID,
    IV_INF,
    KIND_ALWAYS,
    KIND_AND,
    KIND_ATOM,
    KIND_EVENTUALLY,
    KIND_FALSE,
    KIND_NOT,
    KIND_OR,
    KIND_PRED,
    KIND_TRUE,
    KIND_UNTIL,
    TRUE_ID,
    formula_of,
    id_always,
    id_eventually,
    id_land,
    id_lnot,
    id_lor,
    id_until,
    intern_formula,
)
from repro.mtl.trace import TimedTrace

__all__ = [
    "ColumnarSegmentProgressor",
    "pack_carried_column",
    "unpack_carried_column",
    "plan_cache_stats",
    "clear_plan_cache",
]


# -- the shared plan cache ----------------------------------------------------------
#
# Plans depend only on the shifted root ids and the (append-only) arena, so
# they are valid process-wide, not just for the one progressor instance that
# compiled them.  Successive ``stream_segment_outcomes`` calls on the same
# stream build a fresh progressor per segment but carry structurally
# recurring residual sets — keying by ``(root ids, shift)`` lets segment k+1
# reuse segment k's compilations instead of recompiling identical plans.

_PLAN_CACHE: "OrderedDict[tuple, tuple[list[tuple], list[int]]]" = OrderedDict()
_PLAN_CACHE_LIMIT = 256
_PLAN_LOCK = threading.Lock()
_PLAN_STATS = {"hits": 0, "misses": 0}


def _shared_plan(roots_key: tuple[int, ...], shift: int, compile_fn):
    key = (roots_key, shift)
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            _PLAN_STATS["hits"] += 1
            return plan
        _PLAN_STATS["misses"] += 1
    # Compile outside the lock: racing threads compile identical plans and
    # the last write wins — cheaper than holding the lock through _compile.
    plan = compile_fn(shift)
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the process-wide plan cache."""
    with _PLAN_LOCK:
        return {
            "hits": _PLAN_STATS["hits"],
            "misses": _PLAN_STATS["misses"],
            "size": len(_PLAN_CACHE),
        }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (tests)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_STATS["hits"] = 0
        _PLAN_STATS["misses"] = 0


class ColumnarSegmentProgressor:
    """Batch-progress one carried residual column over segment traces.

    Built once per segment from the merged ``(root id, count)`` pairs;
    reused for every trace the segment enumerates.  Anchor-shift results
    and compiled plans are memoized per distinct shift ``d`` (traces of
    a segment share a handful of start times).
    """

    __slots__ = ("_pairs", "_roots_key", "_shift_memo", "_plans")

    def __init__(self, pairs: list[tuple[int, int]]) -> None:
        self._pairs = pairs
        self._roots_key = tuple(fid for fid, _ in pairs)
        self._shift_memo: dict[tuple[int, int], int] = {}
        #: shift -> (programs, root plan positions) — a per-instance view
        #: of the process-wide :data:`_PLAN_CACHE` (no lock per trace).
        self._plans: dict[int, tuple[list[tuple], list[int]]] = {}

    # -- anchor shift (id level) ------------------------------------------------

    def shift_root(self, fid: int, d: int) -> int:
        """Re-anchor residual ``fid`` forward by ``d`` time units.

        The id-level mirror of
        :func:`~repro.progression.progressor.anchor_shift`: outermost
        temporal windows shift down by ``d`` (clamped — an elapsed F/U
        window folds to false, an elapsed G window to true), nested
        windows are untouched.
        """
        if d < 0:
            raise MonitorError(f"cannot anchor-shift backwards (d={d})")
        if d == 0:
            return fid
        return self._shift(fid, d)

    def _shift(self, fid: int, d: int) -> int:
        key = (fid, d)
        result = self._shift_memo.get(key)
        if result is not None:
            return result
        kind = ARENA.kinds[fid]
        if kind == KIND_TRUE or kind == KIND_FALSE:
            result = fid
        elif kind == KIND_NOT:
            result = id_lnot(self._shift(ARENA.child_ids[ARENA.child_off[fid]], d))
        elif kind == KIND_AND:
            result = id_land([self._shift(c, d) for c in ARENA.children(fid)])
        elif kind == KIND_OR:
            result = id_lor([self._shift(c, d) for c in ARENA.children(fid)])
        elif kind == KIND_ALWAYS or kind == KIND_EVENTUALLY or kind == KIND_UNTIL:
            lo = ARENA.iv_lo[fid] - d
            if lo < 0:
                lo = 0
            hi = ARENA.iv_hi[fid]
            if hi != IV_INF:
                hi -= d
                if hi < 0:
                    hi = 0
            off = ARENA.child_off[fid]
            if kind == KIND_ALWAYS:
                result = id_always(ARENA.child_ids[off], lo, hi)
            elif kind == KIND_EVENTUALLY:
                result = id_eventually(ARENA.child_ids[off], lo, hi)
            else:
                result = id_until(
                    ARENA.child_ids[off], ARENA.child_ids[off + 1], lo, hi
                )
        else:  # atom / predicate rows never survive progression
            raise MonitorError(
                f"residual formula contains a bare atom {formula_of(fid)!s}; "
                "atoms are always resolved during progression"
            )
        self._shift_memo[key] = result
        return result

    # -- plan compilation -------------------------------------------------------

    def _compile(self, shift: int) -> tuple[list[tuple], list[int]]:
        """Compile the per-shift plan: shifted roots, their reachable
        closure in ascending-id (= topological) order, and one program
        tuple per node with child positions pre-resolved.

        Program layout: ``(kind, payload, extra)`` where ``payload`` is
        the atom name / predicate / child plan position(s) and ``extra``
        carries ``(operand id(s), iv_lo, iv_hi)`` for temporal kinds
        (the *unprogressed* operand ids feed residual construction).
        """
        roots = [self.shift_root(fid, shift) for fid, _ in self._pairs]
        reachable: set[int] = set()
        stack = list(roots)
        while stack:
            fid = stack.pop()
            if fid in reachable:
                continue
            reachable.add(fid)
            stack.extend(ARENA.children(fid))
        universe = sorted(reachable)
        local = {fid: idx for idx, fid in enumerate(universe)}
        programs: list[tuple] = []
        for fid in universe:
            kind = ARENA.kinds[fid]
            if kind == KIND_TRUE or kind == KIND_FALSE:
                programs.append((kind, fid, None))
            elif kind == KIND_ATOM:
                programs.append((kind, ARENA.names[fid], None))
            elif kind == KIND_PRED:
                programs.append((kind, formula_of(fid).predicate, None))
            elif kind == KIND_NOT:
                programs.append(
                    (kind, local[ARENA.child_ids[ARENA.child_off[fid]]], None)
                )
            elif kind == KIND_AND or kind == KIND_OR:
                programs.append(
                    (kind, tuple(local[c] for c in ARENA.children(fid)), None)
                )
            elif kind == KIND_ALWAYS or kind == KIND_EVENTUALLY:
                operand = ARENA.child_ids[ARENA.child_off[fid]]
                programs.append(
                    (kind, local[operand], (operand, ARENA.iv_lo[fid], ARENA.iv_hi[fid]))
                )
            else:  # KIND_UNTIL
                off = ARENA.child_off[fid]
                left = ARENA.child_ids[off]
                right = ARENA.child_ids[off + 1]
                programs.append(
                    (
                        kind,
                        (local[left], local[right]),
                        (left, right, ARENA.iv_lo[fid], ARENA.iv_hi[fid]),
                    )
                )
        return programs, [local[r] for r in roots]

    # -- the batch pass ---------------------------------------------------------

    def progress_trace(
        self, trace: TimedTrace, shift: int, boundary: int, budget=None
    ) -> list[tuple[int, int]]:
        """Progress every carried residual over ``trace`` in one pass.

        Returns ``(residual id, count)`` pairs aligned with the carried
        column (one entry per root, counts passed through).  ``budget``
        (a :class:`~repro.progression.budget.Budget`) is stepped once per
        program row so a cancel lands within one checkpoint interval.
        """
        plan = self._plans.get(shift)
        if plan is None:
            plan = _shared_plan(self._roots_key, shift, self._compile)
            self._plans[shift] = plan
        programs, root_positions = plan
        if budget is not None:
            budget.step(len(programs))
        times = trace.times
        n = len(times)
        res = [0] * (len(programs) * n)
        positions = range(n)
        windows: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        props_by_pos: list[frozenset[str]] | None = None
        valuation_by_pos = None

        def window(lo_bound: int, hi_bound: int) -> tuple[list[int], list[int]]:
            """Per-position ``[wlo, whi)`` position ranges for one interval.

            Offsets ``tau_j - tau_i in [lo, hi)`` form a contiguous block
            because timestamps are non-decreasing; one bisect pair per
            position, shared by every node carrying this interval.
            """
            cached = windows.get((lo_bound, hi_bound))
            if cached is not None:
                return cached
            wlo = [0] * n
            whi = [0] * n
            for i in positions:
                base_time = times[i]
                low = bisect_left(times, base_time + lo_bound, i)
                wlo[i] = low
                whi[i] = (
                    n
                    if hi_bound == IV_INF
                    else bisect_left(times, base_time + hi_bound, low)
                )
            windows[(lo_bound, hi_bound)] = (wlo, whi)
            return wlo, whi

        for idx, (kind, payload, extra) in enumerate(programs):
            base = idx * n
            if kind == KIND_ATOM:
                if props_by_pos is None:
                    props_by_pos = [trace.state(i).props for i in positions]
                for i in positions:
                    res[base + i] = TRUE_ID if payload in props_by_pos[i] else FALSE_ID
            elif kind == KIND_NOT:
                cbase = payload * n
                for i in positions:
                    res[base + i] = id_lnot(res[cbase + i])
            elif kind == KIND_AND:
                cbases = [c * n for c in payload]
                for i in positions:
                    res[base + i] = id_land([res[cb + i] for cb in cbases])
            elif kind == KIND_OR:
                cbases = [c * n for c in payload]
                for i in positions:
                    res[base + i] = id_lor([res[cb + i] for cb in cbases])
            elif kind == KIND_ALWAYS or kind == KIND_EVENTUALLY:
                cbase = payload * n
                operand, iv_lo, iv_hi = extra
                wlo, whi = window(iv_lo, iv_hi)
                for i in positions:
                    parts = res[cbase + wlo[i] : cbase + whi[i]]
                    remaining = boundary - times[i]
                    if iv_hi == IV_INF or iv_hi > remaining:
                        s_lo = iv_lo - remaining
                        if s_lo < 0:
                            s_lo = 0
                        s_hi = IV_INF if iv_hi == IV_INF else iv_hi - remaining
                        if kind == KIND_ALWAYS:
                            parts.append(id_always(operand, s_lo, s_hi))
                        else:
                            parts.append(id_eventually(operand, s_lo, s_hi))
                    res[base + i] = (
                        id_land(parts) if kind == KIND_ALWAYS else id_lor(parts)
                    )
            elif kind == KIND_UNTIL:
                lpos, rpos = payload
                lbase = lpos * n
                rbase = rpos * n
                left, right, iv_lo, iv_hi = extra
                wlo, whi = window(iv_lo, iv_hi)
                for i in positions:
                    remaining = boundary - times[i]
                    disjuncts: list[int] = []
                    left_so_far: list[int] = []
                    lo_w = wlo[i]
                    hi_w = whi[i]
                    for j in range(i, n):
                        if lo_w <= j < hi_w:
                            disjuncts.append(
                                id_land(left_so_far + [res[rbase + j]])
                            )
                        left_so_far.append(res[lbase + j])
                    if iv_hi == IV_INF or iv_hi > remaining:
                        s_lo = iv_lo - remaining
                        if s_lo < 0:
                            s_lo = 0
                        s_hi = IV_INF if iv_hi == IV_INF else iv_hi - remaining
                        disjuncts.append(
                            id_land(
                                left_so_far + [id_until(left, right, s_lo, s_hi)]
                            )
                        )
                    res[base + i] = id_lor(disjuncts)
            elif kind == KIND_PRED:
                if valuation_by_pos is None:
                    valuation_by_pos = [trace.state(i).valuation for i in positions]
                for i in positions:
                    res[base + i] = (
                        TRUE_ID if payload(valuation_by_pos[i]) else FALSE_ID
                    )
            else:  # constants: payload is the id itself
                res[base : base + n] = [payload] * n
        return [
            (res[pos * n], count)
            for pos, (_, count) in zip(root_positions, self._pairs)
        ]


# -- carried-column wire form -------------------------------------------------------
#
# Arena ids are process-local, so a carried ``(id, count)`` column cannot
# cross the wire as ids.  The packed form ships the *structure* instead:
# the reachable closure of the roots as plain rows in ascending-id (=
# topological) order, each row referring to its children by local
# position.  The receiver replays the rows through ``ARENA.row_id`` —
# signature-level interning, no Formula objects materialized on either
# side.  Predicate atoms carry arbitrary callables that only pickle can
# move, so any closure containing one falls back to an object payload.

_COLUMN_ROWS = "rows"
_COLUMN_OBJECTS = "objects"


def pack_carried_column(pairs: list[tuple[int, int]]):
    """Pack a carried ``(arena id, count)`` column for the wire.

    Returns ``("rows", row_tuple, ((root_position, count), ...))`` in the
    object-free fast shape, or ``("objects", [(Formula, count), ...])``
    when the closure contains a predicate atom (pickle fallback).
    """
    roots = [fid for fid, _ in pairs]
    reachable: set[int] = set()
    stack = list(roots)
    while stack:
        fid = stack.pop()
        if fid in reachable:
            continue
        reachable.add(fid)
        stack.extend(ARENA.children(fid))
    if any(ARENA.kinds[fid] == KIND_PRED for fid in reachable):
        return (
            _COLUMN_OBJECTS,
            [(formula_of(fid), count) for fid, count in pairs],
        )
    universe = sorted(reachable)
    local = {fid: idx for idx, fid in enumerate(universe)}
    rows = tuple(
        (
            ARENA.kinds[fid],
            ARENA.names[fid],
            ARENA.iv_lo[fid],
            ARENA.iv_hi[fid],
            tuple(local[c] for c in ARENA.children(fid)),
        )
        for fid in universe
    )
    return (
        _COLUMN_ROWS,
        rows,
        tuple((local[fid], count) for fid, count in pairs),
    )


def unpack_carried_column(payload) -> list[tuple[int, int]]:
    """Re-intern a packed carried column into local ``(id, count)`` pairs.

    Rows replay in ascending order, so every child is interned before its
    parent — exactly the invariant ``ARENA.row_id`` signature keys need.
    """
    if payload[0] == _COLUMN_OBJECTS:
        return [
            (intern_formula(formula)._intern_id, count)
            for formula, count in payload[1]
        ]
    if payload[0] != _COLUMN_ROWS:
        raise MonitorError(f"unknown carried-column payload {payload[0]!r}")
    _, rows, root_pairs = payload
    ids: list[int] = []
    for kind, name, iv_lo, iv_hi, child_locals in rows:
        children = tuple(ids[c] for c in child_locals)
        if kind == KIND_TRUE:
            ids.append(TRUE_ID)
            continue
        if kind == KIND_FALSE:
            ids.append(FALSE_ID)
            continue
        if kind == KIND_ATOM:
            key: tuple = (KIND_ATOM, name)
        elif kind == KIND_NOT:
            key = (KIND_NOT, children[0])
        elif kind == KIND_AND or kind == KIND_OR:
            key = (kind,) + children
        elif kind == KIND_UNTIL:
            key = (KIND_UNTIL, children[0], children[1], iv_lo, iv_hi)
        elif kind == KIND_ALWAYS or kind == KIND_EVENTUALLY:
            key = (kind, children[0], iv_lo, iv_hi)
        else:
            raise MonitorError(f"cannot unpack arena row of kind {kind}")
        ids.append(ARENA.row_id(key, kind, children, iv_lo, iv_hi, name))
    return [(ids[pos], count) for pos, count in root_pairs]
