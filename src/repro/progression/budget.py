"""Cooperative execution budgets for the monitor engines (preemption).

A :class:`Budget` is the one object threaded through the engine core —
``enumerate_traces`` → ``stream_segment_outcomes`` →
``TraceProgressor``/``ColumnarSegmentProgressor`` →
``OnlineMonitor``/``SmtMonitor`` — that lets a *running* computation be
interrupted.  Three facets share it:

* a **cancel flag** settable from another thread (or, via ``poll_hook``,
  discovered mid-execution by draining a single-threaded worker's
  inbox): the service layer's ``drop`` frame for the currently executing
  request lands here;
* an optional **wall-clock deadline** (monotonic), the self-preemption
  facet for untrusted or exploratory workloads;
* the **trace budget** (``max_traces``) the monitors already had — the
  pre-existing ``max_traces_per_segment`` plumbing is one facet of the
  same object now, so every engine consults a single limit carrier.

The first two facets are *preemption*: tripping them raises
:class:`~repro.errors.PreemptedError` at the next checkpoint, and the
engine unwinds cooperatively.  The trace facet is *truncation*: hitting
it stops enumeration gracefully and flags the outcome ``truncated``
(counts partial, no error) — the two are deliberately distinct, which is
why :class:`~repro.encoding.verdict_enumerator.SegmentOutcome` carries
separate ``truncated`` and ``preempted`` flags.

Checkpoints are amortized: :meth:`Budget.step` is a counter increment
until ``check_every`` steps have accumulated, then one full check runs
(poll hook, cancel flag, deadline).  Engines call ``step`` per DFS node
/ per progressed program row, so the unwind latency is bounded by one
checkpoint interval of engine work.

Budgets chain: a ``parent`` budget's cancellation preempts every child.
The service worker creates one cancel-only budget per request and the
engines link their own per-segment trace budgets under it.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import PreemptedError

__all__ = ["Budget", "DEFAULT_CHECK_EVERY"]

#: Steps between full checkpoint evaluations.  Small enough that one
#: interval of DFS/progression work is far below human-visible latency,
#: large enough that the per-step cost stays a counter increment.
DEFAULT_CHECK_EVERY = 256


class Budget:
    """Cooperative step/deadline/cancel budget threaded through the engines.

    Parameters
    ----------
    max_traces:
        Per-segment trace budget (the truncation facet); ``None`` is
        unbounded.  Consulted by the enumeration layer via
        :meth:`trace_limit` / :meth:`traces_exhausted`, never raises.
    deadline_seconds:
        Wall-clock allowance from construction time; exceeding it makes
        the next checkpoint raise :class:`PreemptedError`.
    check_every:
        Steps between full checkpoint evaluations.
    poll_hook:
        Zero-argument callable invoked at each checkpoint *before* the
        cancel flag is read.  Single-threaded hosts (the local transport's
        worker loop) use it to drain their inbox so a ``drop`` frame for
        the running request can set the cancel flag mid-execution.
    parent:
        A budget whose cancellation (and poll hook) this one inherits.
        Deadlines are per-budget; cancellation propagates down the chain.
    """

    __slots__ = (
        "max_traces",
        "check_every",
        "poll_hook",
        "parent",
        "_deadline",
        "_cancelled",
        "_reason",
        "_countdown",
    )

    def __init__(
        self,
        max_traces: int | None = None,
        deadline_seconds: float | None = None,
        check_every: int = DEFAULT_CHECK_EVERY,
        poll_hook: Callable[[], None] | None = None,
        parent: "Budget | None" = None,
    ) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.max_traces = max_traces
        self.check_every = check_every
        self.poll_hook = poll_hook
        self.parent = parent
        self._deadline = (
            None if deadline_seconds is None else time.monotonic() + deadline_seconds
        )
        self._cancelled = False
        self._reason: str | None = None
        self._countdown = check_every

    # -- the cancel facet ---------------------------------------------------------

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Set the cancel flag (safe from any thread; idempotent).

        The running engine observes it at its next checkpoint and
        unwinds with :class:`PreemptedError`.
        """
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True  # flag last: readers see the reason

    @property
    def cancelled(self) -> bool:
        """True when this budget or any ancestor was cancelled."""
        budget: Budget | None = self
        while budget is not None:
            if budget._cancelled:
                return True
            budget = budget.parent
        return False

    def preempt_reason(self) -> str | None:
        """Why the next checkpoint will (or did) preempt, if known."""
        budget: Budget | None = self
        while budget is not None:
            if budget._cancelled:
                return budget._reason
            budget = budget.parent
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return f"deadline of {self._deadline_text()} exceeded"
        return None

    def _deadline_text(self) -> str:
        return "wall-clock budget"

    # -- checkpoints --------------------------------------------------------------

    def step(self, n: int = 1) -> None:
        """Account ``n`` units of engine work; checkpoint when due.

        Raises :class:`PreemptedError` when the budget (or an ancestor)
        was cancelled or the deadline has passed.  The common case is a
        single integer subtraction.
        """
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = self.check_every
            self.checkpoint()

    def checkpoint(self) -> None:
        """Run one full check now, regardless of the step counter.

        Order matters: poll hooks run first (they are how a
        single-threaded host *learns* about a cancel), then the cancel
        chain, then the deadline.
        """
        budget: Budget | None = self
        while budget is not None:
            if budget.poll_hook is not None:
                budget.poll_hook()
            if budget._cancelled:
                raise PreemptedError(budget._reason or "cancelled")
            if budget._deadline is not None and time.monotonic() >= budget._deadline:
                raise PreemptedError(
                    f"computation exceeded its wall-clock budget"
                )
            budget = budget.parent

    # -- the trace-budget facet ---------------------------------------------------

    def trace_limit(self) -> int | None:
        """The enumeration limit facet (``None`` when unbounded)."""
        return self.max_traces

    def traces_exhausted(self, enumerated: int) -> bool:
        """True when ``enumerated`` hit the trace budget (truncation)."""
        return self.max_traces is not None and enumerated >= self.max_traces

    # -- plumbing -----------------------------------------------------------------

    @classmethod
    def ensure(
        cls, budget: "Budget | None", max_traces: int | None = None
    ) -> "Budget":
        """Normalize the engine boundary: one Budget from legacy kwargs.

        ``budget=None`` with a bare ``max_traces`` (the pre-preemption
        call shape) builds a truncation-only budget; an existing budget
        without a trace limit adopts ``max_traces`` as a child so the
        caller's cancel/deadline facets still apply.
        """
        if budget is None:
            return cls(max_traces=max_traces)
        if max_traces is not None and budget.max_traces is None:
            return cls(max_traces=max_traces, parent=budget)
        return budget

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        facets = []
        if self.max_traces is not None:
            facets.append(f"max_traces={self.max_traces}")
        if self._deadline is not None:
            facets.append("deadline")
        if self._cancelled:
            facets.append(f"cancelled={self._reason!r}")
        if self.parent is not None:
            facets.append("chained")
        return f"Budget({', '.join(facets)})"
