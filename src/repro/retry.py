"""One retry/backoff policy for every layer that talks to a peer.

Before this module, every caller that could time out or retry carried
its own hand-rolled constants: ``session.py`` had ``MIGRATE_TIMEOUT``
and ``RECOVERY_TIMEOUT``, ``cluster/client.py`` had ``CALL_TIMEOUT``,
and ``service.py`` open-coded a capped-exponential redial loop for the
registry.  Under fault injection those ad-hoc paths each fail slightly
differently, which is exactly what a chaos test cannot tolerate.

:class:`RetryPolicy` is the single shape they all share now:

* ``attempts`` tries total (``None`` = unbounded, for redial loops),
* capped exponential backoff between tries (``base_delay`` ·
  ``multiplier``ⁿ, capped at ``max_delay``),
* an optional per-attempt ``timeout`` (what callers pass to
  ``MonitorFuture.result`` / pending-call waits),
* an optional overall ``deadline`` in seconds from the first attempt,
* cooperative cancellation through a :class:`threading.Event` *stop*
  and/or a :class:`~repro.progression.budget.Budget` — a cancelled
  budget aborts the retry loop between attempts exactly like it aborts
  an engine computation, with :class:`~repro.errors.PreemptedError`.

The policy is frozen data: callers share instances freely and tests
assert on ``delays()`` without running anything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

from repro.errors import ServiceError
from repro.progression.budget import Budget


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deadline and cancellation."""

    #: Total attempts (>= 1); ``None`` retries forever (redial loops).
    attempts: int | None = 3
    base_delay: float = 0.1
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Per-attempt timeout, handed to the attempted call (seconds);
    #: ``None`` means the attempt may block indefinitely.
    timeout: float | None = None
    #: Overall wall-clock budget from the first attempt (seconds);
    #: ``None`` means only ``attempts`` bounds the loop.
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.attempts is not None and self.attempts < 1:
            raise ValueError(f"attempts must be >= 1 or None, got {self.attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")

    def with_timeout(self, timeout: float | None) -> "RetryPolicy":
        return replace(self, timeout=timeout)

    def delays(self) -> Iterator[float]:
        """Backoff sleeps between attempts: ``attempts - 1`` values
        (endless when ``attempts`` is ``None``)."""
        delay = self.base_delay
        produced = 0
        while self.attempts is None or produced < self.attempts - 1:
            yield min(delay, self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)
            produced += 1

    def run(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: tuple[type[BaseException], ...] = (ServiceError,),
        no_retry_on: tuple[type[BaseException], ...] = (),
        stop: threading.Event | None = None,
        budget: Budget | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Call ``fn`` until it succeeds or the policy is exhausted.

        Exceptions matching ``no_retry_on`` (checked first) or not
        matching ``retry_on`` propagate immediately.  When the loop
        gives up it re-raises the *last* failure, so callers see the
        real error, not a synthetic wrapper.  ``on_retry(attempt, exc)``
        fires before each backoff sleep — attempt numbering starts at 1.

        A set ``stop`` event aborts between attempts by re-raising the
        last failure (or a :class:`ServiceError` if ``fn`` never ran);
        a cancelled ``budget`` aborts through ``budget.checkpoint()``.
        """
        start = time.monotonic()
        last: BaseException | None = None
        attempt = 0
        for delay in self._pacing():
            attempt += 1
            if budget is not None:
                budget.checkpoint()
            if stop is not None and stop.is_set():
                break
            try:
                return fn()
            except no_retry_on:
                raise
            except retry_on as exc:
                last = exc
            if delay is None:  # that was the final attempt
                break
            if self.deadline is not None:
                elapsed = time.monotonic() - start
                if elapsed + delay >= self.deadline:
                    break
            if on_retry is not None:
                on_retry(attempt, last)
            if stop is not None:
                if stop.wait(delay):
                    break
            elif delay:
                time.sleep(delay)
        if last is None:
            raise ServiceError("retry loop stopped before the first attempt")
        raise last

    def _pacing(self) -> Iterator[float | None]:
        """``delays()`` plus a trailing ``None`` marking the last try."""
        for delay in self.delays():
            yield delay
        yield None


#: Session migrate/recover calls: a generous per-attempt ceiling, no
#: automatic re-try at this layer (recovery has its own loop).
SESSION_CALL_POLICY = RetryPolicy(attempts=1, timeout=30.0)

#: Cluster registry request/response calls.
REGISTRY_CALL_POLICY = RetryPolicy(attempts=1, timeout=10.0)

#: Redial loops (service → registry, agent → registry): retry forever
#: with capped backoff until told to stop.
REDIAL_POLICY = RetryPolicy(attempts=None, base_delay=0.1, max_delay=2.0)
