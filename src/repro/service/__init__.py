"""The session-oriented monitoring service over a persistent worker pool.

Public surface::

    with MonitorService(workers=4) as svc:
        future = svc.submit(computation, formula=spec)   # async batch
        report = svc.map(computations, formula=spec)     # ordered BatchReport
        session = svc.open_session(spec, epsilon=2)      # live stream
        session.observe("P1", 3, {"a"}); session.advance_to(10)
        result = session.finish()

Workers live behind the pluggable transport layer
(:mod:`repro.transport`): the default pool spawns local processes, and
``MonitorService(endpoints=["tcp://host:7701", "local", ...])`` mixes
remote worker agents into the same pool.  Sessions are migratable while
live (``svc.migrate(session, endpoint)``), and
``MonitorService(rebalance="threshold")`` starts a
:class:`~repro.service.rebalance.Rebalancer` that moves hot streams off
overloaded endpoints automatically.

Sessions are durable on request: ``MonitorService(checkpoint=...)`` (or
``open_session(checkpoint=...)``) makes a stream checkpoint its
worker-side state periodically and keep a client-side replay journal, so
a worker death recovers the stream transparently — see
:class:`~repro.service.durability.CheckpointConfig`.  Queued batch work
on a dead or persistently overloaded endpoint is *stolen* (re-executed
exactly once on a live endpoint) instead of failed.
"""

from repro.service.durability import CheckpointConfig, ReplayJournal, resolve_checkpoint
from repro.service.futures import MonitorFuture
from repro.service.rebalance import Migration, PoolView, Rebalancer
from repro.service.reports import BatchReport
from repro.service.service import MonitorService, default_workers
from repro.service.session import Session, SessionStatus
from repro.service.tasks import BatchItem, MonitorTask, SegmentShardTask

__all__ = [
    "BatchItem",
    "BatchReport",
    "CheckpointConfig",
    "Migration",
    "MonitorFuture",
    "MonitorService",
    "MonitorTask",
    "PoolView",
    "Rebalancer",
    "ReplayJournal",
    "SegmentShardTask",
    "Session",
    "SessionStatus",
    "default_workers",
    "resolve_checkpoint",
]
