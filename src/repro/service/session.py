"""Client-side handle for one live monitoring stream on the service.

A :class:`Session` mirrors the :class:`~repro.monitor.online.OnlineMonitor`
surface (``observe`` / ``advance_to`` / ``poll`` / ``finish``) but the
monitor state lives inside the worker process the session is sharded to —
so hundreds of live feeds progress in parallel across the pool while each
individual stream stays strictly ordered (per-worker inboxes are FIFO).

``observe`` is asynchronous: events buffer client-side and flush to the
worker in batches, so a hot feed costs one queue round-trip per segment
advance rather than one per event.  Validation errors (an event behind the
frontier, a non-advancing boundary) therefore surface at the *next
synchronising call* (``advance_to``/``poll``/``finish``), not at
``observe`` itself — the one semantic difference from the in-process
``OnlineMonitor``.

Sessions are **migratable**: :meth:`migrate` moves the worker-side
monitor state to another pool endpoint mid-stream (see
:mod:`repro.service.rebalance` for the policies that decide when).  All
session calls serialize on one internal lock, so a migration triggered
by a background rebalancer interleaves safely with the thread feeding
the stream, and per-stream ordering holds across the hop: everything
sent before the hop completes on the origin endpoint before the snapshot
is taken, and everything after goes to the target.

Sessions are also **durable** when opened with a checkpoint policy
(``MonitorService(checkpoint=...)`` or ``open_session(checkpoint=...)``):
the worker-side monitor state is checkpointed back to the client
periodically (the same serialize-but-keep ``session_snapshot`` frame
migration uses), every call is recorded in a client-side
:class:`~repro.service.durability.ReplayJournal`, and when the hosting
worker dies the session transparently restores the last checkpoint onto
a live endpoint and replays the journal instead of surfacing a
:class:`~repro.errors.ServiceError`.  With ``standby=True`` (or
``"hot"`` for rebalancer-marked streams) each checkpoint is also pushed
to a second endpoint, so failover skips the snapshot transfer entirely —
recovery is promote + journal replay.  Replicas are trusted only once
the store is acknowledged, and each blob carries its checkpoint
sequence number so a promote can never rehydrate a replica that went
stale relative to the truncated journal.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import (
    CancelledError,
    MonitorError,
    PreemptedError,
    ReproError,
    ServiceError,
)
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.retry import SESSION_CALL_POLICY, RetryPolicy
from repro.service.durability import CheckpointConfig, ReplayJournal
from repro.service.futures import MonitorFuture, raise_remote
from repro.transport.frames import (
    DROP_STANDBY,
    PROMOTE_SESSION,
    RESTORE_SESSION,
    SNAPSHOT_SESSION,
    STANDBY_SESSION,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import MonitorService

#: Client-side observe buffer auto-flushes beyond this many events.
OBSERVE_FLUSH_THRESHOLD = 256

#: Bound on each blocking round-trip inside a migration (snapshot,
#: restore): a hop must fail loudly rather than park the stream forever
#: behind a wedged endpoint.  Aliases the shared session call policy so
#: every session-layer round-trip answers to one knob.
MIGRATE_TIMEOUT = SESSION_CALL_POLICY.timeout

#: Bound on each blocking round-trip inside a recovery (promote,
#: restore, replayed batch): recovery happens on the caller's thread, so
#: a wedged replacement endpoint must fail the call, not hang it.
RECOVERY_TIMEOUT = SESSION_CALL_POLICY.timeout


@dataclass(frozen=True)
class SessionStatus:
    """Snapshot of one session's progress (built worker-side by ``poll``)."""

    verdicts: frozenset[bool]
    pending: int
    undecided_residuals: int
    finished: bool


class Session:
    """One multiplexed online-monitoring stream (build via
    :meth:`~repro.service.MonitorService.open_session`)."""

    def __init__(
        self,
        service: "MonitorService",
        session_id: int,
        worker_index: int,
        formula: Formula,
        epsilon: int,
        monitor_kwargs: Mapping[str, object] | None = None,
        checkpoint: CheckpointConfig | None = None,
        call_policy: RetryPolicy | None = None,
    ) -> None:
        self._service = service
        self._id = session_id
        self._worker = worker_index
        self._formula = formula
        self._epsilon = epsilon
        self._monitor_kwargs = dict(monitor_kwargs or {})
        self._buffer: list[tuple[str, int, frozenset[str], dict[str, float] | None]] = []
        self._inflight: deque[MonitorFuture] = deque()
        self._finished = False
        self._result: MonitorResult | None = None
        # One lock serializes every session call (feeding thread,
        # rebalancer thread): reentrant because the synchronising calls
        # flush internally.
        self._lock = threading.RLock()
        #: The synchronising round-trip currently blocking a caller, if
        #: any — :meth:`interrupt` reads it from *other* threads, so it
        #: is published before the blocking wait and cleared after,
        #: never under the session lock from the interrupter's side.
        self._sync_future: MonitorFuture | None = None
        self._events_observed = 0
        self._migrations = 0
        # Endpoints that may still hold a stale copy of this session: a
        # migration's best-effort origin discard that was not confirmed
        # (send failed or ack timed out).  Maps worker index to the
        # discard's future (None when the discard never left the
        # client).  Any later hop back to such an endpoint must fence on
        # the discard first — see :meth:`_fence_stale_copy`.
        self._stale_copies: dict[int, MonitorFuture | None] = {}
        #: Per-call retry policy for the synchronising round-trips
        #: (``advance_to``/``poll``/``finish``).  ``None`` (the default)
        #: keeps the historical behaviour: block until the worker
        #: answers, however long that takes.  A policy with a
        #: ``timeout`` arms the gray-failure fence: a round-trip that
        #: outlives its per-attempt bound sends the worker a drop frame
        #: and classifies the typed answer — proven-not-executed and
        #: executed-then-unwound both retry safely, silence quarantines
        #: the endpoint (see :meth:`_fence_slow_call`).
        self._call_policy = call_policy
        # -- durability state (all None/zero when not checkpointing) --
        self._checkpoint = checkpoint
        self._journal: ReplayJournal | None = (
            ReplayJournal() if checkpoint is not None else None
        )
        self._events_since_checkpoint = 0
        self._last_checkpoint_time = time.monotonic()
        #: In-flight snapshot request: ``(future, journal mark)``.
        self._pending_checkpoint: tuple[MonitorFuture, int] | None = None
        #: In-flight standby store: ``(future, target)``.  The replica is
        #: recorded in ``_standby_worker`` only once the worker acks it —
        #: see :meth:`_poll_pending_standby`.
        self._pending_standby: tuple[MonitorFuture, int] | None = None
        self._standby_worker: int | None = None
        self._hot = False
        self._recoveries = 0

    @property
    def session_id(self) -> int:
        return self._id

    @property
    def worker_index(self) -> int:
        """The pool worker this session is currently pinned to (may change
        when the session is migrated)."""
        return self._worker

    @property
    def endpoint(self) -> str:
        """Transport endpoint of the worker hosting this stream
        (``local[i]`` or ``tcp://host:port``)."""
        return self._service.endpoint(self._worker)

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def events_observed(self) -> int:
        """Total events successfully flushed to the worker so far (the
        rebalancer's per-stream heat signal).  Buffered events that die
        in a failed flush — or are discarded by :meth:`close` — never
        count, so the signal reflects load the pool actually carried."""
        return self._events_observed

    @property
    def migrations(self) -> int:
        """How many times this stream has hopped endpoints."""
        return self._migrations

    @property
    def durable(self) -> bool:
        """True when this session checkpoints (worker death recovers)."""
        return self._journal is not None

    @property
    def checkpoints(self) -> int:
        """Checkpoints applied so far (0 for non-durable sessions)."""
        return self._journal.checkpoints_applied if self._journal is not None else 0

    @property
    def journal_length(self) -> int:
        """Ops recorded since the last applied checkpoint (replay cost)."""
        return len(self._journal) if self._journal is not None else 0

    @property
    def recoveries(self) -> int:
        """How many times this stream was restored after a worker death."""
        return self._recoveries

    @property
    def standby_worker(self) -> int | None:
        """Endpoint holding this stream's warm-standby replica, if any."""
        return self._standby_worker

    @property
    def hot(self) -> bool:
        """True while the rebalancer considers this stream hot (drives
        ``standby="hot"`` replication)."""
        return self._hot

    def mark_hot(self) -> None:
        """Flag this stream hot (rebalancer heat signal)."""
        self._hot = True

    def mark_cold(self) -> None:
        self._hot = False

    # -- feeding -----------------------------------------------------------------

    def observe(
        self,
        process: str,
        local_time: int,
        props: object = (),
        deltas: Mapping[str, float] | None = None,
    ) -> None:
        """Buffer one event for the stream (asynchronous, non-blocking)."""
        with self._lock:
            self._ensure_live()
            if isinstance(props, str):
                props = (props,)
            event = (
                process,
                local_time,
                frozenset(props),
                dict(deltas) if deltas else None,
            )
            self._buffer.append(event)
            if self._journal is not None:
                self._journal.record_event(event)
            if len(self._buffer) >= OBSERVE_FLUSH_THRESHOLD:
                self._durable_call(self._flush)
                self._maybe_checkpoint()

    def _flush(self) -> None:
        """Ship buffered events to the worker (fire-and-forget, tracked).

        A send that fails (dead endpoint, closed service) keeps the
        buffer intact and raises :class:`~repro.errors.ServiceError`
        naming the event count — buffered events must never be dropped
        silently just because the worker died before a flush.  (Durable
        sessions recover instead: the journal already records the
        buffered events, so restore-and-replay re-feeds them.)
        """
        if not self._buffer:
            return
        try:
            future = self._service._send_session(
                self._worker, "session_observe", (self._id, self._buffer)
            )
        except ServiceError as exc:
            raise ServiceError(
                f"{len(self._buffer)} buffered observe event(s) for session "
                f"{self._id} could not be flushed to {self._endpoint_text()}: {exc}"
            ) from exc
        # Counted only now: the events have actually left for the worker,
        # so the rebalancer's heat signal tracks carried load, not
        # buffered intent that a failed flush (or close) may discard.
        flushed = len(self._buffer)
        self._events_observed += flushed
        self._events_since_checkpoint += flushed
        self._buffer = []
        self._inflight.append(future)

    def _check_inflight(self, wait: bool = False) -> None:
        """Surface the first failed observe batch; drop completed ones.

        A failed batch is removed *before* its error raises, so the
        session stays usable afterwards (mirroring the in-process
        ``OnlineMonitor``, where a rejected ``observe`` does not poison
        the stream).
        """
        # A waiting check is bounded by the call policy's per-attempt
        # timeout when one is set: a dropped observe frame (or its lost
        # response) must surface as a ServiceError — evidence of frame
        # loss that durable sessions repair by restore-and-replay —
        # rather than park the caller forever.
        policy = self._call_policy
        timeout = policy.timeout if policy is not None else None
        while self._inflight:
            future = self._inflight[0]
            if not wait and not future.done():
                break
            self._inflight.popleft()
            future.result(timeout)  # raises the remote error if the batch failed

    # -- advancing / inspecting ----------------------------------------------------

    def advance_to(self, boundary: int) -> frozenset[bool]:
        """Declare all times below ``boundary`` final; return decided verdicts."""
        with self._lock:
            self._ensure_live()
            verdicts = self._durable_call(lambda: self._advance_once(boundary))
            self._durable_call(lambda: self._check_inflight(wait=True))
            self._maybe_checkpoint()
            return verdicts

    def _advance_once(self, boundary: int) -> frozenset[bool]:
        self._flush()
        self._check_inflight()
        verdicts = self._roundtrip("session_advance", (self._id, boundary))
        self._confirm_inflight("session_advance")
        if self._journal is not None:
            # Journaled only after the worker acknowledged: an advance
            # that died mid-flight is *retried* after replay, not
            # replayed as if it had happened.
            self._journal.record_advance(boundary)
        return verdicts

    def poll(self) -> SessionStatus:
        """Current verdicts / buffered-event / residual counts (cheap round-trip)."""
        with self._lock:
            if self._finished:
                return SessionStatus(
                    verdicts=self._result.verdicts if self._result else frozenset(),
                    pending=0,
                    undecided_residuals=0,
                    finished=True,
                )
            status = self._durable_call(self._poll_once)
            # Responses are FIFO per worker, so any flushed observe batch has
            # resolved by now — surface its rejection here, not one call late.
            self._durable_call(lambda: self._check_inflight(wait=True))
            self._maybe_checkpoint()
            return status

    def _poll_once(self) -> SessionStatus:
        self._flush()
        self._check_inflight()
        status = self._roundtrip("session_poll", (self._id,))
        self._confirm_inflight("session_poll")
        return status

    def finish(self) -> MonitorResult:
        """Consume everything buffered, close residuals, return the verdicts.

        Idempotent: repeated calls return the same result object.  A
        session discarded with :meth:`close` has no verdicts to return.
        """
        with self._lock:
            if self._finished:
                if self._result is None:
                    raise MonitorError(
                        f"session {self._id} was closed without computing verdicts"
                    )
                return self._result
            self._result = self._durable_call(self._finish_once)
            self._finished = True
            self._teardown_durability()
            self._service._forget_session(self._id)
            return self._result

    def _finish_once(self) -> MonitorResult:
        self._flush()
        self._check_inflight()
        result = self._roundtrip("session_finish", (self._id,))
        self._confirm_inflight("session_finish")
        return result

    def close(self) -> None:
        """Discard the stream without computing verdicts.

        Best-effort cancels every in-flight observe batch first (a drop
        frame lets the worker skip batches it has not executed yet), so
        a closed session's queued work does not keep burning the pool —
        and its rejections cannot surface anywhere afterwards.
        """
        with self._lock:
            if self._finished:
                return
            self._buffer.clear()
            for future in self._inflight:
                future.cancel()
            self._inflight.clear()
            try:
                self._roundtrip("session_close", (self._id,))
            finally:
                self._finished = True
                self._teardown_durability()
                self._service._forget_session(self._id)

    def _teardown_durability(self) -> None:
        """Release durability resources when the stream seals.

        The journal object itself stays (its counters remain
        introspectable after :meth:`finish`); only its replay state and
        any standby replica are released.
        """
        self._retire_standby()
        self._pending_checkpoint = None
        if self._journal is not None:
            self._journal.clear()

    # -- checkpointing --------------------------------------------------------------

    def checkpoint_now(self, wait: bool = True) -> bool:
        """Force a checkpoint regardless of cadence (ops/test hook).

        Returns True when a checkpoint was applied (or the journal was
        already empty, i.e. the last applied checkpoint is current).
        """
        with self._lock:
            if self._journal is None or self._finished:
                return False
            self._durable_call(self._flush)
            self._maybe_checkpoint(force=True)
            if wait:
                self._apply_pending_checkpoint(wait=True)
                return len(self._journal) == 0
            return self._pending_checkpoint is not None

    def _maybe_checkpoint(self, force: bool = False) -> None:
        """Request a snapshot when the cadence says so (non-blocking).

        Only ever called with an empty client buffer (right after a
        flush or a synchronising round-trip): the journal mark recorded
        here must count *flushed* work only, since the snapshot request
        queues behind exactly that on the worker's FIFO connection.
        """
        if self._journal is None or self._finished:
            return
        self._apply_pending_checkpoint()
        if self._pending_checkpoint is not None or self._buffer:
            return
        config = self._checkpoint
        due = force
        if (
            not due
            and config.every_events is not None
            and self._events_since_checkpoint >= config.every_events
        ):
            due = True
        if (
            not due
            and config.every_seconds is not None
            and time.monotonic() - self._last_checkpoint_time >= config.every_seconds
        ):
            due = True
        if not due:
            return
        if self._journal.mark() == 0:
            # Nothing new since the applied checkpoint: snapshot + empty
            # journal already reconstructs the current state exactly.
            self._events_since_checkpoint = 0
            self._last_checkpoint_time = time.monotonic()
            return
        try:
            future = self._service._send_session(
                self._worker, SNAPSHOT_SESSION, (self._id,)
            )
        except ServiceError:
            # Cadence counters deliberately untouched: the checkpoint is
            # still due, so the next sync point retries immediately
            # instead of letting the replay window grow a full interval.
            return  # dead worker: the next synchronising call recovers
        self._events_since_checkpoint = 0
        self._last_checkpoint_time = time.monotonic()
        self._pending_checkpoint = (future, self._journal.mark())

    def _apply_pending_checkpoint(self, wait: bool = False) -> None:
        """Adopt a resolved snapshot request; truncate the journal.

        Polled from session calls (never from response-dispatcher
        callbacks: those must not take the session lock).  A failed
        snapshot is simply dropped — the journal still covers everything
        since the last *applied* checkpoint, so recovery stays correct,
        just with a longer replay.  The same poll settles any in-flight
        standby store (commit on ack, retire on failure).
        """
        self._poll_pending_standby()
        if self._pending_checkpoint is not None:
            future, mark = self._pending_checkpoint
            if wait or future.done():
                self._pending_checkpoint = None
                try:
                    snapshot = future.result(self._recovery_timeout())
                except ReproError:
                    pass
                else:
                    self._journal.apply_checkpoint(snapshot, mark)
                    self._push_standby(snapshot)
        if wait:
            self._poll_pending_standby(wait=True)

    def _push_standby(self, snapshot: dict) -> None:
        """Ship the just-applied checkpoint to a warm-standby endpoint.

        Every applied checkpoint either refreshes the replica or retires
        it: the journal was just truncated to this checkpoint, so a
        replica that silently stops being refreshed (stream went cold,
        no live peer, send failure) would promote into lost history.
        "No refresh" therefore always means "no replica" — and the
        worker-side sequence guard backstops any window this
        bookkeeping cannot see.
        """
        config = self._checkpoint
        if config.standby is False or (config.standby == "hot" and not self._hot):
            self._retire_standby()
            return
        dead = self._service.dead_endpoints()

        def usable(index: int | None) -> bool:
            # An endpoint with an unconfirmed discard of this session
            # may still hold a stale *live* copy that would reject (or
            # worse, shadow) the store — never replicate onto one.
            return (
                index is not None
                and index != self._worker
                and not dead[index]
                and index not in self._stale_copies
            )

        pending_target = (
            self._pending_standby[1] if self._pending_standby is not None else None
        )
        if usable(pending_target):
            target = pending_target
        elif usable(self._standby_worker):
            target = self._standby_worker
        else:
            depth = self._service.outstanding()
            candidates = [
                index for index in range(self._service.workers) if usable(index)
            ]
            if not candidates:
                self._retire_standby()
                return  # nowhere to replicate: the pool is down to one endpoint
            target = min(candidates, key=lambda index: depth[index])
        if pending_target is not None and pending_target != target:
            self._pending_standby = None
            self._drop_standby(pending_target)
        if self._standby_worker is not None and self._standby_worker != target:
            worker_index, self._standby_worker = self._standby_worker, None
            self._drop_standby(worker_index)
        try:
            future = self._service._send_session(
                target,
                STANDBY_SESSION,
                (self._id, self._journal.checkpoints_applied, snapshot),
            )
        except ServiceError:
            self._retire_standby()
            return
        self._pending_standby = (future, target)

    def _poll_pending_standby(self, wait: bool = False) -> None:
        """Commit an acked standby store; retire the replica on a failure.

        ``_standby_worker`` repoints only once the worker acknowledged
        holding the blob — a store that failed (rejected by a stale live
        copy, endpoint died, send lost) leaves whatever replica exists
        one checkpoint behind the truncated journal, so it is dropped
        rather than left around to be promoted stale later.
        """
        if self._pending_standby is None:
            return
        future, target = self._pending_standby
        if not wait and not future.done():
            return
        self._pending_standby = None
        try:
            future.result(self._recovery_timeout())
        except ReproError:
            self._retire_standby()
            return
        if self._standby_worker is not None and self._standby_worker != target:
            self._drop_standby(self._standby_worker)
        self._standby_worker = target

    def _retire_standby(self) -> None:
        """Drop the replica everywhere it may live (acked or in flight).

        Called whenever replication stops tracking the journal's
        truncation point; recovery then takes the cold restore path
        instead of gambling on a frozen blob.
        """
        targets = set()
        if self._pending_standby is not None:
            targets.add(self._pending_standby[1])
            self._pending_standby = None
        if self._standby_worker is not None:
            targets.add(self._standby_worker)
            self._standby_worker = None
        for target in targets:
            self._drop_standby(target)

    def _drop_standby(self, worker_index: int) -> None:
        """Best-effort discard of a standby replica on one endpoint."""
        try:
            self._service._send_session(worker_index, DROP_STANDBY, (self._id,))
        except Exception:  # noqa: BLE001 — cleanup must not mask the outcome
            pass

    # -- recovery -------------------------------------------------------------------

    def _recovery_timeout(self) -> float:
        """Bound on each blocking round-trip inside recovery/checkpoint
        settling: the session's call-policy timeout when one is armed
        (chaos runs need recovery to fail fast and re-pick), the
        generous :data:`RECOVERY_TIMEOUT` default otherwise."""
        policy = self._call_policy
        if policy is not None and policy.timeout is not None:
            return policy.timeout
        return RECOVERY_TIMEOUT

    def _durable_call(self, fn: Callable):
        """Run one session step; on transport death, restore-and-replay
        onto a live endpoint and retry the step.

        Non-durable sessions get the plain call (errors surface).  The
        retry loop is bounded by the config's ``max_recovery_attempts``;
        a recovery that fails (its own target died mid-restore) counts
        as an attempt and the loop tries again — the failed target is
        reaped, so the next pick lands elsewhere.
        """
        if self._journal is None:
            return fn()
        attempts = 0
        while True:
            try:
                return fn()
            except CancelledError:
                # A deliberate client-side drop (interrupt(), a cancelled
                # observe batch) — not a worker death.  Recovering would
                # replay the very call the caller just preempted.
                raise
            except ServiceError as exc:
                if self._service.closed or self._finished:
                    raise
                attempts += 1
                if attempts > self._checkpoint.max_recovery_attempts:
                    raise
                try:
                    self._recover(exc)
                except ServiceError:
                    continue  # recovery target died too: loop picks another

    def _recover(self, cause: ServiceError) -> None:
        """Restore the stream onto a live endpoint and replay the journal.

        Runs on the caller's thread, under the session lock.  By the
        time a session call observes a worker-death ServiceError the
        service has already marked the endpoint dead, so live-endpoint
        picks can never return the corpse.
        """
        # Adopt a checkpoint that resolved before the death (its
        # snapshot is strictly newer than the one we hold), and settle
        # any in-flight standby store so the warm path below sees the
        # freshest committed replica.
        self._apply_pending_checkpoint()
        self._poll_pending_standby(wait=True)
        origin = self._worker
        restored = False
        dead = self._service.dead_endpoints()
        standby = self._standby_worker
        if standby is not None and standby != self._worker and not dead[standby]:
            # Warm path: the replica endpoint already holds the last
            # checkpoint — promote it and skip the snapshot transfer.
            # The promote names the checkpoint sequence it expects; the
            # worker rejects a blob that does not match, so a replica
            # that went stale behind the truncated journal can never be
            # rehydrated with history silently missing.
            try:
                self._service._send_session(
                    standby,
                    PROMOTE_SESSION,
                    (self._id, self._journal.checkpoints_applied),
                ).result(self._recovery_timeout())
                self._worker = standby
                self._standby_worker = None
                restored = True
            except ReproError:
                # The promote may have *executed* with its ack lost on a
                # lossy link, leaving a live primary copy on the replica
                # endpoint: fence it so a later placement discards the
                # possible orphan before reusing the endpoint.
                self._stale_copies.setdefault(standby, None)
                self._standby_worker = None  # replica unusable: cold path
        if not restored:
            target = self._service._pick_worker()  # raises when none live
            if target == self._worker:
                # The origin still passes liveness yet failed a session
                # call: a *gray* endpoint (partitioned one way, crawling,
                # dropping frames) rather than a corpse.  Restoring on
                # top of the live copy would collide, so quarantine the
                # origin out of placement and pick again; when it is the
                # last live endpoint there is nowhere to fail over to
                # and the original failure surfaces.  Nothing has been
                # cleared yet: the buffer and in-flight batches are
                # intact for the retried call to deliver.
                if not self._service.quarantine_endpoint(
                    self._worker,
                    reason=f"session {self._id} recovery after: {cause}",
                ):
                    raise cause
                target = self._service._pick_worker()
                if target == self._worker:
                    raise cause
            try:
                self._fence_stale_copy(target, self._recovery_timeout())
                if self._journal.snapshot is not None:
                    self._service._send_session(
                        target, RESTORE_SESSION, (self._id, self._journal.snapshot)
                    ).result(self._recovery_timeout())
                else:
                    # Died before the first checkpoint: the journal covers
                    # the stream from the very beginning, so recovery is a
                    # fresh open plus a full replay.
                    self._service._send_session(
                        target,
                        "session_open",
                        (
                            self._id,
                            self._formula,
                            self._epsilon,
                            dict(self._monitor_kwargs),
                        ),
                    ).result(self._recovery_timeout())
            except ServiceError:
                # The restore/open may have *executed* with its ack lost:
                # remember the possible orphan copy so the next placement
                # onto this endpoint discards it first, then let the
                # durable loop retry the recovery.
                self._stale_copies.setdefault(target, None)
                raise
            except MonitorError as exc:
                # An unconfirmable fence, or a collision with an orphan
                # copy a previous lost-ack restore left behind.  Both are
                # retryable at this level: fence the endpoint and re-raise
                # as ServiceError so the durable loop re-picks instead of
                # surfacing a fatal monitor error.
                self._stale_copies.setdefault(target, None)
                raise ServiceError(
                    f"session {self._id} could not be restored onto "
                    f"endpoint {target}: {exc}"
                ) from exc
            self._worker = target
        if self._worker != origin and not self._service.dead_endpoints()[origin]:
            # A gray origin survived the failover and may still hold a
            # live copy of this stream: queue a best-effort discard
            # behind whatever is wedged on its connection, and fence any
            # later placement back onto it (``_stale_copies`` tracks the
            # unconfirmed discard exactly like a migration's would).
            self._discard_copy(origin)
        # Only now that a rebuilt copy verifiably exists is the
        # superseded work dropped: the journal records it all, and
        # replay re-feeds it onto the restored state.  Clearing any
        # earlier would let a recovery that secures no target (e.g. the
        # raise above) silently strand buffered events in the journal.
        # Each abandoned batch is cancelled (best-effort worker-side
        # drop, so a frame still in flight is parked, not executed
        # against the superseded copy) and its outstanding bookkeeping
        # settled explicitly — a lossy link may never deliver the ack
        # the books would otherwise wait on.
        for future in self._inflight:
            future.cancel()
        self._service._abandon_requests(list(self._inflight))
        self._inflight.clear()
        self._buffer.clear()
        self._recoveries += 1
        self._replay()

    def _replay(self) -> None:
        """Re-apply the journal, in order, onto the rebuilt monitor."""
        for kind, payload in self._journal.replay_ops():
            if kind == "observe":
                try:
                    self._service._send_session(
                        self._worker, "session_observe", (self._id, payload)
                    ).result(self._recovery_timeout())
                except MonitorError:
                    # A journaled event the monitor rejects was rejected
                    # identically when first fed (and surfaced then);
                    # valid events in the batch still applied.
                    pass
            else:
                self._service._send_session(
                    self._worker, "session_advance", (self._id, payload)
                ).result(self._recovery_timeout())

    # -- migration ----------------------------------------------------------------

    def migrate(self, target_index: int, timeout: float = MIGRATE_TIMEOUT) -> None:
        """Move this stream's monitor state to another pool endpoint.

        The hop preserves strict per-stream ordering and is atomic from
        the caller's perspective:

        1. the client observe buffer is drained to the origin endpoint
           (so the snapshot sees every event observed so far);
        2. the origin serializes the monitor (``session_snapshot``) —
           FIFO per connection, so the snapshot executes after every
           flushed batch;
        3. the target rehydrates it (``session_restore``);
        4. only then is the stale origin copy discarded and the session
           repointed — every later call goes to the target.

        A failed hop (dead target, refused restore) raises and leaves
        the stream exactly where it was, still usable on the origin.
        Safe to call from a background thread (the rebalancer) while
        another thread feeds the stream.
        """
        with self._lock:
            self._ensure_live()
            origin = self._worker
            if target_index == origin:
                return
            if not 0 <= target_index < self._service.workers:
                raise MonitorError(
                    f"cannot migrate session {self._id}: no endpoint {target_index} "
                    f"in a pool of {self._service.workers}"
                )
            # Fence: an earlier hop *away from* the target whose discard
            # was never confirmed may have left a stale copy there — a
            # fast A→B→A re-migration must not race it.
            self._fence_stale_copy(target_index, timeout)
            self._flush()
            snapshot = self._service._send_session(
                origin, SNAPSHOT_SESSION, (self._id,)
            ).result(timeout)
            # FIFO: every flushed observe batch resolved before the
            # snapshot did — surface a rejection now, before the hop.
            self._check_inflight(wait=True)
            try:
                self._service._send_session(
                    target_index, RESTORE_SESSION, (self._id, snapshot)
                ).result(timeout)
            except BaseException:
                # The restore may still be queued on the target (a
                # timeout lost the race, not the request): queue a
                # discard behind it — FIFO, so whichever way the race
                # went the target ends up without a duplicate copy.
                self._discard_copy(target_index)
                raise
            # The hop landed: repoint, then discard the stale origin
            # copy.  Waiting for the ack keeps the outstanding counters
            # settled when migrate returns; a dying origin takes its
            # copy with it, so failure here is fine — the unconfirmed
            # discard is remembered and fenced on any later hop back.
            self._worker = target_index
            self._migrations += 1
            if (
                self._pending_standby is not None
                and self._pending_standby[1] == target_index
            ):
                # An in-flight store raced the hop to the same endpoint:
                # whichever landed first, no usable blob remains there
                # (the restore pops a stored one; a store after the
                # restore is rejected as a live-copy conflict).
                self._pending_standby = None
            if self._standby_worker == target_index:
                # The primary now lives where the replica was; the
                # worker dropped the shadowed blob on restore.
                self._standby_worker = None
            self._discard_copy(origin, wait=timeout)

    def _discard_copy(self, worker_index: int, wait: float | None = None) -> None:
        """Best-effort ``session_close`` for a stale copy on one endpoint.

        Every discard is tracked in ``_stale_copies`` until its ack
        confirms the copy is gone; an unconfirmed endpoint is fenced
        before this session may ever be restored onto it again.
        """
        try:
            future = self._service._send_session(
                worker_index, "session_close", (self._id,)
            )
        except Exception:  # noqa: BLE001 — cleanup must not mask the outcome
            # The discard never left the client: remember the endpoint
            # as unconfirmed so a later hop back re-issues it first.
            self._stale_copies[worker_index] = None
            return
        self._stale_copies[worker_index] = future
        if wait is not None:
            try:
                future.result(wait)
            except Exception:  # noqa: BLE001 — stays unconfirmed, fenced later
                return
            del self._stale_copies[worker_index]

    def _fence_stale_copy(self, worker_index: int, timeout: float) -> None:
        """Confirm no stale copy of this session survives on an endpoint.

        No-op for endpoints with no unconfirmed discard.  A dead
        endpoint took its copy with it, which confirms the discard for
        free.  Otherwise the fence waits for the outstanding discard ack
        (re-issuing the discard if the original send never happened) and
        raises :class:`~repro.errors.MonitorError` when the copy's fate
        cannot be confirmed — migrating into a possible duplicate would
        race two live copies of one stream.
        """
        if worker_index not in self._stale_copies:
            return
        if self._service.dead_endpoints()[worker_index]:
            del self._stale_copies[worker_index]
            return
        future = self._stale_copies[worker_index]
        try:
            if future is None:
                future = self._service._send_session(
                    worker_index, "session_close", (self._id,)
                )
                self._stale_copies[worker_index] = future
            future.result(timeout)
        except Exception as exc:  # noqa: BLE001 — any failure leaves it unconfirmed
            if self._service.dead_endpoints()[worker_index]:
                del self._stale_copies[worker_index]
                return
            raise MonitorError(
                f"cannot place session {self._id} on endpoint {worker_index}: "
                f"a stale copy there has an unconfirmed discard ({exc})"
            ) from exc
        del self._stale_copies[worker_index]

    # -- preemption ---------------------------------------------------------------

    def interrupt(self) -> bool:
        """Preempt the session call another thread is blocked in right now.

        Sends the drop frame for the in-flight synchronising round-trip
        (``advance_to``/``poll``/``finish``) *without* resolving its
        future client-side: the worker cancels the running request's
        budget, the engine unwinds within one checkpoint interval, and
        the blocked caller gets the worker's **typed** answer — a
        :class:`~repro.errors.PreemptedError` when the drop caught the
        request mid-execution (worker-side state rolled back, the call
        is retryable), or a :class:`~repro.errors.CancelledError` when
        it had not started yet.  Returns True when an interrupt was
        dispatched, False when no synchronising call was in flight.

        Deliberately takes **no** session lock: the blocked caller holds
        it, so locking here would deadlock the interrupter.
        """
        future = self._sync_future
        if future is None or future.done():
            return False
        hook = future.cancel_hook
        if hook is None:
            return False
        try:
            hook()
        except Exception:  # noqa: BLE001 — interrupt stays best-effort
            return False
        return True

    # -- plumbing -----------------------------------------------------------------

    def _roundtrip(self, op: str, payload: object):
        policy = self._call_policy
        if policy is None or policy.timeout is None:
            # Historical behaviour: block until the worker answers.
            future = self._service._send_session(self._worker, op, payload)
            self._sync_future = future
            try:
                return future.result()
            finally:
                self._sync_future = None
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            future = self._service._send_session(self._worker, op, payload)
            self._sync_future = future
            try:
                try:
                    return future.result(policy.timeout)
                except ServiceError:
                    if future.done():
                        raise  # the worker (or transport) answered: real failure
            finally:
                self._sync_future = None
            # The round-trip outlived its per-attempt bound with no
            # answer at all — an ambiguous timeout.  Retrying blindly
            # could execute the op twice, so fence first.
            outcome, value = self._fence_slow_call(future, op)
            if outcome == "done":
                return value
            if outcome == "retry":
                delay = next(delays, None)
                if delay is not None:
                    if delay:
                        time.sleep(delay)
                    continue
                raise ServiceError(
                    f"session call {op!r} to {self._endpoint_text()} timed "
                    f"out on all {attempt} attempt(s) "
                    f"({policy.timeout}s per attempt)"
                )
            # Gray endpoint: alive enough to hold the connection open,
            # too broken to answer even the fence.  Settle the silent
            # request's books (its ack may never come), quarantine the
            # endpoint out of placement (reversible — probes readmit a
            # healed link) and surface a ServiceError: durable sessions
            # restore-and-replay onto a live endpoint, plain sessions
            # fail loudly.
            self._service._abandon_requests([future])
            self._service.quarantine_endpoint(
                self._worker,
                reason=f"session call {op!r} fence unanswered "
                f"after {policy.timeout}s",
            )
            raise ServiceError(
                f"session call {op!r} to {self._endpoint_text()} timed out "
                f"and the cancellation fence went unanswered: endpoint is "
                f"gray (quarantined), the call may or may not have executed"
            )

    def _fence_slow_call(self, future: MonitorFuture, op: str):
        """Classify a synchronising round-trip that outlived its timeout.

        Sends the worker a drop frame for the in-flight request (the
        same control path :meth:`interrupt` uses) and waits one more
        per-attempt timeout for the *typed* answer.  FIFO per connection
        makes the classification sound:

        * ``CancelledError`` — the worker acked the drop before ever
          executing the request (:data:`~repro.transport.frames.
          DROPPED_BEFORE_EXECUTION`), or the request id was already
          superseded.  Proof of zero executions: safe to resend.
        * ``PreemptedError`` — the drop caught the request mid-execution
          and the engine unwound without mutating monitor state.  Also
          safe to resend.
        * a payload — the response was merely slow; the call executed
          exactly once and this *is* its result.
        * any other resolved error — a real failure; re-raised.
        * still silent — nothing provable: the endpoint is gray and the
          caller must not retry (``("gray", None)``).
        """
        hook = future.cancel_hook
        if hook is not None:
            try:
                hook()
            except Exception:  # noqa: BLE001 — fence stays best-effort
                pass
        try:
            payload = future.result(self._call_policy.timeout)
        except CancelledError:
            return ("retry", None)  # proven: dropped before execution
        except PreemptedError:
            return ("retry", None)  # proven: executed-then-unwound
        except ServiceError:
            if future.done():
                raise  # a real failure answered the fence
            return ("gray", None)
        return ("done", payload)

    def _confirm_inflight(self, op: str) -> None:
        """FIFO gap check: run after a synchronising round-trip resolves,
        *before* its result is journaled or returned.

        Requests on one connection execute and answer in order, so the
        sync response resolving proves every earlier observe batch was
        answered first.  An earlier future still unresolved is therefore
        positive evidence of frame loss (the batch or its response died
        in transit) — the sync call may have executed *without* those
        events, so its verdicts cannot be trusted.  Raised as a
        :class:`~repro.errors.ServiceError`: durable sessions repair by
        restore-and-replay (the journal holds every lost event), plain
        sessions fail loudly instead of silently mis-monitoring.
        """
        lost = sum(1 for future in self._inflight if not future.done())
        if lost:
            raise ServiceError(
                f"{lost} observe batch(es) for session {self._id} were still "
                f"unresolved when {op!r} answered — frames were lost on "
                f"{self._endpoint_text()}, so this call's result is untrusted"
            )
        # A batch the *transport layer* refused is the same evidence in a
        # different uniform: a reordered frame the worker's request-id
        # fence rejected as stale, or one dropped before execution.  The
        # sync call then ran without those events.  (Monitor-level
        # validation rejections are NOT gap evidence — the in-process
        # monitor would have refused the same events — and keep
        # surfacing from the post-call ``_check_inflight`` pass.)
        for future in self._inflight:
            error = future.error
            if error is not None and error.startswith(
                ("ServiceError", "CancelledError")
            ):
                raise ServiceError(
                    f"an observe batch for session {self._id} was refused in "
                    f"transit ({error}) before {op!r} answered — this call's "
                    f"result is untrusted"
                )

    def _endpoint_text(self) -> str:
        try:
            return self._service.endpoint(self._worker)
        except Exception:  # noqa: BLE001 — diagnostics must not mask the error
            return f"worker {self._worker}"

    def _ensure_live(self) -> None:
        if self._finished:
            raise MonitorError(f"session {self._id} already finished")
